"""Setuptools shim.

Kept so that the package installs in offline environments whose setuptools
predates PEP 660 editable-install support (``pip install -e .
--no-build-isolation --no-use-pep517``).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
