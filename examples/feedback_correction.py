"""Correcting bad alignments through feedback on answers (paper Section 4 / 5.2).

The matchers inevitably propose some wrong alignments (e.g. ``go.term.name``
aligned with ``interpro.entry.name`` just because both are called "name").
This example shows how feedback on query answers repairs the search graph
through the typed service API:

1. bootstrap the matchers over the InterPro–GO dataset (no foreign keys —
   the system has to *discover* the joins);
2. show the initial state: gold and non-gold alignment edges have similar
   costs, so the top-ranked query trees use bogus joins;
3. apply simulated domain-expert feedback (one gold-consistent answer per
   keyword query, replayed) through the service's single persistent MIRA
   learner — note that **no view is refreshed during the replay**: the
   service prices mutations lazily, at read time;
4. show that gold edges become much cheaper than non-gold edges and that
   the precision/recall of the surviving alignments improves.

Run with::

    python examples/feedback_correction.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import QService, QueryRequest, ServiceConfig
from repro.core import gold_vs_nongold_costs, max_precision_at_recall, precision_recall_curve
from repro.core.simulated_feedback import simulated_feedback_for_view
from repro.datasets import build_interpro_go


def describe_graph(service: QService, gold, label: str) -> None:
    gap = gold_vs_nongold_costs(service.graph, gold)
    curve = precision_recall_curve(service.graph, gold)
    print(f"\n--- {label} ---")
    print(f"  association edges: {len(service.graph.association_edges())}")
    print(f"  avg cost of gold edges:     {gap.gold_average:8.3f}")
    print(f"  avg cost of non-gold edges: {gap.non_gold_average:8.3f}")
    print(f"  best precision at recall >= 50%:  {max_precision_at_recall(curve, 0.5):.3f}")
    print(f"  best precision at recall >= 100%: {max_precision_at_recall(curve, 1.0):.3f}")


def main() -> None:
    dataset = build_interpro_go()  # joins removed from the metadata on purpose
    service = QService(
        sources=dataset.catalog.sources(),
        config=ServiceConfig(top_k=5, top_y=2),
    )
    service.bootstrap_alignments(top_y=2)
    describe_graph(service, dataset.gold, "Before feedback (matcher output only)")

    # Create the ten documentation-derived keyword views and one simulated
    # gold-consistent feedback event per view.
    events = []
    for keywords in dataset.keyword_queries:
        info = service.create_view(QueryRequest(keywords=tuple(keywords), k=5))
        view = service.view(info.view_id)
        event = simulated_feedback_for_view(view, dataset.gold)
        if event is not None:
            events.append((view, event))
    print(f"\nSimulated feedback prepared for {len(events)} keyword queries")

    # Apply the feedback, replaying the log four times (as in the paper).
    # Every event flows through the session's one persistent learner; views
    # are left stale on purpose — the next read pays for exactly one refresh.
    for repetition in range(4):
        for view, event in events:
            service.apply_feedback_events(view, [event], repetitions=1)
        gap = gold_vs_nongold_costs(service.graph, dataset.gold)
        print(f"  after replay {repetition + 1}: gold avg cost {gap.gold_average:6.2f}  "
              f"non-gold avg cost {gap.non_gold_average:6.2f}")

    describe_graph(service, dataset.gold, "After feedback (10 queries x 4 replays)")
    stats = service.stats()
    print(f"\nLazy consistency: {stats.learner_steps} learner steps, "
          f"{stats.view_refreshes} view refreshes performed, "
          f"{stats.view_refreshes_skipped} skipped")

    # The view over 'membrane'/'title' now produces answers through the
    # correct GO -> InterPro -> publication join path.  Streaming the
    # answers is the read that finally pays for one refresh per view used.
    request = QueryRequest(keywords=("membrane", "title"), k=5)
    answers = list(service.stream_answers(request))
    print(f"\nView {list(request.keywords)}: {len(answers)} ranked answers after feedback")
    for answer in answers[:5]:
        populated = {k: v for k, v in answer.values.items() if v is not None}
        print(f"  cost={answer.cost:.3f}  {populated}")


if __name__ == "__main__":
    main()
