"""Quickstart: keyword search over two interlinked bioinformatics sources.

Builds a small GO + InterPro catalog (with its foreign keys), lets the
matchers propose cross-source alignments, and runs a keyword query as a
ranked top-k view — the core loop of the Q system (paper Sections 2.1-2.2).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import QSystem, QSystemConfig
from repro.datasets import build_interpro_go
from repro.datastore.sqlgen import query_to_sql


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Register the initial sources (GO and InterPro, with foreign keys).
    # ------------------------------------------------------------------
    dataset = build_interpro_go(include_foreign_keys=True)
    system = QSystem(
        sources=dataset.catalog.sources(),
        config=QSystemConfig(top_k=5, top_y=2),
    )
    print(f"Catalog: {system.catalog.source_count} sources, "
          f"{system.catalog.relation_count} relations, "
          f"{system.catalog.attribute_count} attributes")

    # ------------------------------------------------------------------
    # 2. Let the matcher ensemble (metadata + MAD) propose alignments.
    # ------------------------------------------------------------------
    correspondences = system.bootstrap_alignments(top_y=2)
    print(f"Matchers proposed {len(correspondences)} correspondences; "
          f"{len(system.graph.association_edges())} association edges installed")

    # ------------------------------------------------------------------
    # 3. Ask a keyword query; Q builds a ranked top-k view.
    # ------------------------------------------------------------------
    view = system.create_view(["membrane", "title"], k=5)
    print(f"\nKeyword query: {view.keywords}")
    print(f"Query trees retained: {len(view.trees())}   (alpha = {view.alpha:.3f})")

    print("\nTop query interpretations (as SQL):")
    for generated in view.state.queries[:2]:
        print(f"\n-- cost {generated.query.cost:.3f} ({generated.signature})")
        print(query_to_sql(generated.query))

    print("\nRanked answers:")
    answers = view.answers()
    if not answers:
        print("  (no answers under the current alignments — "
              "see feedback_correction.py for how feedback repairs this)")
    for answer in answers[:5]:
        populated = {k: v for k, v in answer.values.items() if v is not None}
        print(f"  cost={answer.cost:.3f}  {populated}")


if __name__ == "__main__":
    main()
