"""Quickstart: keyword search over two interlinked bioinformatics sources.

Builds a small GO + InterPro catalog (with its foreign keys), lets the
matchers propose cross-source alignments, and streams the ranked answers of
a keyword query page by page through the typed service API (``repro.api``)
— the core loop of the Q system (paper Sections 2.1-2.2).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import QService, QueryRequest, ServiceConfig
from repro.datasets import build_interpro_go
from repro.datastore.sqlgen import query_to_sql


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Open a service session over the initial sources (GO + InterPro).
    # ------------------------------------------------------------------
    dataset = build_interpro_go(include_foreign_keys=True)
    service = QService(
        sources=dataset.catalog.sources(),
        config=ServiceConfig(top_k=5, top_y=2, default_page_size=5),
    )
    stats = service.stats()
    print(f"Catalog: {stats.sources} sources, "
          f"{stats.relations} relations, {stats.attributes} attributes")

    # ------------------------------------------------------------------
    # 2. Let the matcher ensemble (metadata + MAD) propose alignments.
    #    Lazy semantics: this only moves the graph's structure version —
    #    no view exists yet, and none would be refreshed if it did.
    # ------------------------------------------------------------------
    correspondences = service.bootstrap_alignments(top_y=2)
    print(f"Matchers proposed {len(correspondences)} correspondences; "
          f"{len(service.graph.association_edges())} association edges installed")

    # ------------------------------------------------------------------
    # 3. Ask a keyword query; Q builds a ranked top-k view and streams
    #    its answers lazily: each page executes only the queries it needs.
    # ------------------------------------------------------------------
    request = QueryRequest(keywords=("membrane", "title"), k=5)
    # materialize=False: solve the ranking now, execute queries only as
    # the answer stream is consumed.
    info = service.create_view(request, materialize=False)
    print(f"\nKeyword query: {list(info.keywords)}  (view id: {info.view_id})")
    print(f"Query trees retained: {info.tree_count}   (alpha = {info.alpha:.3f})")

    view = service.view(info.view_id)
    print("\nTop query interpretations (as SQL):")
    for generated in view.state.queries[:2]:
        print(f"\n-- cost {generated.query.cost:.3f} ({generated.signature})")
        print(query_to_sql(generated.query))

    print("\nRanked answers (streamed):")
    # Pull pages one at a time and stop after the first: the queries behind
    # the remaining pages are never executed.
    page = next(iter(service.answers(request)), None)
    if page is None:
        print("  (no answers under the current alignments — "
              "see feedback_correction.py for how feedback repairs this)")
    else:
        for answer in page.answers:
            populated = {k: v for k, v in answer.values.items() if v is not None}
            print(f"  cost={answer.cost:.3f}  {populated}")
        if page.has_more:
            print("  ... more pages available (not executed)")


if __name__ == "__main__":
    main()
