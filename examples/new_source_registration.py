"""Automatically incorporating a newly registered source (paper Section 3).

Starts from an InterPro-only system with a user view over it, then registers
the GO database as a *new* source through the typed service API.  The three
aligner strategies — EXHAUSTIVE, VIEWBASEDALIGNER and PREFERENTIALALIGNER,
now members of the :class:`repro.api.AlignmentStrategy` enum — are compared
on how many pairwise attribute comparisons they need to incorporate the
source, and the view picks up the newly discovered alignments on its next
read (lazy pull — registration itself refreshes nothing).

Run with::

    python examples/new_source_registration.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import (
    AlignmentStrategy,
    QService,
    QueryRequest,
    RegisterSourceRequest,
    ServiceConfig,
)
from repro.datasets import build_interpro_go


def build_service_without_go():
    """A Q service session that initially knows only the InterPro source."""
    dataset = build_interpro_go(include_foreign_keys=True)
    service = QService(
        sources=[dataset.interpro],
        config=ServiceConfig(top_k=5, top_y=2),
    )
    service.bootstrap_alignments(top_y=2)
    return dataset, service


def main() -> None:
    print("=== 1. Initial system: InterPro only ===")
    dataset, service = build_service_without_go()
    info = service.create_view(QueryRequest(keywords=("kinase", "title"), k=5))
    print(f"View over {list(info.keywords)}: {info.tree_count} trees, alpha={info.alpha:.3f}")

    print("\n=== 2. A new source (GO) is registered ===")
    go_source = dataset.go
    print(f"New source {go_source.name!r}: "
          f"{go_source.relation_count} relation(s), {go_source.attribute_count} attributes")

    for strategy in AlignmentStrategy:
        # Re-create the pre-registration state for a fair comparison.
        dataset_copy, service_copy = build_service_without_go()
        view_info = service_copy.create_view(QueryRequest(keywords=("kinase", "title"), k=5))
        response = service_copy.register_source(
            RegisterSourceRequest(
                source=dataset_copy.go,
                strategy=strategy,
                view=view_info.view_id,
                max_relations=3,
            )
        )
        print(f"  {strategy.value:<14} candidate relations={len(response.candidate_relations):>2}  "
              f"attribute comparisons={response.attribute_comparisons:>4}  "
              f"new association edges={response.edges_added:>2}  "
              f"time={response.elapsed_seconds * 1000:.1f} ms")

    print("\n=== 3. The view sees the new source's alignments ===")
    # Register GO into the original session using the view-based strategy.
    response = service.register_source(
        RegisterSourceRequest(
            source=go_source,
            strategy=AlignmentStrategy.VIEW_BASED,
            view=info.view_id,
        )
    )
    print(f"Association edges added for {go_source.name!r}: {response.edges_added}")
    for edge in response.alignment.edges_added:
        node_u = service.graph.node(edge.u)
        node_v = service.graph.node(edge.v)
        print(f"  {node_u.relation}.{node_u.attribute}  <->  "
              f"{node_v.relation}.{node_v.attribute}   "
              f"(matchers: {edge.metadata.get('matchers')})")

    # The registration refreshed nothing; this read pulls the view up to
    # date (one rebuild + refresh) and streams the re-ranked answers.
    fresh = service.view_info(info.view_id)
    answers = list(service.stream_answers(QueryRequest(view=info.view_id)))
    print(f"\nView pulled fresh on read: {fresh.tree_count} trees, "
          f"{len(answers)} ranked answers")


if __name__ == "__main__":
    main()
