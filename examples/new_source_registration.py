"""Automatically incorporating a newly registered source (paper Section 3).

Starts from an InterPro-only system with a user view over it, then registers
the GO database as a *new* source.  The three aligner strategies —
EXHAUSTIVE, VIEWBASEDALIGNER and PREFERENTIALALIGNER — are compared on how
many pairwise attribute comparisons they need to incorporate the source, and
the view is refreshed with the newly discovered alignments.

Run with::

    python examples/new_source_registration.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import QSystem, QSystemConfig
from repro.datasets import build_interpro_go


def build_system_without_go():
    """A Q system that initially knows only the InterPro source."""
    dataset = build_interpro_go(include_foreign_keys=True)
    system = QSystem(
        sources=[dataset.interpro],
        config=QSystemConfig(top_k=5, top_y=2),
    )
    system.bootstrap_alignments(top_y=2)
    return dataset, system


def main() -> None:
    print("=== 1. Initial system: InterPro only ===")
    dataset, system = build_system_without_go()
    view = system.create_view(["kinase", "title"], k=5)
    print(f"View over {view.keywords}: {len(view.trees())} trees, alpha={view.alpha:.3f}")

    print("\n=== 2. A new source (GO) is registered ===")
    go_source = dataset.go
    print(f"New source {go_source.name!r}: "
          f"{go_source.relation_count} relation(s), {go_source.attribute_count} attributes")

    results = {}
    for strategy in ("exhaustive", "view_based", "preferential"):
        # Re-create the pre-registration state for a fair comparison.
        dataset_copy, system_copy = build_system_without_go()
        view_copy = system_copy.create_view(["kinase", "title"], k=5)
        result = system_copy.register_source(
            dataset_copy.go, strategy=strategy, view=view_copy, max_relations=3
        )
        results[strategy] = result
        print(f"  {strategy:<14} candidate relations={len(result.candidate_relations):>2}  "
              f"attribute comparisons={result.attribute_comparisons:>4}  "
              f"new association edges={len(result.edges_added):>2}  "
              f"time={result.elapsed_seconds * 1000:.1f} ms")

    print("\n=== 3. The view sees the new source's alignments ===")
    # Register GO into the original system using the view-based strategy.
    result = system.register_source(go_source, strategy="view_based", view=view)
    go_alignments = [
        edge for edge in result.edges_added
    ]
    print(f"Association edges added for {go_source.name!r}: {len(go_alignments)}")
    for edge in go_alignments:
        node_u = system.graph.node(edge.u)
        node_v = system.graph.node(edge.v)
        print(f"  {node_u.relation}.{node_u.attribute}  <->  "
              f"{node_v.relation}.{node_v.attribute}   "
              f"(matchers: {edge.metadata.get('matchers')})")
    print(f"\nView refreshed: {len(view.trees())} trees, "
          f"{len(view.answers())} ranked answers")


if __name__ == "__main__":
    main()
