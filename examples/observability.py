"""Observability: trace a serving stack, explain its reads, scrape its metrics.

Every ranked read through :class:`repro.service.QServer` comes back with a
:class:`repro.obs.ReadTrace`: a well-nested span tree over the read lane
(snapshot acquire → materialize → solve → execute → paginate), the serving
path the engine actually took (``windowed`` SQL pushdown, ``posting-join``,
``python-union``, ``cached`` …) and — whenever the fast path was skipped —
a concrete reason, not a silent fallback.  The same bundle keeps a bounded
explain/decision log, a slow-query log, and a metrics registry that
exposes everything in the Prometheus text format.

The script builds a GBCO session behind a ``QServer``, drives mixed
traffic (a cold view build, hot cached reads, a write, a per-tenant read),
then prints per-request traces, the decision log, and a metrics scrape.

Run with::

    python examples/observability.py
    REPRO_WINDOW_PUSHDOWN=off python examples/observability.py   # explain the fallback
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import (
    FeedbackRequest,
    QService,
    QueryRequest,
    ServiceConfig,
)
from repro.datasets import build_gbco
from repro.learning import AnnotationKind
from repro.service import QServer


def main() -> None:
    dataset = build_gbco(rows_per_relation=30)
    keywords = tuple(list(dataset.query_log)[0].keywords)
    backend = f"sqlite:{Path(tempfile.mkdtemp()) / 'obs-example.db'}"

    # slow_query_ms=0 drops every read into the slow-query log so the demo
    # has something to show; production keeps the default (250ms).
    config = ServiceConfig(top_k=5, top_y=1, slow_query_ms=0.0)
    with QService(sources=dataset.catalog.sources(), config=config, backend=backend) as service:
        service.bootstrap_alignments()
        with QServer(service) as server:

            print("=== 1. Cold read: view build + first ranked answers ===")
            cold = server.query(QueryRequest(keywords=keywords))
            print(f"view {cold.view_id} ({cold.view_name!r}): {len(cold.answers)} answers")
            print(f"serving path: {cold.trace.path}")
            if cold.trace.fallback_reason:
                print(f"fallback reason: {cold.trace.fallback_reason}")
            print(cold.trace.render())

            print("\n=== 2. Hot read: the snapshot answer cache ===")
            hot = server.query(QueryRequest(view=cold.view_id))
            print(f"serving path: {hot.trace.path}  (stages: {hot.trace.stages()})")

            print("\n=== 3. A write through the single-writer queue ===")
            answers = list(cold.answers)
            other = next(
                (
                    a
                    for a in answers
                    if a.provenance.query_id != answers[0].provenance.query_id
                ),
                None,
            )
            if other is not None:
                server.feedback(
                    FeedbackRequest(
                        view=cold.view_id,
                        answer=answers[0],
                        kind=AnnotationKind.PREFERRED_OVER,
                        other=other,
                        tenant="acme",
                    )
                )
                print("tenant 'acme' feedback applied (queue wait + apply traced)")

                print("\n=== 4. Per-tenant read: the overlay explains itself ===")
                service.answers_page(QueryRequest(view=cold.view_id, tenant="acme"))
                decision = service.obs.decisions.last()
                print(decision.render())
                if decision.fallback_reason:
                    print(f"fallback reason: {decision.fallback_reason}")

            print("\n=== 5. The explain/decision log ===")
            for record in service.obs.decisions.records():
                print("  " + record.render())
            print(f"slow-query log holds {len(service.obs.slow_log)} capture(s)")

            print("\n=== 6. Metrics scrape (Prometheus text format, excerpt) ===")
            interesting = (
                "q_reads_total",
                "q_read_path_total",
                "q_read_seconds_count",
                "q_write_apply_seconds_count",
                "q_writes_applied_total",
                "q_snapshot_id",
                "q_pushdown_union_queries_total",
                "q_steiner_cache_builds_total",
                "q_slow_queries_total",
            )
            for line in server.metrics().splitlines():
                if not line.startswith("#") and line.startswith(interesting):
                    print("  " + line)

            stats = service.stats()
            print(
                f"\nSystemStats (same registry, typed): reads via "
                f"{stats.backend}, {stats.pushdown_union_queries} pushdown "
                f"union queries, {stats.steiner_cache_builds} Steiner builds"
            )


if __name__ == "__main__":
    main()
