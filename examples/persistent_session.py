"""Durable sessions: register + train + save, then reopen and stream answers.

Everything a Q session accumulates — registered sources, alignment edges,
MIRA-learned edge costs, materialized views — used to evaporate on process
exit.  With :mod:`repro.persist`, one :meth:`QService.save` checkpoints the
whole session; :meth:`QService.open` warm-starts it without re-running
profiling, matching or alignment, answering byte-identically.

The script simulates the two halves of that lifecycle.  Phase 1 builds a
session (bootstrap alignment over the InterPro–GO dataset, a keyword view,
user feedback) and saves it.  Phase 2 reopens the saved file **in a fresh
subprocess** — a genuinely new Python process with no shared state — and
streams the view's answers, which must match phase 1 exactly.

Run with::

    python examples/persistent_session.py            # both phases
    python examples/persistent_session.py reopen P   # phase 2 only, from P
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

# Byte-identical replay across *processes* needs one string hash seed: some
# ranking tie-breaks follow set/dict iteration order, which Python
# randomizes per process (see README "Durability & sessions").  Restoring a
# snapshot is exact either way; the pin makes the cross-process comparison
# below meaningful.  Re-exec once, and the reopen subprocess inherits it.
if os.environ.get("PYTHONHASHSEED") != "0":
    os.environ["PYTHONHASHSEED"] = "0"
    os.execv(sys.executable, [sys.executable] + sys.argv)

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import FeedbackRequest, QService, QueryRequest, ServiceConfig
from repro.datasets import build_interpro_go

KEYWORDS = ("kinase", "title")


def answer_lines(service: QService, view_ref: str) -> list:
    """The view's ranked answers as printable, comparable lines."""
    lines = []
    for answer in service.stream_answers(QueryRequest(view=view_ref)):
        values = ", ".join(f"{k}={v}" for k, v in answer.values.items())
        lines.append(f"cost={answer.cost:.4f}  {values}")
    return lines


def build_and_save(path: Path) -> list:
    """Phase 1: register sources, train on feedback, checkpoint the session."""
    dataset = build_interpro_go(include_foreign_keys=True)
    # QService is a context manager: __exit__ closes the session (flushing
    # any autosave journal and releasing the storage backend) even when a
    # phase fails part-way.
    with QService(
        sources=[dataset.interpro, dataset.go],
        config=ServiceConfig(top_k=5, top_y=2),
    ) as service:
        service.bootstrap_alignments(top_y=2)
        info = service.create_view(QueryRequest(keywords=KEYWORDS, k=5))
        print(
            f"view {info.view_id} over {list(info.keywords)}: {info.tree_count} trees"
        )

        answers = list(service.stream_answers(QueryRequest(view=info.view_id)))
        if answers:
            response = service.feedback(
                FeedbackRequest(view=info.view_id, answer=answers[0], replay=2)
            )
            print(
                f"feedback applied: {response.steps_processed} learner steps, "
                f"weight change {response.weight_change:.4f}"
            )

        report = service.save(path)
        stats = service.stats()
        print(
            f"saved snapshot v{report.snapshot_version} to {path} "
            f"({stats.sources} sources, {stats.views} view(s), "
            f"{stats.learner_steps} learner steps)"
        )
        return answer_lines(service, info.view_id)


def reopen_and_stream(path: Path) -> list:
    """Phase 2: warm-start from disk — no profiling, matching or alignment."""
    with QService.open(path) as service:
        stats = service.stats()
        print(
            f"reopened snapshot v{stats.snapshot_version}: {stats.sources} sources, "
            f"{stats.views} view(s), {stats.learner_steps} learner steps restored"
        )
        view = service.views.latest()
        lines = answer_lines(service, view.view_id)
        for line in lines[:5]:
            print("  " + line)
        return lines


def main() -> None:
    if len(sys.argv) > 1 and sys.argv[1] == "reopen":
        # Fresh-process entry point: print the restored answers as JSON so
        # the parent can compare them against the live session's.
        lines = reopen_and_stream(Path(sys.argv[2]))
        print("ANSWERS_JSON=" + json.dumps(lines))
        return

    path = Path(tempfile.mkdtemp()) / "session.json"
    print("=== 1. Build, train and save ===")
    live = build_and_save(path)

    print("\n=== 2. Reopen in a fresh process and stream ===")
    output = subprocess.run(
        [sys.executable, __file__, "reopen", str(path)],
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    print("\n".join(l for l in output.splitlines() if not l.startswith("ANSWERS_JSON=")))
    restored = json.loads(output.split("ANSWERS_JSON=", 1)[1].splitlines()[0])

    match = restored == live
    print(f"\nrestored answers identical to live session: {match}")
    if not match:
        raise SystemExit("answer mismatch between live and reopened session")


if __name__ == "__main__":
    main()
