"""Registration-scaling invariants: sharding, sketches, parallel scoring.

The scaling layers must be *invisible* to results: a sharded posting index
(any shard count), the MinHash/LSH sketch tier, and the parallel matcher
pool all have to reproduce the flat serial outputs exactly.  These tests pin
that contract — mostly as hypothesis properties over randomly generated
catalogs — plus the persistence of the scaling configuration itself.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alignment import ProfileBlockedAligner, chunk_evenly, score_pairs
from repro.api import QService
from repro.api.types import RegisterSourceRequest, ServiceConfig
from repro.datasets.synthetic import make_community_source
from repro.datastore.database import Catalog, DataSource
from repro.graph.edges import set_edge_id_counter
from repro.matching import ValueOverlapMatcher
from repro.profiling import CatalogProfileIndex, SketchConfig, stable_shard

# A small shared vocabulary so random catalogs actually overlap.
_WORDS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta")

_rows = st.lists(
    st.fixed_dictionaries(
        {"a": st.sampled_from(_WORDS), "b": st.sampled_from(_WORDS)}
    ),
    min_size=1,
    max_size=6,
)
_catalog_data = st.lists(_rows, min_size=2, max_size=5)


def _build_tables(datasets):
    tables = []
    for i, rows in enumerate(datasets):
        source = DataSource.build(
            f"s{i}", {f"r{i}": ["a", "b"]}, data={f"r{i}": list(rows)}
        )
        tables.extend(source.tables())
    return tables


def _community_catalog(size: int = 6, communities: int = 2):
    return [
        make_community_source(f"c{i:02d}", community=i % communities, seed=i)
        for i in range(size)
    ]


class TestShardRouting:
    def test_stable_shard_is_deterministic_and_in_range(self):
        for count in (1, 2, 7):
            for key in ("x", "rel.attr", "a|b|3"):
                shard = stable_shard(key, count)
                assert shard == stable_shard(key, count)
                assert 0 <= shard < count

    @given(datasets=_catalog_data, shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_sharded_index_identical_to_flat(self, datasets, shards):
        tables = _build_tables(datasets)
        flat = CatalogProfileIndex.from_tables(tables)
        sharded = CatalogProfileIndex.from_tables(tables, shard_count=shards)
        assert sharded.shard_count == shards
        for table in tables:
            relation = table.schema.qualified_name
            assert sharded.candidate_pairs(relation) == flat.candidate_pairs(relation)
            for attribute in table.schema.attribute_names:
                assert sharded.content_tfidf(relation, attribute) == flat.content_tfidf(
                    relation, attribute
                )
        attrs = [
            (t.schema.qualified_name, a)
            for t in tables
            for a in t.schema.attribute_names
        ]
        for rel_a, attr_a in attrs:
            for rel_b, attr_b in attrs:
                assert sharded.overlap(rel_a, attr_a, rel_b, attr_b) == flat.overlap(
                    rel_a, attr_a, rel_b, attr_b
                )

    @given(datasets=_catalog_data, shards=st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_sketch_tier_candidates_match_exact_tier(self, datasets, shards):
        # On catalogs this small every token is rare, so the rare-token tier
        # alone already covers all value-sharing pairs: the sketch pipeline
        # must re-verify down to exactly the lossless posting-list answer.
        tables = _build_tables(datasets)
        sketched = CatalogProfileIndex.from_tables(
            tables, shard_count=shards, sketch=SketchConfig(num_perm=16, bands=8)
        )
        flat = CatalogProfileIndex.from_tables(tables)
        for table in tables:
            relation = table.schema.qualified_name
            assert sketched.candidate_pairs(relation, tier="sketch") == flat.candidate_pairs(
                relation, tier="exact"
            )

    @given(
        shards=st.integers(min_value=1, max_value=6),
        num_perm=st.sampled_from([0, 8, 16]),
    )
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_preserves_scaling_config(self, shards, num_perm):
        tables = []
        for source in _community_catalog(size=4):
            tables.extend(source.tables())
        sketch = SketchConfig(num_perm=num_perm, bands=num_perm // 2) if num_perm else None
        index = CatalogProfileIndex.from_tables(
            tables, shard_count=shards, sketch=sketch
        )
        payload = index.export_state()
        restored = CatalogProfileIndex.from_state(json.loads(json.dumps(payload)))
        assert restored.export_state() == payload
        assert restored.shard_count == shards
        assert restored.sketch_enabled == (sketch is not None)
        assert restored.shard_sizes() == index.shard_sizes()
        for table in tables:
            relation = table.schema.qualified_name
            assert restored.candidate_pairs(relation, tier="auto") == index.candidate_pairs(
                relation, tier="auto"
            )


class TestPairMemoCap:
    def test_pair_memo_respects_limit(self):
        tables = []
        for source in _community_catalog(size=8, communities=1):
            tables.extend(source.tables())
        index = CatalogProfileIndex.from_tables(tables, pair_memo_limit=3)
        relations = [t.schema.qualified_name for t in tables]
        for rel_a in relations:
            for rel_b in relations:
                if rel_a != rel_b:
                    index.comparable_pair_count(rel_a, rel_b)
        assert index.pair_memo_size <= 3

    def test_pair_memo_limit_flows_from_service_config(self):
        service = QService(
            _community_catalog(size=4), config=ServiceConfig(pair_memo_limit=7)
        )
        assert service.profile_index.pair_memo_limit == 7


class TestParallelScoring:
    def test_chunk_evenly_partitions_in_order(self):
        items = list(range(10))
        chunks = chunk_evenly(items, 3)
        assert [x for chunk in chunks for x in chunk] == items
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1
        assert chunk_evenly([], 4) == []
        assert chunk_evenly(items, 100) == [[x] for x in items]

    def test_parallel_scoring_matches_serial(self):
        catalog = Catalog(_community_catalog(size=6, communities=2))
        tables = catalog.all_tables()
        pairs = [
            (tables[i], tables[j])
            for i in range(len(tables))
            for j in range(i + 1, len(tables))
        ]
        serial_matcher = ValueOverlapMatcher()
        serial, workers = score_pairs(serial_matcher, pairs, workers=1)
        assert workers == 1
        parallel_matcher = ValueOverlapMatcher()
        parallel, workers = score_pairs(parallel_matcher, pairs, workers=4)
        assert workers == 4
        assert parallel == serial
        assert (
            parallel_matcher.counter.attribute_comparisons
            == serial_matcher.counter.attribute_comparisons
        )
        assert (
            parallel_matcher.counter.relation_pairs
            == serial_matcher.counter.relation_pairs
        )

    def test_process_pool_scoring_matches_serial(self):
        catalog = Catalog(_community_catalog(size=4, communities=1))
        tables = catalog.all_tables()
        pairs = [
            (tables[i], tables[j])
            for i in range(len(tables))
            for j in range(i + 1, len(tables))
        ]
        serial, _ = score_pairs(ValueOverlapMatcher(), pairs, workers=1)
        parallel, workers = score_pairs(
            ValueOverlapMatcher(), pairs, workers=2, pool="process"
        )
        assert workers == 2
        assert parallel == serial

    def test_process_clones_drop_pure_cache_index_only(self):
        from repro.alignment.parallel import _index_free_parity, detach_profile_index
        from repro.matching import ContentTfIdfMatcher, MetadataMatcher

        tables = []
        for source in _community_catalog(size=3):
            tables.extend(source.tables())
        index = CatalogProfileIndex.from_tables(tables)
        metadata = MetadataMatcher(profile_index=index)
        # The index is a pure cache for metadata evidence: droppable.
        assert _index_free_parity(metadata)
        clone = detach_profile_index(metadata)
        assert clone.profile_index is None
        assert metadata.profile_index is index  # caller untouched
        # tf-idf document frequencies depend on the index corpus: kept.
        assert not _index_free_parity(ContentTfIdfMatcher(profile_index=index))


class TestServiceIntegration:
    def _register(self, config: ServiceConfig, strategy: str = "profile_blocked"):
        set_edge_id_counter(0)
        service = QService(_community_catalog(size=6, communities=2), config=config)
        incoming = make_community_source("incoming", community=0, seed=99)
        response = service.register_source(
            RegisterSourceRequest(source=incoming, strategy=strategy, value_filter=True)
        )
        log = [
            (c.source.qualified, c.target.qualified, c.confidence, c.matcher)
            for c in response.alignment.correspondences
        ] + [e.edge_id for e in response.alignment.edges_added]
        return service, log

    def test_scaling_knobs_do_not_change_registrations(self):
        baseline = None
        for config in (
            ServiceConfig(),
            ServiceConfig(profile_shards=4),
            ServiceConfig(sketch_num_perm=16),
            ServiceConfig(
                profile_shards=4, sketch_num_perm=16, registration_workers=4
            ),
        ):
            _, log = self._register(config)
            if baseline is None:
                baseline = log
                assert log  # the community workload must actually align
            else:
                assert log == baseline

    def test_profile_blocked_matches_exhaustive(self):
        _, blocked = self._register(ServiceConfig(), strategy="profile_blocked")
        _, exhaustive = self._register(ServiceConfig(), strategy="exhaustive")
        assert blocked == exhaustive

    def test_profile_blocked_requires_profile_index(self):
        from repro.exceptions import AlignmentError

        with pytest.raises(AlignmentError):
            ProfileBlockedAligner(ValueOverlapMatcher(), profile_index=None)

    def test_stats_surface_scaling_counters(self):
        service, _ = self._register(
            ServiceConfig(
                profile_shards=4, sketch_num_perm=16, registration_workers=2
            )
        )
        stats = service.stats()
        assert stats.profile_shards == 4
        assert stats.sketch_candidates > 0
        assert stats.exact_candidates > 0
        assert stats.exact_candidates <= stats.sketch_candidates
        assert stats.pairs_scored > 0
        assert stats.pool_workers == 2
        assert stats.pair_memo_entries >= 0
