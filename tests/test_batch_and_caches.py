"""QService batch ingest and the shared Steiner-network snapshot cache."""

from __future__ import annotations

import pytest

from repro.api import QService, QueryRequest, RegisterSourceRequest
from repro.datastore.database import DataSource
from repro.engine.context import SteinerNetworkCache
from repro.exceptions import RegistrationError
from repro.steiner import KBestSteiner


def _source_a() -> DataSource:
    return DataSource.build(
        "newdb",
        {"xref": ["entry_ac", "go_ref"]},
        data={
            "xref": [
                {"entry_ac": "IPR001", "go_ref": "GO:0001"},
                {"entry_ac": "IPR002", "go_ref": "GO:0002"},
            ]
        },
    )


def _source_b() -> DataSource:
    return DataSource.build(
        "otherdb",
        {"links": ["go_ref", "label"]},
        data={"links": [{"go_ref": "GO:0002", "label": "nucleus"}]},
    )


class TestRegisterSourcesBatch:
    @pytest.fixture()
    def service(self, mini_catalog) -> QService:
        return QService(sources=mini_catalog.sources())

    def test_batch_registers_all_sources(self, service):
        responses = service.register_sources(
            [
                RegisterSourceRequest(source=_source_a(), strategy="exhaustive"),
                RegisterSourceRequest(source=_source_b(), strategy="exhaustive"),
            ]
        )
        assert [r.source for r in responses] == ["newdb", "otherdb"]
        assert service.catalog.has_source("newdb")
        assert service.catalog.has_source("otherdb")
        assert service.profile_index.has_relation("newdb.xref")
        assert service.profile_index.has_relation("otherdb.links")
        assert service.stats().registrations == 2

    def test_batch_members_can_align_to_each_other(self, service):
        responses = service.register_sources(
            [
                RegisterSourceRequest(source=_source_a(), strategy="exhaustive"),
                RegisterSourceRequest(source=_source_b(), strategy="exhaustive"),
            ]
        )
        # The second source's exhaustive alignment saw the first one.
        assert "newdb.xref" in responses[1].candidate_relations

    def test_batch_is_atomic_on_duplicate_names(self, service):
        with pytest.raises(RegistrationError):
            service.register_sources(
                [
                    RegisterSourceRequest(source=_source_a(), strategy="exhaustive"),
                    RegisterSourceRequest(source=_source_a(), strategy="exhaustive"),
                ]
            )
        assert not service.catalog.has_source("newdb")
        assert not service.profile_index.has_relation("newdb.xref")
        assert service.stats().registrations == 0

    def test_empty_batch_is_a_noop(self, service):
        assert service.register_sources([]) == ()

    def test_batch_of_one_matches_single_registration(self, mini_catalog):
        batch_service = QService(sources=mini_catalog.sources())
        single_service = QService(sources=mini_catalog.sources())
        (batch_response,) = batch_service.register_sources(
            [RegisterSourceRequest(source=_source_a(), strategy="exhaustive")]
        )
        single_response = single_service.register_source(
            RegisterSourceRequest(source=_source_a(), strategy="exhaustive")
        )
        batch_pairs = sorted(
            (c.source.qualified, c.target.qualified, c.confidence)
            for c in batch_response.alignment.correspondences
        )
        single_pairs = sorted(
            (c.source.qualified, c.target.qualified, c.confidence)
            for c in single_response.alignment.correspondences
        )
        assert batch_pairs == single_pairs

    def test_shared_filter_backed_registration(self, service):
        response = service.register_source(
            RegisterSourceRequest(source=_source_a(), strategy="exhaustive", value_filter=True)
        )
        assert response.attribute_comparisons > 0
        # The filter read the session's shared index — no rebuild happened,
        # and the index already holds the new source.
        assert service.profile_index.has_relation("newdb.xref")


class TestSteinerNetworkCache:
    def test_cache_reuses_snapshot_until_versions_move(self, mini_graph):
        cache = SteinerNetworkCache()
        first = cache.network(mini_graph)
        second = cache.network(mini_graph)
        assert first is second
        assert (cache.builds, cache.hits) == (1, 1)
        # A weight move invalidates...
        mini_graph.weights.set("default", 2.0)
        third = cache.network(mini_graph)
        assert third is not first
        assert cache.builds == 2
        # ...and so does a structural move.
        from repro.graph.nodes import make_relation_node

        mini_graph.add_node(make_relation_node("x.y"))
        fourth = cache.network(mini_graph)
        assert fourth is not third
        assert cache.builds == 3

    def test_kbest_with_cache_matches_without(self, mini_catalog, mini_graph):
        terminals = [
            mini_graph.relation_nodes()[0].node_id,
            mini_graph.relation_nodes()[1].node_id,
        ]
        cache = SteinerNetworkCache()
        with_cache = KBestSteiner(network_cache=cache).solve(mini_graph, terminals, 3)
        without = KBestSteiner().solve(mini_graph, terminals, 3)
        assert [(t.cost, sorted(t.edge_ids)) for t in with_cache] == [
            (t.cost, sorted(t.edge_ids)) for t in without
        ]
        assert cache.builds == 1

    def test_view_reads_share_the_context_cache(self, mini_catalog):
        service = QService(sources=mini_catalog.sources())
        service.create_view(QueryRequest(keywords=("membrane", "kinase")))
        builds_after_create = service.engine_context.steiner_cache.builds
        # A second read with no mutation must not rebuild any snapshot.
        info = service.latest_view()
        service.view_info(info.view_id)
        assert service.engine_context.steiner_cache.builds == builds_after_create
