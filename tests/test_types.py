"""Unit tests for value typing and canonicalization."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datastore.types import (
    ValueType,
    canonicalize,
    infer_column_type,
    infer_value_type,
    is_null,
)


class TestInferValueType:
    def test_none_is_null(self):
        assert infer_value_type(None) is ValueType.NULL

    def test_nan_is_null(self):
        assert infer_value_type(float("nan")) is ValueType.NULL

    def test_empty_string_is_null(self):
        assert infer_value_type("   ") is ValueType.NULL

    def test_bool(self):
        assert infer_value_type(True) is ValueType.BOOLEAN
        assert infer_value_type("false") is ValueType.BOOLEAN

    def test_integers(self):
        assert infer_value_type(42) is ValueType.INTEGER
        assert infer_value_type("-17") is ValueType.INTEGER

    def test_floats(self):
        assert infer_value_type(3.25) is ValueType.FLOAT
        assert infer_value_type("1.5e-3") is ValueType.FLOAT

    def test_identifiers(self):
        assert infer_value_type("GO:0005134") is ValueType.IDENTIFIER
        assert infer_value_type("IPR000123") is ValueType.IDENTIFIER
        assert infer_value_type("PF00069") is ValueType.IDENTIFIER

    def test_strings(self):
        assert infer_value_type("plasma membrane") is ValueType.STRING

    def test_numeric_helpers(self):
        assert ValueType.INTEGER.is_numeric()
        assert ValueType.FLOAT.is_numeric()
        assert not ValueType.STRING.is_numeric()
        assert ValueType.STRING.is_textual()
        assert ValueType.IDENTIFIER.is_textual()


class TestInferColumnType:
    def test_majority_wins(self):
        values = ["1", "2", "3", "abc"]
        assert infer_column_type(values) is ValueType.INTEGER

    def test_all_null_column(self):
        assert infer_column_type([None, "", None]) is ValueType.NULL

    def test_tie_prefers_more_general(self):
        # one string and one integer: string is more general
        assert infer_column_type(["abc def", "12"]) is ValueType.STRING

    def test_sample_limit(self):
        values = ["x y"] + ["1"] * 100
        assert infer_column_type(values, sample_limit=1) is ValueType.STRING


class TestCanonicalize:
    def test_null_values(self):
        assert canonicalize(None) is None
        assert canonicalize("  ") is None
        assert is_null(float("nan"))

    def test_strips_whitespace(self):
        assert canonicalize("  GO:1  ") == "GO:1"

    def test_integral_float(self):
        assert canonicalize(42.0) == "42"

    def test_bool(self):
        assert canonicalize(True) == "true"
        assert canonicalize(False) == "false"

    def test_int_and_string_agree(self):
        assert canonicalize(42) == canonicalize("42")

    @given(st.integers(min_value=-10**9, max_value=10**9))
    def test_integer_roundtrip_property(self, value):
        assert canonicalize(value) == str(value)

    @given(st.text(min_size=1).filter(lambda s: s.strip()))
    def test_canonical_is_stripped_property(self, text):
        canon = canonicalize(text)
        assert canon == text.strip()
