"""Unit tests for keyword query-graph expansion."""

from __future__ import annotations

import pytest

from repro.graph import (
    EdgeKind,
    NodeKind,
    QueryGraphBuilder,
    SearchGraph,
    keyword_node_id,
)


@pytest.fixture()
def builder(mini_catalog) -> QueryGraphBuilder:
    return QueryGraphBuilder(mini_catalog)


class TestQueryGraphExpansion:
    def test_keyword_nodes_added(self, mini_graph, builder):
        expanded = builder.expand(mini_graph, ["membrane", "title"])
        assert set(expanded.keyword_nodes) == {"membrane", "title"}
        assert len(expanded.terminals) == 2
        for terminal in expanded.terminals:
            assert expanded.graph.node(terminal).kind is NodeKind.KEYWORD

    def test_base_graph_not_mutated(self, mini_graph, builder):
        nodes_before = mini_graph.node_count
        edges_before = mini_graph.edge_count
        builder.expand(mini_graph, ["membrane"])
        assert mini_graph.node_count == nodes_before
        assert mini_graph.edge_count == edges_before

    def test_schema_label_match(self, mini_graph, builder):
        expanded = builder.expand(mini_graph, ["title"])
        matches = expanded.matches_for("title")
        matched_kinds = {m.target_kind for m in matches}
        assert NodeKind.ATTRIBUTE in matched_kinds
        # pub.title should be a perfect match with mismatch cost 0.
        assert any(m.mismatch_cost == pytest.approx(0.0) for m in matches)

    def test_value_match_creates_value_nodes(self, mini_graph, builder):
        expanded = builder.expand(mini_graph, ["membrane"])
        value_nodes = expanded.graph.nodes(NodeKind.VALUE)
        assert any("plasma membrane" in n.label for n in value_nodes)
        # Value nodes hang off their attribute by a zero-cost edge.
        membership = expanded.graph.edges(EdgeKind.VALUE_MEMBERSHIP)
        assert membership and all(e.fixed_cost == 0.0 for e in membership)

    def test_keyword_match_edges_have_positive_cost(self, mini_graph, builder):
        expanded = builder.expand(mini_graph, ["membrane", "title"])
        for edge in expanded.graph.edges(EdgeKind.KEYWORD_MATCH):
            assert expanded.graph.edge_cost(edge) > 0.0

    def test_unmatched_keyword_still_gets_node(self, mini_graph, builder):
        expanded = builder.expand(mini_graph, ["zzz_unmatchable"])
        node_id = keyword_node_id("zzz_unmatchable")
        assert expanded.graph.has_node(node_id)
        assert expanded.matches_for("zzz_unmatchable") == []

    def test_exact_value_match_preferred(self, mini_graph, builder):
        expanded = builder.expand(mini_graph, ["GO:0001"])
        matches = expanded.matches_for("GO:0001")
        assert matches, "identifier keyword should match indexed values"
        assert any(m.target_kind is NodeKind.VALUE for m in matches)

    def test_max_value_matches_cap(self, mini_catalog, mini_graph):
        capped = QueryGraphBuilder(mini_catalog, max_value_matches=1)
        expanded = capped.expand(mini_graph, ["GO"])
        value_matches = [
            m for m in expanded.matches_for("GO") if m.target_kind is NodeKind.VALUE
        ]
        assert len(value_matches) <= 1

    def test_shared_weight_vector(self, mini_graph, builder):
        expanded = builder.expand(mini_graph, ["membrane"])
        assert expanded.graph.weights is mini_graph.weights
