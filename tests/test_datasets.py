"""Tests for the InterPro–GO-like, GBCO-like and synthetic datasets."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DEFAULT_KEYWORD_QUERIES,
    GBCO_RELATIONS,
    GOLD_EDGES,
    QUERY_LOG,
    build_gbco,
    build_interpro_go,
    grow_catalog_and_graph,
    make_two_attribute_source,
    total_attribute_count,
)
from repro.datastore.indexes import ValueIndex
from repro.graph import SearchGraph


class TestInterproGoDataset:
    def test_shape_matches_paper(self, interpro_go_dataset):
        catalog = interpro_go_dataset.catalog
        assert catalog.relation_count == 8
        assert catalog.attribute_count == 28
        assert len(interpro_go_dataset.gold) == 8
        assert len(GOLD_EDGES) == 8

    def test_generation_is_deterministic(self):
        a = build_interpro_go(seed=7)
        b = build_interpro_go(seed=7)
        table_a = a.catalog.relation("interpro.pub")
        table_b = b.catalog.relation("interpro.pub")
        assert [r.values for r in table_a] == [r.values for r in table_b]

    def test_gold_pairs_reference_existing_attributes(self, interpro_go_dataset):
        catalog = interpro_go_dataset.catalog
        for a, b in GOLD_EDGES:
            for qualified in (a, b):
                source, relation, attribute = qualified.split(".")
                table = catalog.relation(f"{source}.{relation}")
                assert table.schema.has_attribute(attribute), qualified

    def test_gold_edges_have_value_overlap(self, interpro_go_dataset):
        """Every gold pair must share values, otherwise MAD could never find it."""
        index = ValueIndex.from_catalog(interpro_go_dataset.catalog)
        for a, b in GOLD_EDGES:
            rel_a, attr_a = a.rsplit(".", 1)
            rel_b, attr_b = b.rsplit(".", 1)
            assert index.overlap(rel_a, attr_a, rel_b, attr_b) > 0, (a, b)

    def test_name_dissimilar_gold_edge_exists(self):
        """At least one gold edge must be undetectable by name similarity alone
        (acc vs go_id) — that is what separates MAD from the metadata matcher."""
        from repro.matching import MetadataMatcher

        matcher = MetadataMatcher()
        assert matcher.name_similarity("acc", "go_id") < matcher.config.min_confidence

    def test_keyword_queries_have_two_terms(self):
        assert all(len(q) == 2 for q in DEFAULT_KEYWORD_QUERIES)
        assert len(DEFAULT_KEYWORD_QUERIES) == 10

    def test_foreign_keys_optional(self):
        without = build_interpro_go(include_foreign_keys=False)
        with_fk = build_interpro_go(include_foreign_keys=True)
        assert not without.interpro.schema.foreign_keys
        assert with_fk.interpro.schema.foreign_keys


class TestGbcoDataset:
    def test_shape_matches_paper(self, gbco_dataset):
        assert gbco_dataset.catalog.source_count == 18
        assert gbco_dataset.catalog.attribute_count == 187
        assert total_attribute_count() == 187
        assert len(GBCO_RELATIONS) == 18

    def test_query_log_introduces_40_sources(self, gbco_dataset):
        assert len(QUERY_LOG) == 16
        assert gbco_dataset.total_new_source_introductions == 40

    def test_query_log_references_valid_relations(self, gbco_dataset):
        valid = {f"{name}.{name}" for name in GBCO_RELATIONS}
        for entry in QUERY_LOG:
            for relation in entry.base_relations + entry.new_relations:
                assert relation in valid
            assert not (set(entry.base_relations) & set(entry.new_relations))

    def test_sources_for_resolves(self, gbco_dataset):
        entry = QUERY_LOG[0]
        sources = gbco_dataset.sources_for(entry.new_relations)
        assert {s.name for s in sources} == {r.split(".")[0] for r in entry.new_relations}

    def test_base_and_new_relations_share_values(self, gbco_dataset):
        """Each trial's new sources must be joinable with its base relations
        through at least one shared value domain, otherwise registering them
        could never affect the view."""
        index = ValueIndex.from_catalog(gbco_dataset.catalog)
        for entry in QUERY_LOG:
            found_overlap = False
            for base in entry.base_relations:
                base_table = gbco_dataset.catalog.relation(base)
                for new in entry.new_relations:
                    new_table = gbco_dataset.catalog.relation(new)
                    for attr_a in base_table.schema.attribute_names:
                        for attr_b in new_table.schema.attribute_names:
                            if index.overlap(base, attr_a, new, attr_b) > 0:
                                found_overlap = True
            assert found_overlap, entry

    def test_keywords_match_some_data_or_schema(self, gbco_dataset):
        index = ValueIndex.from_catalog(gbco_dataset.catalog)
        all_attribute_tokens = set()
        for name, attrs in GBCO_RELATIONS.items():
            all_attribute_tokens.add(name)
            all_attribute_tokens.update(a for a in attrs)
        for entry in QUERY_LOG:
            for keyword in entry.keywords:
                in_schema = any(keyword in token for token in all_attribute_tokens)
                in_values = bool(index.lookup_substring(keyword, limit=1))
                assert in_schema or in_values, keyword


class TestSyntheticGrowth:
    def test_grow_to_target_size(self, gbco_dataset):
        catalog = build_gbco(rows_per_relation=5).catalog
        graph = SearchGraph()
        graph.add_catalog(catalog)
        result = grow_catalog_and_graph(catalog, graph, target_source_count=30, seed=1)
        assert catalog.source_count == 30
        assert len(result.added_sources) == 12
        # every added source is in the graph with two attribute nodes
        for name in result.added_sources:
            assert graph.has_node(f"rel:{name}.{name}")
            assert len(graph.attribute_nodes_of(f"{name}.{name}")) == 2

    def test_growth_adds_associations_at_average_cost(self):
        catalog = build_gbco(rows_per_relation=5).catalog
        graph = SearchGraph()
        graph.add_catalog(catalog)
        graph.add_association("gene.gene", "gene_id", "transcript.transcript", "gene_id", {"m": 0.5})
        before = len(graph.association_edges())
        result = grow_catalog_and_graph(catalog, graph, target_source_count=20, seed=2)
        added_edges = len(graph.association_edges()) - before
        assert added_edges >= 2  # two per synthetic source
        assert result.average_edge_cost > 0

    def test_no_growth_needed(self):
        catalog = build_gbco(rows_per_relation=5).catalog
        graph = SearchGraph()
        graph.add_catalog(catalog)
        result = grow_catalog_and_graph(catalog, graph, target_source_count=10, seed=3)
        assert result.added_sources == []

    def test_make_two_attribute_source(self):
        source = make_two_attribute_source("tiny", rows=3)
        assert source.attribute_count == 2
        assert source.row_count == 3
