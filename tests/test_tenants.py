"""Per-tenant weight overlays: divergence, base isolation, durability.

Two tenants giving opposite PREFERRED_OVER feedback on the same view must
end up with different rankings — and neither may perturb the shared base
weights.  Overlays must also survive ``save()``/``open()`` round-trips on
both storage backends, alongside the base learner state.
"""

from __future__ import annotations

import pytest

from repro.api import (
    FeedbackRequest,
    QService,
    QueryRequest,
    ServiceConfig,
)
from repro.datastore.csvio import source_from_dict, source_to_dict
from repro.learning import AnnotationKind
from repro.service import QServer


def _clone(source):
    return source_from_dict(source_to_dict(source))


def _fingerprint(answers):
    """Ranking fingerprint that distinguishes trees, not just projections.

    Different Steiner trees frequently project identical ``(values, cost)``
    sequences (different join paths over the same keyword rows, symmetric
    costs), so the producing tree and base tuples must be part of the key.
    """
    return [
        (
            tuple(answer.values.items()),
            round(answer.cost, 9),
            answer.provenance.query_id,
            tuple(sorted(answer.provenance.base_tuples)),
        )
        for answer in answers
    ]


def _cross_tree_pair(answers):
    """An answer pair produced by two different Steiner trees.

    Same-tree pairs make PREFERRED_OVER nearly symmetric (the shadow
    difference is too small to reorder anything); cross-tree pairs move
    whole tree scores.
    """
    first = answers[0]
    other = next(
        a for a in answers if a.provenance.query_id != first.provenance.query_id
    )
    return first, other


def _opposite_feedback(service, view_id, first, other):
    service.feedback(
        FeedbackRequest(
            view=view_id,
            answer=first,
            kind=AnnotationKind.PREFERRED_OVER,
            other=other,
            replay=4,
            tenant="alice",
        )
    )
    service.feedback(
        FeedbackRequest(
            view=view_id,
            answer=other,
            kind=AnnotationKind.PREFERRED_OVER,
            other=first,
            replay=4,
            tenant="bob",
        )
    )


@pytest.fixture
def gbco_service(gbco_dataset):
    service = QService(
        sources=[_clone(source) for source in gbco_dataset.catalog],
        config=ServiceConfig(top_k=5, top_y=1),
    )
    service.bootstrap_alignments()
    with service:
        yield service


def test_opposite_feedback_diverges_rankings_not_base(gbco_dataset, gbco_service):
    service = gbco_service
    entry = gbco_dataset.query_log[2]
    info = service.create_view(QueryRequest(keywords=entry.keywords), materialize=False)
    base_before = list(service.stream_answers(QueryRequest(view=info.view_id)))
    first, other = _cross_tree_pair(base_before)

    base_weights = dict(service.graph.weights.as_dict())
    base_version_before = service.graph.weights.version

    _opposite_feedback(service, info.view_id, first, other)

    # Shared base: byte-identical weights, untouched version, same ranking.
    assert service.graph.weights.as_dict() == base_weights
    assert service.graph.weights.version == base_version_before
    base_after = list(service.stream_answers(QueryRequest(view=info.view_id)))
    assert _fingerprint(base_after) == _fingerprint(base_before)

    alice = _fingerprint(
        service.stream_answers(QueryRequest(view=info.view_id, tenant="alice"))
    )
    bob = _fingerprint(
        service.stream_answers(QueryRequest(view=info.view_id, tenant="bob"))
    )
    base = _fingerprint(base_after)
    assert alice != bob
    assert alice != base or bob != base
    # Alice reinforced the base winner; bob demoted it.
    assert alice[0][2] == base[0][2]
    assert bob[0][2] != base[0][2]


def test_opposite_feedback_through_server(gbco_dataset, gbco_service):
    """The same divergence holds when all traffic flows through QServer."""
    entry = gbco_dataset.query_log[3]
    with QServer(gbco_service, read_workers=2) as server:
        base = server.query(QueryRequest(keywords=entry.keywords))
        first, other = _cross_tree_pair(base.answers)
        server.feedback(
            FeedbackRequest(
                view=base.view_id,
                answer=first,
                kind=AnnotationKind.PREFERRED_OVER,
                other=other,
                replay=4,
                tenant="alice",
            )
        )
        server.feedback(
            FeedbackRequest(
                view=base.view_id,
                answer=other,
                kind=AnnotationKind.PREFERRED_OVER,
                other=first,
                replay=4,
                tenant="bob",
            )
        )
        alice = server.query(QueryRequest(view=base.view_id, tenant="alice"))
        bob = server.query(QueryRequest(view=base.view_id, tenant="bob"))
        rebase = server.query(QueryRequest(view=base.view_id))
        assert _fingerprint(alice.answers) != _fingerprint(bob.answers)
        assert _fingerprint(rebase.answers) == _fingerprint(base.answers)
        assert gbco_service.stats().tenants == 2


@pytest.mark.parametrize("backend", [None, "sqlite"])
def test_tenant_overlays_survive_save_open(gbco_dataset, tmp_path, backend):
    entry = gbco_dataset.query_log[2]
    if backend == "sqlite":
        db_path = tmp_path / "tenants.db"
        backend_spec = f"sqlite:{db_path}"
        save_path = None
    else:
        db_path = None
        backend_spec = None
        save_path = tmp_path / "tenants.json"

    service = QService(
        sources=[_clone(source) for source in gbco_dataset.catalog],
        config=ServiceConfig(top_k=5, top_y=1),
        backend=backend_spec,
    )
    service.bootstrap_alignments()
    with service:
        info = service.create_view(
            QueryRequest(keywords=entry.keywords), materialize=False
        )
        answers = list(service.stream_answers(QueryRequest(view=info.view_id)))
        first, other = _cross_tree_pair(answers)
        _opposite_feedback(service, info.view_id, first, other)

        alice_before = _fingerprint(
            service.stream_answers(QueryRequest(view=info.view_id, tenant="alice"))
        )
        bob_before = _fingerprint(
            service.stream_answers(QueryRequest(view=info.view_id, tenant="bob"))
        )
        tenant_state = service.tenants.export_state()
        if backend == "sqlite":
            service.save()
        else:
            service.save(save_path)

    restored = QService.open(db_path if backend == "sqlite" else save_path)
    with restored:
        assert sorted(restored.tenants.names()) == ["alice", "bob"]
        assert restored.tenants.export_state() == tenant_state
        view_id = restored.views.latest().view_id
        alice_after = _fingerprint(
            restored.stream_answers(QueryRequest(view=view_id, tenant="alice"))
        )
        bob_after = _fingerprint(
            restored.stream_answers(QueryRequest(view=view_id, tenant="bob"))
        )
        assert alice_after == alice_before
        assert bob_after == bob_before
        assert alice_after != bob_after
