"""Unit tests for the evaluation metrics (precision/recall, PR curves, cost gaps)."""

from __future__ import annotations

import pytest

from repro.core.evaluation import (
    GoldStandard,
    PrecisionRecall,
    confidence_precision_recall_curve,
    correspondence_pairs,
    edge_attribute_pair,
    evaluate_top_y,
    gold_vs_nongold_costs,
    make_pair,
    max_precision_at_recall,
    precision_recall_curve,
)
from repro.graph import SearchGraph
from repro.matching import AttributeRef, Correspondence


@pytest.fixture()
def gold() -> GoldStandard:
    return GoldStandard.from_pairs(
        [("a.r.x", "b.s.y"), ("a.r.z", "c.t.w")]
    )


def corr(a, b, confidence, matcher="m"):
    rel_a, attr_a = a.rsplit(".", 1)
    rel_b, attr_b = b.rsplit(".", 1)
    return Correspondence(AttributeRef(rel_a, attr_a), AttributeRef(rel_b, attr_b), confidence, matcher)


class TestPrecisionRecall:
    def test_make_pair_canonical(self):
        assert make_pair("b", "a") == ("a", "b") == make_pair("a", "b")

    def test_score_basic(self, gold):
        pr = gold.score([("a.r.x", "b.s.y"), ("a.r.x", "zz.q.q")])
        assert pr.precision == 0.5
        assert pr.recall == 0.5
        assert pr.f_measure == pytest.approx(0.5)

    def test_score_empty_prediction(self, gold):
        pr = gold.score([])
        assert pr.precision == 0.0 and pr.recall == 0.0 and pr.f_measure == 0.0

    def test_score_perfect(self, gold):
        pr = gold.score(gold.pairs)
        assert pr.precision == 1.0 and pr.recall == 1.0

    def test_percentages(self):
        pr = PrecisionRecall(precision=2 / 3, recall=0.5)
        assert pr.as_percentages() == (66.67, 50.0, 57.14)

    def test_membership_and_len(self, gold):
        assert make_pair("b.s.y", "a.r.x") in gold
        assert len(gold) == 2


class TestEvaluateTopY:
    def test_top_y_filters_low_rank_pairs(self, gold):
        corrs = [
            corr("a.r.x", "b.s.y", 0.9),
            corr("a.r.x", "zz.q.q", 0.2),
            corr("a.r.z", "c.t.w", 0.8),
        ]
        pr1 = evaluate_top_y(corrs, gold, 1)
        assert pr1.recall == 1.0
        # the zz.q.q pair survives Y=1 because it is zz.q.q's own best match
        assert pr1.precision == pytest.approx(2 / 3)
        pr2 = evaluate_top_y(corrs, gold, 2)
        assert pr2.precision < 1.0
        assert correspondence_pairs(corrs) >= gold.pairs


class TestConfidenceCurve:
    def test_monotone_recall_as_threshold_drops(self, gold):
        corrs = [
            corr("a.r.x", "b.s.y", 0.9),
            corr("a.r.z", "c.t.w", 0.6),
            corr("a.r.x", "zz.q.q", 0.4),
        ]
        points = confidence_precision_recall_curve(corrs, gold)
        recalls = [p.recall for p in points]
        assert recalls == sorted(recalls)
        assert max_precision_at_recall(points, 1.0) == 1.0
        assert max_precision_at_recall(points, 2.0) == 0.0


class TestGraphBasedMetrics:
    @pytest.fixture()
    def graph_with_edges(self) -> SearchGraph:
        graph = SearchGraph()
        graph.add_association("a.r", "x", "b.s", "y", {"m": 0.9})   # gold
        graph.add_association("a.r", "z", "c.t", "w", {"m": 0.8})   # gold
        graph.add_association("a.r", "x", "d.u", "v", {"m": 0.2})   # non-gold
        return graph

    def test_edge_attribute_pair(self, graph_with_edges):
        edge = graph_with_edges.association_edges()[0]
        assert edge_attribute_pair(graph_with_edges, edge) == ("a.r.x", "b.s.y")

    def test_precision_recall_curve_over_costs(self, graph_with_edges, gold):
        points = precision_recall_curve(graph_with_edges, gold)
        assert points, "curve should have at least one point"
        # With every edge admitted, recall reaches 1.0.
        assert points[-1].recall == 1.0
        # The cheapest edges are the gold ones (higher confidence -> lower cost),
        # so precision is 1.0 at the strictest threshold.
        assert points[0].precision == 1.0

    def test_gold_vs_nongold_costs(self, graph_with_edges, gold):
        gap = gold_vs_nongold_costs(graph_with_edges, gold)
        assert gap.gold_average < gap.non_gold_average
        assert gap.gap > 0

    def test_gold_vs_nongold_empty_graph(self, gold):
        gap = gold_vs_nongold_costs(SearchGraph(), gold)
        assert gap.gold_average == 0.0 and gap.non_gold_average == 0.0

    def test_is_gold_edge(self, graph_with_edges, gold):
        edges = graph_with_edges.association_edges()
        assert gold.is_gold_edge(graph_with_edges, edges[0])
        assert not gold.is_gold_edge(graph_with_edges, edges[2])
