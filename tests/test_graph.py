"""Unit tests for the search graph, features, edges and neighborhoods."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import GraphError, UnknownNodeError
from repro.graph import (
    DEFAULT_FEATURE,
    Edge,
    EdgeKind,
    FeatureVector,
    GraphConfig,
    NodeKind,
    SearchGraph,
    WeightVector,
    attribute_node_id,
    cost_neighborhood,
    edge_feature,
    keyword_node_id,
    make_attribute_node,
    make_keyword_node,
    make_relation_node,
    matcher_feature,
    neighborhood_relations,
    relation_feature,
    relation_node_id,
)


class TestFeatureVector:
    def test_get_default(self):
        fv = FeatureVector({"a": 1.0})
        assert fv.get("a") == 1.0
        assert fv.get("missing") == 0.0

    def test_immutability_via_copies(self):
        fv = FeatureVector({"a": 1.0})
        fv2 = fv.with_feature("b", 2.0)
        assert "b" not in fv
        assert fv2.get("b") == 2.0
        fv3 = fv2.without_feature("a")
        assert "a" in fv2 and "a" not in fv3

    def test_merged(self):
        merged = FeatureVector({"a": 1.0}).merged(FeatureVector({"a": 2.0, "b": 3.0}))
        assert merged.get("a") == 2.0
        assert merged.get("b") == 3.0

    def test_container_protocols(self):
        fv = FeatureVector({"a": 1.0, "b": 2.0})
        assert len(fv) == 2
        assert set(iter(fv)) == {"a", "b"}
        assert fv == FeatureVector({"b": 2.0, "a": 1.0})


class TestWeightVector:
    def test_dot_product(self):
        weights = WeightVector({"a": 2.0, "b": -1.0})
        features = FeatureVector({"a": 1.0, "b": 0.5, "c": 10.0})
        assert weights.dot(features) == pytest.approx(1.5)

    def test_update_and_copy(self):
        weights = WeightVector({"a": 1.0})
        clone = weights.copy()
        weights.update({"a": 0.5, "b": 2.0})
        assert weights.get("a") == 1.5
        assert weights.get("b") == 2.0
        assert clone.get("a") == 1.0
        assert clone.get("b") == 0.0

    def test_distance(self):
        a = WeightVector({"x": 1.0})
        b = WeightVector({"x": 4.0, "y": 4.0})
        assert a.distance_to(b) == pytest.approx(5.0)

    @given(st.dictionaries(st.text(min_size=1, max_size=4), st.floats(-10, 10), max_size=6))
    def test_distance_to_self_is_zero_property(self, mapping):
        weights = WeightVector(mapping)
        assert weights.distance_to(weights.copy()) == pytest.approx(0.0)


class TestFeatureNames:
    def test_helpers(self):
        assert matcher_feature("mad") == "matcher::mad"
        assert relation_feature("go.term") == "relation::go.term"
        assert edge_feature("e1").startswith("edge::")


class TestEdge:
    def test_zero_cost_kinds(self):
        node_a = make_relation_node("go.term")
        node_b = make_attribute_node("go.term", "acc")
        edge = Edge.create(node_a.node_id, node_b.node_id, EdgeKind.MEMBERSHIP)
        assert edge.fixed_cost == 0.0
        assert not edge.is_learnable()
        assert edge.cost(WeightVector({DEFAULT_FEATURE: 5.0})) == 0.0

    def test_learnable_cost_clamped(self):
        edge = Edge.create("a", "b", EdgeKind.ASSOCIATION, features=FeatureVector({"x": 1.0}))
        weights = WeightVector({"x": -5.0})
        assert edge.cost(weights, minimum=1e-3) == pytest.approx(1e-3)

    def test_other_and_connects(self):
        edge = Edge.create("a", "b", EdgeKind.ASSOCIATION)
        assert edge.other("a") == "b"
        assert edge.connects("b", "a")
        with pytest.raises(ValueError):
            edge.other("c")


class TestSearchGraphConstruction:
    def test_add_catalog(self, mini_catalog):
        graph = SearchGraph()
        graph.add_catalog(mini_catalog)
        assert len(graph.relation_nodes()) == 5
        assert len(graph.attribute_nodes()) == 10
        # membership edges: one per attribute; foreign keys: 3
        assert len(graph.edges(EdgeKind.MEMBERSHIP)) == 10
        assert len(graph.edges(EdgeKind.FOREIGN_KEY)) == 3

    def test_adding_source_twice_is_idempotent(self, mini_catalog):
        graph = SearchGraph()
        graph.add_catalog(mini_catalog)
        nodes_before = graph.node_count
        edges_before = graph.edge_count
        graph.add_source(mini_catalog.source("go"))
        assert graph.node_count == nodes_before
        assert graph.edge_count == edges_before

    def test_unknown_node_errors(self, mini_graph):
        with pytest.raises(UnknownNodeError):
            mini_graph.node("missing")
        with pytest.raises(UnknownNodeError):
            mini_graph.edges_of("missing")
        with pytest.raises(UnknownNodeError):
            mini_graph.add_edge(Edge.create("missing", "also_missing", EdgeKind.ASSOCIATION))

    def test_duplicate_edge_id_rejected(self, mini_graph):
        rel = relation_node_id("go.term")
        attr = attribute_node_id("go.term", "acc")
        edge = Edge.create(rel, attr, EdgeKind.MEMBERSHIP, edge_id="fixed-id")
        mini_graph.add_edge(edge)
        with pytest.raises(GraphError):
            mini_graph.add_edge(Edge.create(rel, attr, EdgeKind.MEMBERSHIP, edge_id="fixed-id"))

    def test_remove_edge(self, mini_graph):
        edge = mini_graph.association_edges()[0]
        mini_graph.remove_edge(edge.edge_id)
        assert not mini_graph.has_edge(edge.edge_id)
        with pytest.raises(GraphError):
            mini_graph.remove_edge(edge.edge_id)

    def test_attribute_nodes_of(self, mini_graph):
        attrs = mini_graph.attribute_nodes_of("go.term")
        assert {n.attribute for n in attrs} == {"acc", "name"}

    def test_relation_node_of(self, mini_graph):
        attr_id = attribute_node_id("go.term", "acc")
        rel_node = mini_graph.relation_node_of(attr_id)
        assert rel_node is not None and rel_node.relation == "go.term"
        rel_self = mini_graph.relation_node_of(relation_node_id("go.term"))
        assert rel_self is not None and rel_self.kind is NodeKind.RELATION


class TestAssociations:
    def test_association_edge_cost_reflects_confidence(self, mini_graph):
        config = mini_graph.config
        edge = mini_graph.association_between("go.term", "acc", "interpro.interpro2go", "go_id")
        assert edge is not None
        expected = config.default_cost + config.initial_matcher_weight * 0.9
        assert mini_graph.edge_cost(edge) == pytest.approx(expected)

    def test_merging_second_matcher_on_same_edge(self, mini_graph):
        before = len(mini_graph.association_edges())
        edge = mini_graph.add_association(
            "go.term", "acc", "interpro.interpro2go", "go_id", {"metadata": 0.8}
        )
        assert len(mini_graph.association_edges()) == before
        assert edge.metadata["matchers"] == {"mad": 0.9, "metadata": 0.8}
        assert edge.features.get(matcher_feature("metadata")) == pytest.approx(0.8)

    def test_association_creates_missing_attribute_nodes(self):
        graph = SearchGraph()
        graph.add_association("a.r", "x", "b.s", "y", {"mad": 0.5})
        assert graph.has_node(attribute_node_id("a.r", "x"))
        assert graph.has_node(attribute_node_id("b.s", "y"))

    def test_matcher_weight_initialized_once(self, mini_graph):
        initial = mini_graph.weights.get(matcher_feature("mad"))
        mini_graph.weights.set(matcher_feature("mad"), -0.9)
        mini_graph.add_association("go.term", "name", "interpro.entry", "name", {"mad": 0.4})
        assert mini_graph.weights.get(matcher_feature("mad")) == -0.9
        assert initial == mini_graph.config.initial_matcher_weight


class TestShortestPathsAndNeighborhood:
    def test_shortest_path_costs(self, mini_graph):
        start = relation_node_id("go.term")
        distances = mini_graph.shortest_path_costs([start])
        # membership edges are free, so attributes of go.term are at cost 0.
        assert distances[attribute_node_id("go.term", "acc")] == 0.0
        # interpro2go is reachable through the association edge.
        assert relation_node_id("interpro.interpro2go") in distances

    def test_max_cost_prunes(self, mini_graph):
        start = relation_node_id("go.term")
        near = mini_graph.shortest_path_costs([start], max_cost=0.0)
        assert relation_node_id("interpro.interpro2go") not in near
        assert attribute_node_id("go.term", "name") in near

    def test_cost_neighborhood_and_relations(self, mini_graph):
        start = attribute_node_id("go.term", "acc")
        relations_near = neighborhood_relations(mini_graph, [start], alpha=0.0)
        assert relations_near == {"go.term"}
        relations_far = neighborhood_relations(mini_graph, [start], alpha=10.0)
        assert "interpro.pub" in relations_far

    def test_cost_neighborhood_missing_start(self, mini_graph):
        assert cost_neighborhood(mini_graph, ["missing"], alpha=1.0) == {}

    def test_unknown_source_node_raises(self, mini_graph):
        with pytest.raises(UnknownNodeError):
            mini_graph.shortest_path_costs(["missing"])


class TestCopy:
    def test_copy_shares_weights_but_not_structure(self, mini_graph):
        clone = mini_graph.copy(share_weights=True)
        edge = clone.association_edges()[0]
        clone.remove_edge(edge.edge_id)
        assert mini_graph.has_edge(edge.edge_id)
        # Weight changes propagate (shared vector).
        mini_graph.weights.set(DEFAULT_FEATURE, 7.0)
        assert clone.weights.get(DEFAULT_FEATURE) == 7.0

    def test_copy_independent_weights(self, mini_graph):
        clone = mini_graph.copy(share_weights=False)
        mini_graph.weights.set(DEFAULT_FEATURE, 9.0)
        assert clone.weights.get(DEFAULT_FEATURE) != 9.0
