"""Shared pytest fixtures.

The ``src`` directory is added to ``sys.path`` so the suite also runs in
environments where the editable install could not be performed (the package
is pure Python, so importing straight from the source tree is equivalent).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datastore import Catalog, DataSource  # noqa: E402
from repro.datasets import build_gbco, build_interpro_go  # noqa: E402
from repro.graph import SearchGraph  # noqa: E402


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "memory_engine_internals: asserts Python-join-engine internals "
        "(scan/join-index counters, per-query lazy-execution accounting) "
        "that SQL pushdown legitimately bypasses; skipped when "
        "REPRO_BACKEND selects a pushdown-capable backend",
    )
    config.addinivalue_line(
        "markers",
        "fault_injection: deterministic fault-injection tests (scripted "
        "FaultPlan schedules, injected clocks — no timing dependence); they "
        "run in the tier-1 matrix on every backend",
    )


def pytest_runtest_setup(item):
    env_backend = os.environ.get("REPRO_BACKEND", "").strip()
    if env_backend not in ("", "memory") and item.get_closest_marker(
        "memory_engine_internals"
    ):
        pytest.skip(f"asserts memory-engine internals (REPRO_BACKEND={env_backend})")


@pytest.fixture()
def mini_catalog() -> Catalog:
    """A tiny two-source catalog used by most unit tests.

    ``go.term`` and ``interpro.interpro2go`` share GO accession values;
    ``interpro.entry`` joins to ``interpro.interpro2go`` by foreign key.
    """
    go = DataSource.build(
        "go",
        {"term": ["acc", "name"]},
        data={
            "term": [
                {"acc": "GO:0001", "name": "plasma membrane"},
                {"acc": "GO:0002", "name": "nucleus"},
                {"acc": "GO:0003", "name": "kinase activity"},
            ]
        },
    )
    interpro = DataSource.build(
        "interpro",
        {
            "interpro2go": ["go_id", "entry_ac"],
            "entry": ["entry_ac", "name"],
            "pub": ["pub_id", "title"],
            "entry2pub": ["entry_ac", "pub_id"],
        },
        data={
            "interpro2go": [
                {"go_id": "GO:0001", "entry_ac": "IPR001"},
                {"go_id": "GO:0002", "entry_ac": "IPR002"},
            ],
            "entry": [
                {"entry_ac": "IPR001", "name": "Kinase domain"},
                {"entry_ac": "IPR002", "name": "Zinc finger"},
            ],
            "pub": [
                {"pub_id": "P1", "title": "Kinase domain structure"},
                {"pub_id": "P2", "title": "Zinc finger review"},
            ],
            "entry2pub": [
                {"entry_ac": "IPR001", "pub_id": "P1"},
                {"entry_ac": "IPR002", "pub_id": "P2"},
            ],
        },
        foreign_keys=[
            ("interpro2go", "entry_ac", "entry", "entry_ac"),
            ("entry2pub", "entry_ac", "entry", "entry_ac"),
            ("entry2pub", "pub_id", "pub", "pub_id"),
        ],
    )
    return Catalog([go, interpro])


@pytest.fixture()
def mini_graph(mini_catalog: Catalog) -> SearchGraph:
    """Search graph over :func:`mini_catalog` with one cross-source association."""
    graph = SearchGraph()
    graph.add_catalog(mini_catalog)
    graph.add_association(
        "go.term", "acc", "interpro.interpro2go", "go_id", {"mad": 0.9}
    )
    return graph


@pytest.fixture(scope="session")
def interpro_go_dataset():
    """The full InterPro–GO-like dataset (session-scoped; generation is deterministic)."""
    return build_interpro_go()


@pytest.fixture(scope="session")
def gbco_dataset():
    """The GBCO-like dataset (session-scoped)."""
    return build_gbco(rows_per_relation=30)
