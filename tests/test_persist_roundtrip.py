"""Property tests of the persistence payloads + corruption handling.

Three properties anchor the snapshot format:

* **Fixed point** — serializing random graph/weights/profile states,
  restoring them and serializing again yields byte-identical payloads
  (canonical encodings: ordered containers verbatim, sets sorted).
* **Journal replay equals direct state** — a session persisted as
  snapshot + journal entries restores to the same graph/weights/profiles a
  compacted full snapshot of the same live session describes.
* **Corruption is typed** — truncated, bit-flipped, version-skewed or
  missing documents raise :class:`~repro.exceptions.SnapshotError`, never
  a silent partial restore.
"""

from __future__ import annotations

import itertools
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.graph.edges as edges_module
from repro.api import FeedbackRequest, QService, QueryRequest, SnapshotError
from repro.datastore import DataSource
from repro.graph.edges import Edge, EdgeKind, edge_id_counter, set_edge_id_counter
from repro.graph.nodes import make_attribute_node, make_relation_node
from repro.graph.search_graph import SearchGraph
from repro.matching import ValueOverlapMatcher
from repro.persist import unwrap_document, wrap_document
from repro.persist.snapshot import (
    FORMAT_VERSION,
    graph_payload,
    restore_graph,
    restore_weights,
    weights_payload,
)
from repro.profiling.index import CatalogProfileIndex

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
_finite = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
_names = st.text(alphabet="abcdefg", min_size=1, max_size=4)


@st.composite
def random_graphs(draw):
    """Small random search graphs: relations, attributes, mixed edge kinds."""
    graph = SearchGraph()
    relation_count = draw(st.integers(min_value=1, max_value=4))
    attributes = []
    for r in range(relation_count):
        relation = f"s{r}.rel{r}"
        graph.add_node(make_relation_node(relation))
        for a in range(draw(st.integers(min_value=1, max_value=3))):
            node = make_attribute_node(relation, f"attr{a}")
            graph.add_node(node)
            graph.add_edge(
                Edge.create(
                    f"rel:{relation}", node.node_id, EdgeKind.MEMBERSHIP
                )
            )
            attributes.append(node.node_id)
    edge_count = draw(st.integers(min_value=0, max_value=6))
    for _ in range(edge_count):
        if len(attributes) < 2:
            break
        u = draw(st.sampled_from(attributes))
        v = draw(st.sampled_from(attributes))
        if u == v:
            continue
        confidence = draw(_finite)
        edge = Edge.create(
            u,
            v,
            EdgeKind.ASSOCIATION,
            metadata={"matchers": {"m": confidence}, "origin": "aligner"},
        )
        features = draw(
            st.dictionaries(_names, _finite, min_size=1, max_size=4)
        )
        from repro.graph.features import FeatureVector

        edge.features = FeatureVector(features)
        graph.add_edge(edge)
    for name, weight in draw(
        st.dictionaries(_names, _finite, min_size=0, max_size=6)
    ).items():
        graph.weights.set(name, weight)
    return graph


@st.composite
def random_tables(draw):
    """A small random source feeding the profile-index fixed point."""
    rows = draw(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(0, 9), _names),
                st.one_of(st.none(), st.booleans(), _names),
            ),
            min_size=0,
            max_size=8,
        )
    )
    return DataSource.build(
        "src", {"rel": ["alpha", "beta"]}, data={"rel": [list(r) for r in rows]}
    )


# ----------------------------------------------------------------------
# Fixed-point properties
# ----------------------------------------------------------------------
class TestFixedPoints:
    @given(graph=random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_graph_payload_fixed_point(self, graph):
        payload = graph_payload(graph)
        weights = weights_payload(graph.weights)
        restored = restore_graph(
            json.loads(json.dumps(payload)), weights=restore_weights(weights)
        )
        assert graph_payload(restored) == payload
        assert weights_payload(restored.weights) == weights
        # Iteration order — which feeds tie-breaks — survives verbatim.
        assert [n.node_id for n in restored.nodes()] == [
            n.node_id for n in graph.nodes()
        ]
        assert [e.edge_id for e in restored.edges()] == [
            e.edge_id for e in graph.edges()
        ]
        for node in graph.nodes():
            assert [e.edge_id for e in restored.edges_of(node.node_id)] == [
                e.edge_id for e in graph.edges_of(node.node_id)
            ]

    @given(source=random_tables())
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_profile_index_fixed_point(self, source):
        index = CatalogProfileIndex()
        index.index_source(source)
        payload = index.export_state()
        restored = CatalogProfileIndex.from_state(json.loads(json.dumps(payload)))
        assert restored.export_state() == payload
        # Derived query surfaces agree with the scanned original.
        for relation in index.profiled_relations():
            for profile in index.profiles_of(relation):
                assert restored.value_candidates(
                    relation, profile.attribute
                ) == index.value_candidates(relation, profile.attribute)
                assert restored.content_tfidf(
                    relation, profile.attribute
                ) == index.content_tfidf(relation, profile.attribute)

    def test_session_snapshot_fixed_point(self, tmp_path):
        """save → open → save writes a byte-identical snapshot body."""
        from repro.persist import FileSessionStore, SessionPersistence

        service = _mini_session()
        service.save(tmp_path / "first.json")
        first = json.loads((tmp_path / "first.json").read_text())["body"]

        reopened = QService.open(tmp_path / "first.json")
        SessionPersistence(FileSessionStore(tmp_path / "second.json")).save(reopened)
        second = json.loads((tmp_path / "second.json").read_text())["body"]
        assert second == first


# ----------------------------------------------------------------------
# Journal replay equals direct state
# ----------------------------------------------------------------------
def _mini_session():
    go = DataSource.build(
        "go",
        {"term": ["acc", "name"]},
        data={
            "term": [
                ("GO:0001", "plasma membrane"),
                ("GO:0002", "nucleus"),
                ("GO:0003", "plasma membrane transport"),
            ]
        },
    )
    interpro = DataSource.build(
        "interpro",
        {"interpro2go": ["go_id", "entry_ac"]},
        data={
            "interpro2go": [
                ("GO:0001", "IPR001"),
                ("GO:0003", "IPR003"),
                ("GO:0002", "IPR002"),
            ]
        },
    )
    service = QService(
        sources=[go, interpro],
        matchers=[ValueOverlapMatcher(min_confidence=0.3, min_shared_values=2)],
    )
    service.bootstrap_alignments()
    service.create_view(QueryRequest(keywords=("plasma", "IPR001")))
    return service


class TestJournalEquivalence:
    @given(replays=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=4))
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_journal_replay_equals_direct_state(self, tmp_path_factory, replays):
        """Snapshot+journal restore == compacted-snapshot restore, state-wise."""
        tmp_path = tmp_path_factory.mktemp("journal-eq")
        service = _mini_session()
        view = service.views.latest()
        service.save(tmp_path / "journaled.json")
        for replay in replays:
            answers = list(
                service.stream_answers(QueryRequest(view=view.view_id))
            )
            service.feedback(
                FeedbackRequest(
                    view=view.view_id, answer=answers[0], replay=replay
                )
            )
            service.save()  # appends one journal entry per iteration

        counter_before = edge_id_counter()
        journaled = QService.open(tmp_path / "journaled.json")
        assert journaled.stats().journal_entries == len(replays)

        set_edge_id_counter(counter_before)
        service.save(compact=True)  # folds everything into a fresh snapshot
        direct = QService.open(tmp_path / "journaled.json")
        assert direct.stats().journal_entries == 0

        assert graph_payload(journaled.graph) == graph_payload(direct.graph)
        assert weights_payload(journaled.graph.weights) == weights_payload(
            direct.graph.weights
        )
        assert (
            journaled.profile_index.export_state()
            == direct.profile_index.export_state()
        )
        assert journaled.learner.steps_processed == direct.learner.steps_processed
        assert len(journaled.feedback_log) == len(direct.feedback_log)


# ----------------------------------------------------------------------
# Corruption / version mismatch
# ----------------------------------------------------------------------
class TestCorruption:
    def _saved_session(self, tmp_path):
        service = _mini_session()
        path = tmp_path / "session.json"
        service.save(path)
        return path

    def test_truncated_snapshot(self, tmp_path):
        path = self._saved_session(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(SnapshotError, match="JSON"):
            QService.open(path)

    def test_bit_flip_fails_checksum(self, tmp_path):
        path = self._saved_session(tmp_path)
        document = json.loads(path.read_text())
        document["body"]["overlay"]["weights_version"] += 1  # tampering
        path.write_text(json.dumps(document))
        with pytest.raises(SnapshotError, match="checksum"):
            QService.open(path)

    def test_version_mismatch(self, tmp_path):
        path = self._saved_session(tmp_path)
        document = json.loads(path.read_text())
        document["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(document))
        with pytest.raises(SnapshotError, match="format version"):
            QService.open(path)

    def test_missing_wrapper(self, tmp_path):
        path = tmp_path / "session.json"
        path.write_text(json.dumps({"not": "a session"}))
        with pytest.raises(SnapshotError, match="wrapper"):
            QService.open(path)

    def test_corrupt_journal_entry(self, tmp_path):
        path = self._saved_session(tmp_path)
        service = QService.open(path)
        service.create_view(QueryRequest(keywords=("nucleus", "IPR002")))
        service.save()
        journal = path.parent / (path.name + ".journal")
        assert journal.read_text().strip()
        journal.write_text(journal.read_text()[:-10])
        with pytest.raises(SnapshotError):
            QService.open(path)

    def test_wrap_unwrap_round_trip(self):
        body = {"alpha": [1, 2.5, None, True], "beta": {"nested": "x"}}
        assert unwrap_document(wrap_document(body)) == body

    def test_unserializable_state_is_typed(self):
        with pytest.raises(SnapshotError, match="not serializable"):
            wrap_document({"bad": object()})

    def test_edge_counter_peek_does_not_consume(self):
        set_edge_id_counter(1234)
        assert edge_id_counter() == 1234
        assert edge_id_counter() == 1234
        edge = Edge.create("a", "b", EdgeKind.ASSOCIATION)
        assert edge.edge_id.endswith("#1234")
        assert edge_id_counter() == 1235

    def test_counter_peek_with_hand_installed_count(self):
        """The historical test hook — assigning a bare ``itertools.count`` —
        keeps working with the peek/restore helpers."""
        edges_module._edge_counter = itertools.count(7)
        assert edge_id_counter() == 7
        edge = Edge.create("a", "b", EdgeKind.ASSOCIATION)
        assert edge.edge_id.endswith("#7")
