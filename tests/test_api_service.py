"""Lazy pull-based consistency semantics of :class:`repro.api.QService`.

Covers the satellite contract of the service API:

* feedback followed by a read refreshes only the *read* view;
* a registration invalidates every view's answer cache exactly once and
  refreshes nothing until a read;
* the lazy pull path returns top-k answers identical (values, costs,
  order) to the eager seed path on a fig11-style feedback replay while
  performing strictly fewer view refreshes;
* streaming answers equal the materialized refresh and execute queries
  lazily, page by page.
"""

from __future__ import annotations

import warnings

import pytest

from repro import QSystem
from repro.api import (
    AlignmentStrategy,
    FeedbackRequest,
    InvalidRequestError,
    QService,
    QueryRequest,
    RegisterSourceRequest,
    ServiceConfig,
    UnknownViewError,
)
from repro.core import gold_vs_nongold_costs
from repro.core.simulated_feedback import simulated_feedback_for_view
from repro.datasets import build_interpro_go
from repro.datastore import DataSource
from repro.learning import AnnotationKind


def _mini_sources():
    go = DataSource.build(
        "go",
        {"term": ["acc", "name"]},
        data={
            "term": [
                {"acc": "GO:0001", "name": "plasma membrane"},
                {"acc": "GO:0002", "name": "nucleus"},
            ]
        },
    )
    interpro = DataSource.build(
        "interpro",
        {"interpro2go": ["go_id", "entry_ac"]},
        data={
            "interpro2go": [
                {"go_id": "GO:0001", "entry_ac": "IPR001"},
                {"go_id": "GO:0002", "entry_ac": "IPR002"},
            ]
        },
    )
    return [go, interpro]


def _mini_service() -> QService:
    service = QService(sources=_mini_sources())
    service.graph.add_association(
        "go.term", "acc", "interpro.interpro2go", "go_id", {"mad": 0.9}
    )
    return service


def _drain(pages) -> list:
    answers = []
    for page in pages:
        answers.extend(page.answers)
    return answers


class TestLazyConsistency:
    def test_feedback_refreshes_only_the_read_view(self):
        service = _mini_service()
        info_a = service.create_view(QueryRequest(keywords=("membrane", "IPR001")))
        info_b = service.create_view(QueryRequest(keywords=("nucleus", "IPR002")))
        view_a = service.view(info_a.view_id)
        view_b = service.view(info_b.view_id)
        assert view_a.refresh_count == 1 and view_b.refresh_count == 1

        answer = view_a.state.answers[0]
        service.feedback(FeedbackRequest(view=info_a.view_id, answer=answer))
        # The mutation itself refreshed nothing.
        assert view_a.refresh_count == 1 and view_b.refresh_count == 1

        _drain(service.answers(QueryRequest(view=info_a.view_id)))
        # Only the read view synchronized; the other stays stale until read.
        assert view_a.refresh_count == 2
        assert view_b.refresh_count == 1
        assert view_a.last_refresh.solver_runs == 1  # weights moved -> re-solve

        stats = service.stats()
        assert stats.view_refreshes == 3  # two creations + one stale read

    def test_fresh_read_skips_the_refresh(self):
        service = _mini_service()
        info = service.create_view(QueryRequest(keywords=("membrane", "IPR001")))
        first = _drain(service.answers(QueryRequest(view=info.view_id)))
        second = _drain(service.answers(QueryRequest(view=info.view_id)))
        stats = service.stats()
        # Creation refreshed once; both reads found a current snapshot.
        assert stats.view_refreshes == 1
        assert stats.view_refreshes_skipped == 2
        assert [a.values for a in first] == [a.values for a in second]
        # A fresh read skips even the solver.
        assert service.view(info.view_id).last_refresh.solver_runs == 0

    def test_registration_invalidates_all_views_exactly_once(self):
        service = _mini_service()
        info_a = service.create_view(QueryRequest(keywords=("membrane", "IPR001")))
        info_b = service.create_view(QueryRequest(keywords=("nucleus", "IPR002")))
        view_a = service.view(info_a.view_id)
        view_b = service.view(info_b.view_id)
        invalidations_before = (view_a.cache_invalidations, view_b.cache_invalidations)
        refreshes_before = (view_a.refresh_count, view_b.refresh_count)
        generation = service.engine_context.generation

        new_source = DataSource.build(
            "extra",
            {"facts": ["go_acc", "note"]},
            data={"facts": [{"go_acc": "GO:0001", "note": "liver"}]},
        )
        service.register_source(
            RegisterSourceRequest(source=new_source, strategy=AlignmentStrategy.EXHAUSTIVE)
        )

        # Mutation time: exactly one invalidation per view, zero refreshes.
        assert view_a.cache_invalidations == invalidations_before[0] + 1
        assert view_b.cache_invalidations == invalidations_before[1] + 1
        assert (view_a.refresh_count, view_b.refresh_count) == refreshes_before
        assert service.engine_context.generation > generation

        # Read time: the read view rebuilds (structure moved) and re-executes.
        _drain(service.answers(QueryRequest(view=info_a.view_id)))
        assert view_a.refresh_count == refreshes_before[0] + 1
        assert view_b.refresh_count == refreshes_before[1]
        assert view_a.last_refresh.queries_executed == len(view_a.state.queries)

    def test_multiple_mutations_cost_one_refresh_at_read(self):
        service = _mini_service()
        info = service.create_view(QueryRequest(keywords=("membrane", "IPR001")))
        view = service.view(info.view_id)
        answer = view.state.answers[0]
        for _ in range(5):
            service.feedback(FeedbackRequest(view=info.view_id, answer=answer))
        assert view.refresh_count == 1
        _drain(service.answers(QueryRequest(view=info.view_id)))
        assert view.refresh_count == 2  # five mutations, one refresh

    def test_association_merge_marks_views_stale(self):
        # Re-running bootstrap merges matcher confidences into EXISTING
        # association edges (no new nodes/edges, no weight change) — edge
        # costs still move, so the structure version must move with them
        # and the next read must re-solve.
        service = _rich_service()
        info = service.create_view(QueryRequest(keywords=("kinase", "title"), k=5))
        view = service.view(info.view_id)
        structure_before = service.graph.structure_version
        service.bootstrap_alignments(top_y=2)  # pure merge: same pairs again
        assert service.graph.structure_version > structure_before
        _drain(service.answers(QueryRequest(view=info.view_id)))
        assert view.last_refresh.solver_runs == 1

    def test_query_request_by_keywords_reuses_existing_view(self):
        service = _mini_service()
        service.create_view(QueryRequest(keywords=("membrane", "IPR001")))
        _drain(service.answers(QueryRequest(keywords=("membrane", "IPR001"))))
        assert len(service.views) == 1  # reused, not recreated

    def test_query_request_by_keywords_creates_view_on_demand(self):
        service = _mini_service()
        answers = _drain(service.answers(QueryRequest(keywords=("membrane", "IPR001"))))
        assert answers
        assert len(service.views) == 1

    def test_errors_are_typed(self):
        service = _mini_service()
        with pytest.raises(UnknownViewError):
            next(iter(service.answers(QueryRequest(view="view-9999"))))
        with pytest.raises(InvalidRequestError):
            next(iter(service.answers(QueryRequest())))
        with pytest.raises(InvalidRequestError):
            service.create_view(QueryRequest())
        # Zero is invalid, not "use the default".
        with pytest.raises(InvalidRequestError):
            service.create_view(QueryRequest(keywords=("membrane",), k=0))
        with pytest.raises(InvalidRequestError):
            service.answers(QueryRequest(keywords=("membrane", "IPR001"), page_size=0))

    def test_keyword_reuse_with_conflicting_k_is_rejected(self):
        service = _mini_service()
        info = service.create_view(QueryRequest(keywords=("membrane", "IPR001"), k=2))
        # Same k (or unspecified) reuses; a different k must not silently
        # serve the smaller-k ranking — on either reference form.
        _drain(service.answers(QueryRequest(keywords=("membrane", "IPR001"))))
        _drain(service.answers(QueryRequest(keywords=("membrane", "IPR001"), k=2)))
        assert len(service.views) == 1
        with pytest.raises(InvalidRequestError):
            service.answers(QueryRequest(keywords=("membrane", "IPR001"), k=5))
        with pytest.raises(InvalidRequestError):
            service.answers(QueryRequest(view=info.view_id, k=5))


def _rich_service(answer_limit=200) -> QService:
    """An InterPro-only session whose k=5 view spans several queries."""
    dataset = build_interpro_go(include_foreign_keys=True)
    service = QService(
        sources=[dataset.interpro],
        config=ServiceConfig(top_k=5, top_y=2, answer_limit=answer_limit),
    )
    service.bootstrap_alignments(top_y=2)
    return service


class TestStreaming:
    def test_stream_equals_materialized_refresh(self):
        service = _rich_service()
        info = service.create_view(QueryRequest(keywords=("kinase", "title"), k=5))
        view = service.view(info.view_id)
        expected = [(a.values, a.cost, a.provenance.query_id) for a in view.refresh().answers]
        streamed = [
            (a.values, a.cost, a.provenance.query_id)
            for a in service.stream_answers(QueryRequest(view=info.view_id))
        ]
        assert len(streamed) > 1
        assert streamed == expected

    @pytest.mark.memory_engine_internals
    def test_first_page_defers_remaining_query_execution(self):
        # Per-query deferral is a Python-engine property: on a
        # window-capable backend the first pull executes every missing
        # query in one windowed SELECT (a single snapshot round trip).
        service = _rich_service()
        info = service.create_view(QueryRequest(keywords=("kinase", "title"), k=5))
        view = service.view(info.view_id)
        total_queries = len(view.state.queries)
        assert total_queries > 1, "test needs a multi-query view"

        # Invalidate so the streamed read must re-execute from scratch.
        view.invalidate_cache()
        pages = service.answers(QueryRequest(view=info.view_id, page_size=1))
        next(pages)
        executed_after_first_page = view.last_refresh.queries_executed
        assert executed_after_first_page < total_queries
        # Draining the rest executes the remaining queries.
        for _ in pages:
            pass
        assert view.last_refresh.queries_executed == total_queries

    @pytest.mark.memory_engine_internals
    def test_unmaterialized_creation_executes_nothing_until_streamed(self):
        service = _rich_service()
        info = service.create_view(
            QueryRequest(keywords=("kinase", "title"), k=5), materialize=False
        )
        view = service.view(info.view_id)
        # The solve ran (ranking, alpha available) but no query executed.
        assert info.tree_count > 0 and info.alpha is not None
        assert view.last_refresh.queries_executed == 0
        assert view.last_refresh.queries_reused == 0

        pages = service.answers(QueryRequest(view=info.view_id, page_size=1))
        next(pages)
        assert 0 < view.last_refresh.queries_executed < len(view.state.queries)

    @pytest.mark.memory_engine_internals
    def test_auto_created_view_streams_pay_per_page(self):
        service = _rich_service()
        # First-ever read by keywords: the view is created solve-only and
        # the first page executes only the queries it needs.
        pages = service.answers(QueryRequest(keywords=("kinase", "title"), k=5, page_size=1))
        next(pages)
        view = service.view("kinase title")
        assert 0 < view.last_refresh.queries_executed < len(view.state.queries)

    def test_answers_accessor_rematerializes_after_stream(self):
        service = _rich_service()
        info = service.create_view(QueryRequest(keywords=("kinase", "title"), k=5))
        view = service.view(info.view_id)
        baseline = [(a.values, a.cost) for a in view.answers()]
        assert baseline
        # Feedback re-solves on the next streamed read...
        from repro.api import FeedbackRequest as FR

        service.feedback(FR(view=info.view_id, answer=view.state.answers[0]))
        streamed = [
            (a.values, a.cost)
            for a in service.stream_answers(QueryRequest(view=info.view_id))
        ]
        # ...and the legacy accessor must not report "no answers": it
        # re-materializes and agrees with the stream.
        assert view.answers(), "answers() must re-materialize, not return []"
        assert [(a.values, a.cost) for a in view.answers()] == streamed

    def test_stream_respects_answer_limit(self):
        service = _rich_service(answer_limit=3)
        info = service.create_view(QueryRequest(keywords=("kinase", "title"), k=5))
        streamed = list(service.stream_answers(QueryRequest(view=info.view_id)))
        materialized = service.view(info.view_id).refresh().answers
        assert len(streamed) == len(materialized) == 3
        assert [a.values for a in streamed] == [a.values for a in materialized]


class TestEagerLazyParity:
    """Fig11-style feedback replay: eager seed path vs lazy pull path.

    Edge ids embed a process-global counter, and the id strings end up in
    feature names whose set-iteration order affects floating-point summation
    order.  To compare two *instances* bit-for-bit, the counter is reset
    before each build so both systems allocate identical ids.
    """

    @staticmethod
    def _reset_edge_ids(monkeypatch):
        import itertools

        from repro.graph import edges as edges_module

        monkeypatch.setattr(edges_module, "_edge_counter", itertools.count())

    @pytest.mark.parametrize("repetitions", [1, 2])
    def test_identical_topk_with_strictly_fewer_refreshes(self, repetitions, monkeypatch):
        num_queries = 4
        dataset_eager = build_interpro_go()
        dataset_lazy = build_interpro_go()
        self._reset_edge_ids(monkeypatch)

        # --- eager: the deprecated QSystem refreshes every view per event.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            eager = QSystem(
                sources=dataset_eager.catalog.sources(),
                config=ServiceConfig(top_k=5, top_y=2),
            )
        eager.bootstrap_alignments(top_y=2)
        eager_views, eager_events = [], []
        for keywords in dataset_eager.keyword_queries[:num_queries]:
            view = eager.create_view(list(keywords), k=5)
            event = simulated_feedback_for_view(view, dataset_eager.gold)
            if event is not None:
                eager_views.append(view)
                eager_events.append(event)
        for _ in range(repetitions):
            for view, event in zip(eager_views, eager_events):
                eager.apply_feedback_events(view, [event], repetitions=1)
        eager_answers = {
            " ".join(view.keywords): [(a.values, a.cost) for a in view.answers()]
            for view in eager_views
        }
        eager_refreshes = sum(view.refresh_count for view in eager.views.values())

        # --- lazy: the service invalidates on mutation, refreshes on read.
        self._reset_edge_ids(monkeypatch)
        lazy = QService(
            sources=dataset_lazy.catalog.sources(),
            config=ServiceConfig(top_k=5, top_y=2),
        )
        lazy.bootstrap_alignments(top_y=2)
        lazy_views, lazy_events = [], []
        for keywords in dataset_lazy.keyword_queries[:num_queries]:
            info = lazy.create_view(QueryRequest(keywords=tuple(keywords), k=5))
            view = lazy.view(info.view_id)
            event = simulated_feedback_for_view(view, dataset_lazy.gold)
            if event is not None:
                lazy_views.append(view)
                lazy_events.append(event)
        for _ in range(repetitions):
            for view, event in zip(lazy_views, lazy_events):
                lazy.apply_feedback_events(view, [event], repetitions=1)
        lazy_answers = {
            " ".join(view.keywords): [
                (a.values, a.cost)
                for a in lazy.stream_answers(QueryRequest(view=view))
            ]
            for view in lazy_views
        }
        lazy_refreshes = sum(record.view.refresh_count for record in lazy.views)

        # Identical learning outcome: with aligned edge ids the two weight
        # vectors must agree exactly (one persistent learner, same math)...
        assert lazy.graph.weights.as_dict() == eager.graph.weights.as_dict()
        eager_gap = gold_vs_nongold_costs(eager.graph, dataset_eager.gold)
        lazy_gap = gold_vs_nongold_costs(lazy.graph, dataset_lazy.gold)
        assert lazy_gap.gold_average == pytest.approx(eager_gap.gold_average)
        assert lazy_gap.non_gold_average == pytest.approx(eager_gap.non_gold_average)
        # ...identical top-k answers: values, costs and order...
        assert set(lazy_answers) == set(eager_answers)
        for name in eager_answers:
            assert lazy_answers[name] == eager_answers[name], name
        # ...at strictly fewer view refreshes.
        assert lazy_refreshes < eager_refreshes
        # Exact lazy accounting: one refresh at creation + one read per view.
        assert lazy_refreshes == 2 * len(lazy_views) + (len(lazy.views) - len(lazy_views))
