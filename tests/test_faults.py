"""Fault-tolerance tests: deadlines, retry/backoff, degraded mode, injection.

Everything here is deterministic: fault schedules are scripted
:class:`~repro.faults.FaultPlan` rules, budgets run on injected clocks, and
retry policies use injected ``sleep``/``rng`` — no test depends on wall
time racing real work.
"""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.api import QService, QueryRequest, ServiceConfig
from repro.exceptions import (
    DeadlineExceededError,
    InvalidRequestError,
    ServerClosedError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    StorageError,
    TransientStorageError,
)
from repro.faults import (
    Budget,
    FaultPlan,
    FaultRule,
    FaultyBackend,
    InjectedFaultError,
    RetryPolicy,
    classify_storage_error,
    is_transient,
    wrap_session_store,
)
from repro.datastore.csvio import source_from_dict, source_to_dict
from repro.service import QServer
from repro.storage import MemoryBackend

pytestmark = pytest.mark.fault_injection


def _gbco_service(gbco_dataset):
    """A bootstrap-aligned session over a *clone* of the GBCO catalog.

    Cloning matters: attaching the shared fixture's tables to a
    service-owned backend would leave them dangling when that backend
    closes at the end of the test.
    """
    service = QService(
        sources=[
            source_from_dict(source_to_dict(source))
            for source in gbco_dataset.catalog
        ]
    )
    service.bootstrap_alignments()
    return service


# ----------------------------------------------------------------------
# Budget (cooperative deadlines, injected clock)
# ----------------------------------------------------------------------
class _StepClock:
    """A manual clock: the test moves time, the budget only reads it."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestBudget:
    def test_check_raises_typed_error_after_expiry(self):
        clock = _StepClock()
        budget = Budget(deadline_s=1.0, clock=clock)
        budget.check("early")  # not expired: no raise
        clock.now = 2.0
        with pytest.raises(DeadlineExceededError) as excinfo:
            budget.check("solver")
        assert excinfo.value.deadline_ms == 1000.0
        assert excinfo.value.elapsed_ms == 2000.0
        assert excinfo.value.where == "solver"
        assert "solver" in str(excinfo.value)

    def test_tick_polls_the_clock_on_a_stride(self):
        clock = _StepClock()
        budget = Budget(deadline_s=0.5, clock=clock)
        clock.now = 1.0  # already expired, but ticks are lazy
        for _ in range(63):
            budget.tick("loop")  # strides 1..63 never read the clock
        with pytest.raises(DeadlineExceededError):
            budget.tick("loop")  # the 64th does

    def test_mark_truncated_records_partial_result(self):
        budget = Budget.from_deadline_ms(250.0, clock=_StepClock())
        assert budget.deadline_ms == 250.0
        assert not budget.truncated
        budget.mark_truncated("stream")
        assert budget.truncated
        assert budget.where == "stream"

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            Budget(deadline_s=-1.0)

    def test_zero_deadline_expires_immediately(self):
        budget = Budget(deadline_s=0.0, clock=_StepClock())
        assert budget.expired()


# ----------------------------------------------------------------------
# Classification + retry policy
# ----------------------------------------------------------------------
class TestClassification:
    def test_sqlite_locked_is_transient(self):
        exc = sqlite3.OperationalError("database is locked")
        classified = classify_storage_error(exc)
        assert isinstance(classified, TransientStorageError)
        assert classified.__cause__ is exc
        assert is_transient(exc)

    def test_wrapped_sqlite_lock_recognized_through_cause_chain(self):
        try:
            try:
                raise sqlite3.OperationalError("database table is locked: t")
            except sqlite3.OperationalError as inner:
                raise StorageError("backend write failed") from inner
        except StorageError as outer:
            classified = classify_storage_error(outer)
        assert isinstance(classified, TransientStorageError)

    def test_non_transient_errors_pass_through_unchanged(self):
        exc = sqlite3.OperationalError("no such table: frob")
        assert classify_storage_error(exc) is exc
        assert not is_transient(exc)
        runtime = RuntimeError("boom")
        assert classify_storage_error(runtime) is runtime
        assert not is_transient(runtime)

    def test_injected_faults_classify_by_kind(self):
        assert is_transient(TransientStorageError("injected"))
        assert not is_transient(InjectedFaultError("injected"))


class TestRetryPolicy:
    def test_delays_are_exponential_capped_and_jitter_free_at_zero(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.01, max_delay_s=0.05, jitter=0.0
        )
        assert list(policy.delays_s()) == [0.01, 0.02, 0.04, 0.05]

    def test_run_retries_transient_then_succeeds(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=3, jitter=0.0, sleep=sleeps.append)
        attempts = []

        def flaky():
            attempts.append(len(attempts))
            if len(attempts) < 3:
                raise TransientStorageError("locked")
            return "ok"

        assert policy.run(flaky) == "ok"
        assert len(attempts) == 3
        assert len(sleeps) == 2

    def test_run_raises_after_exhausting_attempts(self):
        policy = RetryPolicy(max_attempts=2, sleep=lambda _s: None)
        with pytest.raises(TransientStorageError):
            policy.run(lambda: (_ for _ in ()).throw(TransientStorageError("locked")))

    def test_run_does_not_retry_non_transient(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise InjectedFaultError("disk gone")

        policy = RetryPolicy(max_attempts=5, sleep=lambda _s: None)
        with pytest.raises(InjectedFaultError):
            policy.run(broken)
        assert len(attempts) == 1


# ----------------------------------------------------------------------
# Fault plans + backend wrapper
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_rule_fires_on_schedule_and_disarms(self):
        rule = FaultRule(op="scan", after=2, every=2, times=2)
        fired = []
        for call in range(1, 8):
            if rule.should_fire(call):
                rule.fired += 1
                fired.append(call)
        assert fired == [2, 4]  # disarmed after `times` firings

    def test_plan_counts_per_op_and_enable_resets(self):
        plan = FaultPlan(rules=[FaultRule(op="scan", error="transient", after=2)])
        plan.on_call("scan")  # call 1: passes
        with pytest.raises(TransientStorageError):
            plan.on_call("scan")  # call 2: fires
        assert plan.faults_fired() == 1
        plan.on_call("insert_rows")  # other ops have their own counters
        plan.enable()  # reset
        plan.on_call("scan")  # counts restart at 1
        assert plan.faults_fired() == 0

    def test_disabled_plan_is_a_no_op(self):
        plan = FaultPlan(rules=[FaultRule(op="scan")], active=False)
        plan.on_call("scan")
        assert plan.faults_fired() == 0


def test_faulty_backend_injects_on_nth_call_and_delegates_otherwise():
    plan = FaultPlan(rules=[FaultRule(op="scan", error="fatal", after=2)])
    backend = FaultyBackend(MemoryBackend(), plan)
    backend.create_relation("t", None)
    backend.insert_rows("t", [("a",), ("b",)])
    assert len(backend.scan("t")) == 2  # first scan passes
    with pytest.raises(InjectedFaultError):
        backend.scan("t")  # second fires
    plan.disable()
    assert len(backend.scan("t")) == 2
    assert backend.kind == "memory"
    assert backend.relation_keys() == ("t",)


# ----------------------------------------------------------------------
# Serving layer: helpers
# ----------------------------------------------------------------------
def _fast_policy():
    """A retry policy that never really sleeps (still counts retries)."""
    return RetryPolicy(max_attempts=3, jitter=0.0, sleep=lambda _s: None)


def _server(mini_catalog, plan=None, **kwargs):
    backend = FaultyBackend(MemoryBackend(), plan) if plan is not None else None
    service = QService(
        sources=list(mini_catalog),
        config=ServiceConfig(write_queue_limit=8),
        backend=backend,
    )
    server = QServer(service, retry_policy=_fast_policy(), **kwargs)
    return service, server


# ----------------------------------------------------------------------
# Writer lane: retry with backoff
# ----------------------------------------------------------------------
def test_writer_retries_transient_fault_and_applies_once(mini_catalog):
    plan = FaultPlan(
        rules=[FaultRule(op="scan", error="transient", times=1)], active=False
    )
    service, server = _server(mini_catalog, plan=plan)
    backend = service.catalog.backend
    key = backend.relation_keys()[0]
    applications = []

    def mutate():
        rows = backend.scan(key)  # first attempt: injected transient error
        applications.append(len(rows))
        return len(rows)

    with service, server:
        plan.enable()
        result = server.submit_mutation(mutate, kind="probe").result(timeout=30)
        plan.disable()
        assert result > 0
        assert applications == [result]  # applied exactly once
        stats = server.stats()
        assert stats.writes_retried == 1
        assert stats.writes_applied == 1
        assert stats.writes_failed == 0
        assert stats.health == "healthy"
        assert ("probe", None) in server.write_log


def test_writer_fails_op_but_stays_healthy_when_retries_exhaust(mini_catalog):
    plan = FaultPlan(
        rules=[FaultRule(op="scan", error="transient", times=None)], active=False
    )
    service, server = _server(mini_catalog, plan=plan)
    backend = service.catalog.backend
    key = backend.relation_keys()[0]
    with service, server:
        plan.enable()
        future = server.submit_mutation(lambda: backend.scan(key), kind="probe")
        with pytest.raises(TransientStorageError):
            future.result(timeout=30)
        plan.disable()
        stats = server.stats()
        assert stats.writes_failed == 1
        assert stats.writes_retried == 2  # max_attempts=3 -> two retries
        assert stats.health == "healthy"  # transient exhaustion != fatal
        # The lane still works.
        assert server.submit_mutation(lambda: "ok", kind="noop").result(30) == "ok"


# ----------------------------------------------------------------------
# Degraded read-only mode + recovery
# ----------------------------------------------------------------------
def test_fatal_storage_fault_degrades_then_recovers(mini_catalog):
    plan = FaultPlan(
        rules=[FaultRule(op="scan", error="fatal", times=1)], active=False
    )
    service, server = _server(mini_catalog, plan=plan)
    backend = service.catalog.backend
    key = backend.relation_keys()[0]
    with service, server:
        baseline = server.query(QueryRequest(keywords=("kinase", "binding")))
        plan.enable()
        future = server.submit_mutation(lambda: backend.scan(key), kind="probe")
        with pytest.raises(InjectedFaultError):
            future.result(timeout=30)
        assert server.health() == "degraded"
        assert isinstance(server.last_fault(), InjectedFaultError)

        # Writes fail fast; reads keep serving the published snapshot.
        with pytest.raises(ServiceUnavailableError) as excinfo:
            server.submit_mutation(lambda: "nope", kind="late")
        assert excinfo.value.retryable
        still = server.query(QueryRequest(view=baseline.view_id))
        assert still.answers == baseline.answers
        assert still.snapshot_id == baseline.snapshot_id

        # Backend back to normal (rule disarmed after 1 firing): recover.
        assert server.recover() == "healthy"
        assert server.last_fault() is None
        assert server.submit_mutation(lambda: "ok", kind="noop").result(30) == "ok"
        assert server.stats().health == "healthy"


def test_recover_fails_and_stays_degraded_while_fault_persists(mini_catalog):
    plan = FaultPlan(
        rules=[
            FaultRule(op="scan", error="fatal", times=1),
            FaultRule(op="relation_keys", error="fatal", times=1),
        ],
        active=False,
    )
    service, server = _server(mini_catalog, plan=plan)
    backend = service.catalog.backend
    key = backend.relation_keys()[0]
    with service, server:
        plan.enable()
        # relation_keys rule fires on the recovery probe, not this lookup:
        # counters reset at enable(), and the rule disarms after one firing.
        future = server.submit_mutation(lambda: backend.scan(key), kind="probe")
        with pytest.raises(InjectedFaultError):
            future.result(timeout=30)
        assert server.health() == "degraded"
        with pytest.raises(ServiceUnavailableError):
            server.recover()  # probe hits the relation_keys fault
        assert server.health() == "degraded"
        assert server.recover() == "healthy"  # fault cleared (times=1)


def test_degraded_mode_drains_queued_writes_with_typed_errors(mini_catalog):
    plan = FaultPlan(
        rules=[FaultRule(op="scan", error="fatal", times=1)], active=False
    )
    service, server = _server(mini_catalog, plan=plan)
    backend = service.catalog.backend
    key = backend.relation_keys()[0]
    with service, server:
        gate = threading.Event()
        release = threading.Event()

        def blocker():
            gate.set()
            release.wait(timeout=30)
            return backend.scan(key)  # fatal once released

        blocked = server.submit_mutation(blocker, kind="block")
        assert gate.wait(timeout=10)
        queued = [server.submit_mutation(lambda: "q", kind="queued") for _ in range(3)]
        plan.enable()
        release.set()
        with pytest.raises(InjectedFaultError):
            blocked.result(timeout=30)
        for future in queued:
            with pytest.raises(ServiceUnavailableError):
                future.result(timeout=30)
        assert server.health() == "degraded"
        assert server.stats().writes_failed == 4


# ----------------------------------------------------------------------
# Idempotency: a retry after a partially applied write never double-applies
# ----------------------------------------------------------------------
def test_autosave_fault_after_apply_does_not_double_apply(mini_catalog, tmp_path):
    path = tmp_path / "session.json"
    service = QService(sources=list(mini_catalog), autosave=path)
    service.save()  # create the persistence layer, then wrap its store
    plan = FaultPlan(
        rules=[FaultRule(op="append_entry", error="transient", times=1)],
        active=False,
    )
    wrap_session_store(service, plan)
    server = QServer(service, retry_policy=_fast_policy())
    with service, server:
        plan.enable()
        # The mutation lands in memory, then its autosave journal append
        # fails transiently; the writer retry must observe the recorded
        # idempotency key and skip re-execution.
        server.create_view(QueryRequest(keywords=("kinase",), name="only-once"))
        plan.disable()
        assert [r.name for r in service.views.records()].count("only-once") == 1
        stats = server.stats()
        assert stats.writes_retried == 1
        assert stats.writes_applied == 1
        assert stats.health == "healthy"
        assert len(service._applied_ops) == 1
        applied_key = next(iter(service._applied_ops))
        assert service.op_applied(applied_key)
        # A later successful save persists the key; reopening restores it.
        service.save()
    reopened = QService.open(path)
    with reopened:
        assert reopened.op_applied(applied_key)
        assert [r.name for r in reopened.views.records()].count("only-once") == 1


def test_retry_of_unapplied_attempt_reuses_edge_ids(mini_catalog):
    """A failed-before-apply attempt must not burn edge ids (oracle replay)."""
    from repro.graph.edges import edge_id_counter

    plan = FaultPlan(
        rules=[FaultRule(op="scan", error="transient", times=2)], active=False
    )
    service, server = _server(mini_catalog, plan=plan)
    backend = service.catalog.backend
    key = backend.relation_keys()[0]
    with service, server:
        before = edge_id_counter()
        plan.enable()
        server.submit_mutation(lambda: backend.scan(key), kind="probe").result(30)
        plan.disable()
        # Two failed attempts allocated nothing (scan burns no edge ids),
        # and the rewind kept the counter exactly where the one successful
        # application left it.
        assert edge_id_counter() == before
        assert server.stats().writes_retried == 2


# ----------------------------------------------------------------------
# Deadlines end to end
# ----------------------------------------------------------------------
def test_zero_deadline_read_raises_typed_error(gbco_dataset):
    keywords = gbco_dataset.query_log[2].keywords
    service = _gbco_service(gbco_dataset)
    with service, QServer(service) as server:
        warm = server.query(QueryRequest(keywords=keywords))
        assert len(warm.answers) > 0
        with pytest.raises(DeadlineExceededError):
            server.query(QueryRequest(view=warm.view_id, tenant="t0"), deadline_ms=0.0)
        # The failed deadline read polluted nothing: the same (view,
        # tenant) still materializes in full afterwards.
        full = server.query(QueryRequest(view=warm.view_id, tenant="t0"))
        assert not full.degraded
        assert len(full.answers) == len(warm.answers)


def test_generous_deadline_read_is_exact_and_not_degraded(gbco_dataset):
    keywords = gbco_dataset.query_log[2].keywords
    service = _gbco_service(gbco_dataset)
    with service, QServer(service) as server:
        free = server.query(QueryRequest(keywords=keywords))
        bounded = server.query(QueryRequest(view=free.view_id), deadline_ms=60_000.0)
        assert bounded.answers == free.answers
        assert not bounded.degraded
        stats = server.stats()
        assert stats.reads_degraded == 0


def test_stream_truncates_at_query_boundary_and_marks_budget(gbco_dataset):
    """Expiry mid-stream keeps already-yielded answers and flags truncation."""
    keywords = gbco_dataset.query_log[2].keywords
    service = _gbco_service(gbco_dataset)
    with service:
        info = service.create_view(QueryRequest(keywords=keywords), materialize=False)
        record = service.views.resolve(info.view_id)
        full = list(record.view.stream_answers())
        assert len(full) > 1

        clock = _StepClock()
        budget = Budget(deadline_s=100.0, clock=clock)
        stream = record.view.stream_answers(budget=budget)
        first = next(stream)
        clock.now = 1000.0  # expire between query executions
        rest = list(stream)
        assert budget.truncated
        assert budget.where == "stream"
        partial = [first] + rest
        assert 1 <= len(partial) < len(full)
        # Every yielded answer is a prefix-exact match of the full read.
        assert [a.values for a in partial] == [a.values for a in full[: len(partial)]]

        # Truncated state was never cached: a fresh full read is complete.
        assert len(list(record.view.stream_answers())) == len(full)


def test_budgeted_reads_never_pin_partial_answers(gbco_dataset):
    keywords = gbco_dataset.query_log[2].keywords
    service = _gbco_service(gbco_dataset)
    with service, QServer(service) as server:
        # Create through the writer lane only — no read yet, so the
        # published snapshot has no pinned materialization for the view.
        info = server.create_view(QueryRequest(keywords=keywords))
        fresh = server.snapshot()
        sv = fresh.resolve(info.view_id, (), None)
        assert sv is not None
        assert fresh.pinned_count() == 0

        clock = _StepClock()
        budget = Budget(deadline_s=100.0, clock=clock)
        answers = fresh.answers_for(sv, budget=budget)
        assert len(answers) > 0
        # The budgeted materialization left no pinned slot behind …
        assert fresh.pinned_count() == 0
        # … so the unbudgeted read materializes (and pins) the real thing.
        pinned = fresh.answers_for(sv)
        assert fresh.pinned_count() == 1
        assert pinned == answers


def test_solver_returns_partial_tree_list_on_expiry(gbco_dataset):
    """KBestSteiner drains complete candidates instead of raising mid-way."""
    from repro.steiner.network import SteinerNetwork
    from repro.steiner.topk import KBestSteiner

    keywords = gbco_dataset.query_log[2].keywords
    service = _gbco_service(gbco_dataset)
    with service:
        info = service.create_view(QueryRequest(keywords=keywords), materialize=False)
        view = service.views.resolve(info.view_id).view
        view.prepare()
        graph = view.query_graph.graph
        terminals = list(view.query_graph.keyword_nodes.values())
        # A custom solver takes the legacy protocol: the budget is polled
        # only in the enumerator's own loop, so its clock reads are exactly
        # countable — read 1 at construction, read 2 at the pre-solve
        # check, read 3+ in the branching loop.
        solver = KBestSteiner(solver=lambda g, t: SteinerNetwork(g).default_tree(t))
        full = solver.solve(graph, terminals, k=5)
        assert len(full) >= 2

        # Expired-before-first-solve: typed error.
        with pytest.raises(DeadlineExceededError):
            solver.solve(graph, terminals, k=5, budget=Budget(0.0, clock=_StepClock()))

        # Expiry armed right after the first base solve: partial, truncated.
        reads = {"n": 0}

        def clock() -> float:
            reads["n"] += 1
            return 0.0 if reads["n"] <= 2 else 1000.0

        budget = Budget(deadline_s=100.0, clock=clock)
        partial = solver.solve(graph, terminals, k=5, budget=budget)
        assert budget.truncated
        assert 1 <= len(partial) < len(full)
        assert [t.cost for t in partial] == [t.cost for t in full[: len(partial)]]


# ----------------------------------------------------------------------
# Backpressure fields + fast-fail on both backends (satellite)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", [None, "sqlite"])
def test_overload_error_carries_pending_and_limit(mini_catalog, backend):
    with QService(sources=list(mini_catalog), backend=backend) as service:
        with QServer(service, read_workers=2, write_queue_limit=3) as server:
            gate = threading.Event()
            release = threading.Event()

            def blocker():
                gate.set()
                release.wait(timeout=30)

            blocked = server.submit_mutation(blocker, kind="block")
            assert gate.wait(timeout=10)
            fillers = [
                server.submit_mutation(lambda: None, kind="fill") for _ in range(3)
            ]
            with pytest.raises(ServiceOverloadedError) as excinfo:
                server.submit_mutation(lambda: None, kind="overflow")
            assert excinfo.value.limit == 3
            assert excinfo.value.pending == 3
            assert excinfo.value.retryable  # callers may back off and retry
            assert server.stats().writes_rejected == 1
            release.set()
            blocked.result(timeout=30)
            for filler in fillers:
                filler.result(timeout=30)
            assert server.stats().writes_failed == 0


# ----------------------------------------------------------------------
# Cancellation, bounded close, interrupt propagation (satellites)
# ----------------------------------------------------------------------
def test_queued_write_can_be_cancelled_before_writer_picks_it_up(mini_catalog):
    service, server = _server(mini_catalog)
    with service, server:
        gate = threading.Event()
        release = threading.Event()

        def blocker():
            gate.set()
            release.wait(timeout=30)
            return "done"

        blocked = server.submit_mutation(blocker, kind="block")
        assert gate.wait(timeout=10)
        doomed = server.submit_mutation(lambda: "never", kind="doomed")
        assert doomed.cancel()  # still queued: cancellable
        release.set()
        assert blocked.result(timeout=30) == "done"
        marker = server.submit_mutation(lambda: "after", kind="after")
        assert marker.result(timeout=30) == "after"
        assert doomed.cancelled()
        stats = server.stats()
        assert stats.writes_cancelled == 1
        assert ("doomed", None) not in server.write_log


def test_close_timeout_fails_still_queued_ops_with_typed_error(mini_catalog):
    service, server = _server(mini_catalog)
    release = threading.Event()
    gate = threading.Event()

    def wedge():
        gate.set()
        release.wait(timeout=60)
        return "unwedged"

    wedged = server.submit_mutation(wedge, kind="wedge")
    assert gate.wait(timeout=10)
    stuck = [server.submit_mutation(lambda: "stuck", kind="stuck") for _ in range(2)]
    assert server.close(timeout=0.2) is False  # writer still wedged
    for future in stuck:
        with pytest.raises(ServerClosedError):
            future.result(timeout=5)
    # Closed servers reject everything with the typed (still
    # InvalidRequestError-compatible) error.
    with pytest.raises(InvalidRequestError, match="closed"):
        server.submit_mutation(lambda: None)
    with pytest.raises(ServerClosedError):
        server.query(QueryRequest(keywords=("kinase",)))
    assert server.health() == "closed"
    release.set()  # unwedge: the in-flight op completes, writer exits
    assert wedged.result(timeout=30) == "unwedged"
    assert server.close() is True  # idempotent; writer has drained now
    service.close()


def test_keyboard_interrupt_escapes_the_writer_lane(mini_catalog):
    service, server = _server(mini_catalog)
    interrupts = []
    previous_hook = threading.excepthook
    threading.excepthook = lambda args: interrupts.append(args.exc_type)
    try:
        future = server.submit_mutation(
            lambda: (_ for _ in ()).throw(KeyboardInterrupt()), kind="interrupt"
        )
        with pytest.raises(KeyboardInterrupt):
            future.result(timeout=30)
        server._writer.join(timeout=10)
        # The interrupt was re-raised (killing the writer thread), not
        # swallowed like an ordinary op failure.
        assert not server._writer.is_alive()
        assert interrupts == [KeyboardInterrupt]
        assert server.health() == "degraded"
        with pytest.raises(ServiceUnavailableError):
            server.submit_mutation(lambda: None)
    finally:
        threading.excepthook = previous_hook
        server.close(timeout=1.0)
        service.close()
