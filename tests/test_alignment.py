"""Unit tests for the aligner strategies and the registration service."""

from __future__ import annotations

import pytest

from repro.alignment import (
    AlignmentResult,
    ExhaustiveAligner,
    PreferentialAligner,
    SourceRegistrar,
    ViewBasedAligner,
    install_associations,
    prior_from_weights,
)
from repro.datastore.database import Catalog, DataSource
from repro.exceptions import AlignmentError, RegistrationError
from repro.graph import QueryGraphBuilder, SearchGraph, relation_feature
from repro.matching import (
    AttributeRef,
    Correspondence,
    MetadataMatcher,
    ValueOverlapFilter,
)


@pytest.fixture()
def new_source() -> DataSource:
    """A new source whose attributes overlap with the mini catalog."""
    return DataSource.build(
        "newdb",
        {"xref": ["go_acc", "entry_ac", "note"]},
        data={
            "xref": [
                {"go_acc": "GO:0001", "entry_ac": "IPR001", "note": "curated"},
                {"go_acc": "GO:0002", "entry_ac": "IPR002", "note": "automatic"},
            ]
        },
    )


def register(graph, catalog, source):
    """Add the new source to catalog + graph the way the registrar does."""
    catalog.add_source(source)
    graph.add_source(source)


class TestExhaustiveAligner:
    def test_considers_all_existing_relations(self, mini_catalog, mini_graph, new_source):
        register(mini_graph, mini_catalog, new_source)
        aligner = ExhaustiveAligner(MetadataMatcher())
        result = aligner.align(mini_graph, mini_catalog, new_source)
        assert result.strategy == "exhaustive"
        assert set(result.candidate_relations) == {
            "go.term",
            "interpro.interpro2go",
            "interpro.entry",
            "interpro.pub",
            "interpro.entry2pub",
        }
        # 3 new attributes x 10 existing attributes
        assert result.attribute_comparisons == 30
        assert result.relation_pairs_considered == 5
        assert result.elapsed_seconds >= 0.0

    def test_installs_association_edges(self, mini_catalog, mini_graph, new_source):
        register(mini_graph, mini_catalog, new_source)
        before = len(mini_graph.association_edges())
        result = ExhaustiveAligner(MetadataMatcher()).align(mini_graph, mini_catalog, new_source)
        assert len(result.edges_added) > 0
        assert len(mini_graph.association_edges()) > before
        # entry_ac should align by name.
        edge = mini_graph.association_between(
            "newdb.xref", "entry_ac", "interpro.entry", "entry_ac"
        )
        assert edge is not None

    def test_value_filter_reduces_comparisons(self, mini_catalog, mini_graph, new_source):
        register(mini_graph, mini_catalog, new_source)
        tables = mini_catalog.all_tables()
        overlap_filter = ValueOverlapFilter.from_tables(tables)
        unfiltered = ExhaustiveAligner(MetadataMatcher()).align(mini_graph, mini_catalog, new_source)
        filtered = ExhaustiveAligner(
            MetadataMatcher(), value_filter=overlap_filter
        ).align(mini_graph, mini_catalog, new_source)
        assert filtered.attribute_comparisons < unfiltered.attribute_comparisons

    def test_count_only_mode_adds_no_edges(self, mini_catalog, mini_graph, new_source):
        register(mini_graph, mini_catalog, new_source)
        before = len(mini_graph.association_edges())
        result = ExhaustiveAligner(MetadataMatcher(), count_only=True).align(
            mini_graph, mini_catalog, new_source
        )
        assert result.attribute_comparisons > 0
        assert result.edges_added == []
        assert len(mini_graph.association_edges()) == before


class TestViewBasedAligner:
    def _query_graph(self, mini_catalog, mini_graph, keywords):
        builder = QueryGraphBuilder(mini_catalog)
        return builder.expand(mini_graph, keywords)

    def test_restricts_to_alpha_neighborhood(self, mini_catalog, mini_graph, new_source):
        expanded = self._query_graph(mini_catalog, mini_graph, ["membrane"])
        register(expanded.graph, mini_catalog, new_source)
        aligner = ViewBasedAligner(
            MetadataMatcher(), keyword_nodes=expanded.terminals, alpha=0.5
        )
        result = aligner.align(expanded.graph, mini_catalog, new_source)
        # With a small alpha only go.term (where 'plasma membrane' lives) is reachable.
        assert result.candidate_relations == ["go.term"]
        assert result.attribute_comparisons <= 3 * 2

    def test_larger_alpha_reaches_more_relations(self, mini_catalog, mini_graph, new_source):
        expanded = self._query_graph(mini_catalog, mini_graph, ["membrane"])
        register(expanded.graph, mini_catalog, new_source)
        small = ViewBasedAligner(MetadataMatcher(), expanded.terminals, alpha=0.5).align(
            expanded.graph, mini_catalog, new_source
        )
        large = ViewBasedAligner(MetadataMatcher(), expanded.terminals, alpha=10.0).align(
            expanded.graph, mini_catalog, new_source
        )
        assert set(small.candidate_relations) <= set(large.candidate_relations)
        assert large.attribute_comparisons >= small.attribute_comparisons

    def test_never_more_comparisons_than_exhaustive(self, mini_catalog, mini_graph, new_source):
        expanded = self._query_graph(mini_catalog, mini_graph, ["membrane"])
        register(expanded.graph, mini_catalog, new_source)
        view_based = ViewBasedAligner(MetadataMatcher(), expanded.terminals, alpha=2.0).align(
            expanded.graph, mini_catalog, new_source
        )
        exhaustive = ExhaustiveAligner(MetadataMatcher()).align(
            expanded.graph, mini_catalog, new_source
        )
        assert view_based.attribute_comparisons <= exhaustive.attribute_comparisons

    def test_negative_alpha_rejected(self):
        with pytest.raises(AlignmentError):
            ViewBasedAligner(MetadataMatcher(), ["kw"], alpha=-1.0)

    def test_missing_keyword_nodes_raise(self, mini_catalog, mini_graph, new_source):
        register(mini_graph, mini_catalog, new_source)
        aligner = ViewBasedAligner(MetadataMatcher(), ["kw:not_there"], alpha=1.0)
        with pytest.raises(AlignmentError):
            aligner.align(mini_graph, mini_catalog, new_source)


class TestPreferentialAligner:
    def test_prior_ordering_and_budget(self, mini_catalog, mini_graph, new_source):
        register(mini_graph, mini_catalog, new_source)
        prior = {"interpro.pub": 10.0, "go.term": 5.0, "interpro.entry": 1.0}
        aligner = PreferentialAligner(MetadataMatcher(), prior=prior, max_relations=2)
        result = aligner.align(mini_graph, mini_catalog, new_source)
        assert result.candidate_relations == ["interpro.pub", "go.term"]

    def test_callable_prior(self, mini_catalog, mini_graph, new_source):
        register(mini_graph, mini_catalog, new_source)
        aligner = PreferentialAligner(
            MetadataMatcher(), prior=lambda rel: len(rel), max_relations=1
        )
        result = aligner.align(mini_graph, mini_catalog, new_source)
        assert result.candidate_relations == ["interpro.interpro2go"]

    def test_prior_from_weights(self, mini_graph):
        mini_graph.weights.set(relation_feature("go.term"), -2.0)
        mini_graph.weights.set(relation_feature("interpro.pub"), 1.0)
        prior = prior_from_weights(mini_graph)
        assert prior["go.term"] == pytest.approx(2.0)
        assert prior["interpro.pub"] == pytest.approx(-1.0)

    def test_invalid_budget(self):
        with pytest.raises(AlignmentError):
            PreferentialAligner(MetadataMatcher(), max_relations=0)

    def test_cheaper_than_view_based(self, mini_catalog, mini_graph, new_source):
        register(mini_graph, mini_catalog, new_source)
        preferential = PreferentialAligner(
            MetadataMatcher(), prior={}, max_relations=1
        ).align(mini_graph, mini_catalog, new_source)
        exhaustive = ExhaustiveAligner(MetadataMatcher()).align(
            mini_graph, mini_catalog, new_source
        )
        assert preferential.attribute_comparisons < exhaustive.attribute_comparisons


class TestInstallAssociations:
    def test_merges_matchers_on_one_edge(self, mini_graph):
        correspondences = [
            Correspondence(AttributeRef("go.term", "acc"), AttributeRef("interpro.entry", "entry_ac"), 0.7, "m1"),
            Correspondence(AttributeRef("interpro.entry", "entry_ac"), AttributeRef("go.term", "acc"), 0.4, "m2"),
        ]
        edges = install_associations(mini_graph, correspondences)
        assert len(edges) == 1
        assert edges[0].metadata["matchers"] == {"m1": 0.7, "m2": 0.4}


class TestSourceRegistrar:
    def test_register_adds_and_aligns(self, mini_catalog, mini_graph, new_source):
        registrar = SourceRegistrar(mini_catalog, mini_graph)
        seen = []
        registrar.add_listener(lambda source, result: seen.append((source.name, result.strategy)))
        result = registrar.register(new_source, ExhaustiveAligner(MetadataMatcher()))
        assert isinstance(result, AlignmentResult)
        assert mini_catalog.has_source("newdb")
        assert mini_graph.has_node("rel:newdb.xref")
        assert registrar.registered_sources() == ["newdb"]
        assert seen == [("newdb", "exhaustive")]

    def test_duplicate_registration_rejected(self, mini_catalog, mini_graph, new_source):
        registrar = SourceRegistrar(mini_catalog, mini_graph)
        registrar.register(new_source, ExhaustiveAligner(MetadataMatcher()))
        with pytest.raises(RegistrationError):
            registrar.register(new_source, ExhaustiveAligner(MetadataMatcher()))

    def test_failed_alignment_rolls_back_catalog(self, mini_catalog, mini_graph, new_source):
        class ExplodingAligner(ExhaustiveAligner):
            def candidate_relations(self, graph, catalog, source):
                raise RuntimeError("boom")

        registrar = SourceRegistrar(mini_catalog, mini_graph)
        with pytest.raises(RuntimeError):
            registrar.register(new_source, ExplodingAligner(MetadataMatcher()))
        assert not mini_catalog.has_source("newdb")
