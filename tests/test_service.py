"""Tests of the concurrent serving layer (:mod:`repro.service`).

Covers the serving contracts the module README promises:

* snapshot-isolated reads: a read never observes a half-applied mutation,
  and a page stream started before concurrent writes land keeps yielding
  byte-identical pages (both storage backends);
* the bounded single-writer queue: FIFO application, publish-before-
  complete, and fail-fast :class:`~repro.exceptions.ServiceOverloadedError`
  backpressure;
* the process-global edge-id counter staying duplicate-free under
  concurrent allocation (the writer lane owns expansion, but the counter
  itself must be thread-safe);
* ``QService`` as a context manager with idempotent close;
* the Steiner-network topology rescore that makes per-tenant solving cheap.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    FeedbackRequest,
    QService,
    QueryRequest,
    RegisterSourceRequest,
    ServiceConfig,
)
from repro.datastore.csvio import source_from_dict, source_to_dict
from repro.exceptions import (
    InvalidRequestError,
    ServiceOverloadedError,
    UnknownViewError,
)
from repro.graph.edges import Edge, EdgeKind
from repro.learning import AnnotationKind
from repro.matching import MetadataMatcher
from repro.service import QServer


def _clone(source):
    return source_from_dict(source_to_dict(source))


def _fingerprint(answers):
    return [
        (
            tuple(answer.values.items()),
            answer.cost,
            answer.provenance.query_id if answer.provenance is not None else None,
            tuple(sorted(answer.provenance.base_tuples))
            if answer.provenance is not None
            else None,
        )
        for answer in answers
    ]


def _gbco_service(gbco_dataset, hold_out=(), backend=None):
    """A bootstrap-aligned session over the GBCO catalog minus ``hold_out``."""
    service = QService(
        sources=[
            _clone(source)
            for source in gbco_dataset.catalog
            if source.name not in hold_out
        ],
        config=ServiceConfig(top_k=5, top_y=1, write_queue_limit=16),
        backend=backend,
    )
    service.bootstrap_alignments()
    return service


# ----------------------------------------------------------------------
# Edge-id counter thread safety (regression)
# ----------------------------------------------------------------------
def test_edge_id_allocation_is_duplicate_free_under_threads():
    """Concurrent Edge.create calls must never hand out the same edge id."""
    per_thread = 200
    threads = 8
    collected = [[] for _ in range(threads)]

    def allocate(bucket):
        for _ in range(per_thread):
            bucket.append(
                Edge.create("u", "v", EdgeKind.ASSOCIATION, features={"f": 1.0}).edge_id
            )

    workers = [
        threading.Thread(target=allocate, args=(collected[i],)) for i in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    ids = [edge_id for bucket in collected for edge_id in bucket]
    assert len(ids) == per_thread * threads
    assert len(set(ids)) == len(ids)


# ----------------------------------------------------------------------
# QService context manager (satellite)
# ----------------------------------------------------------------------
def test_qservice_context_manager_closes_idempotently(mini_catalog):
    with QService(sources=list(mini_catalog)) as service:
        assert service.stats().sources == 2
    # __exit__ already closed; explicit re-close must be a no-op.
    service.close()
    service.close()


def test_qservice_context_manager_closes_on_exception(mini_catalog):
    with pytest.raises(RuntimeError, match="boom"):
        with QService(sources=list(mini_catalog)) as service:
            raise RuntimeError("boom")
    service.close()  # still safe


# ----------------------------------------------------------------------
# Server basics: snapshot reads, writer lane, publish-before-complete
# ----------------------------------------------------------------------
def test_server_reads_are_snapshot_isolated_and_repeatable(gbco_dataset):
    keywords = gbco_dataset.query_log[2].keywords
    with _gbco_service(gbco_dataset) as service:
        with QServer(service) as server:
            first = server.query(QueryRequest(keywords=keywords))
            assert len(first.answers) > 0
            again = server.query(QueryRequest(keywords=keywords))
            assert again.answers == first.answers
            # Futures surface the same results as the blocking form.
            future = server.submit_query(QueryRequest(view=first.view_id))
            assert future.result().answers == first.answers


def test_server_write_publishes_before_future_resolves(gbco_dataset):
    entry = gbco_dataset.query_log[2]
    hold_out = tuple(sorted({r.split(".")[0] for r in entry.new_relations}))
    with _gbco_service(gbco_dataset, hold_out=hold_out) as service:
        with QServer(service) as server:
            before = server.query(QueryRequest(keywords=entry.keywords))
            response = server.register(
                RegisterSourceRequest(
                    source=_clone(gbco_dataset.catalog.source(hold_out[0])),
                    strategy="exhaustive",
                    matcher=MetadataMatcher(),
                )
            )
            assert response.edges_added > 0
            # The snapshot that includes the write is already published.
            after = server.query(QueryRequest(view=before.view_id))
            assert after.snapshot_id > before.snapshot_id
            assert ("register", hold_out[0]) in server.write_log


def test_server_rejects_unknown_view_and_k_mismatch(gbco_dataset):
    keywords = gbco_dataset.query_log[2].keywords
    with _gbco_service(gbco_dataset) as service:
        with QServer(service) as server:
            result = server.query(QueryRequest(keywords=keywords))
            with pytest.raises(InvalidRequestError, match="k="):
                server.query(QueryRequest(view=result.view_id, k=3))
            with pytest.raises(UnknownViewError):
                server.query(QueryRequest(view="view-9999"))


# ----------------------------------------------------------------------
# Backpressure
# ----------------------------------------------------------------------
def test_write_queue_backpressure_fails_fast(mini_catalog):
    with QService(sources=list(mini_catalog)) as service:
        with QServer(service, read_workers=2, write_queue_limit=2) as server:
            gate = threading.Event()
            release = threading.Event()

            def blocker():
                gate.set()
                release.wait(timeout=30)
                return "done"

            blocked = server.submit_mutation(blocker, kind="block")
            assert gate.wait(timeout=10)  # writer lane is now busy
            fillers = [
                server.submit_mutation(lambda: None, kind="noop") for _ in range(2)
            ]
            with pytest.raises(ServiceOverloadedError) as excinfo:
                server.submit_mutation(lambda: None, kind="overflow")
            assert excinfo.value.limit == 2
            assert excinfo.value.pending >= 1
            assert server.stats().writes_rejected == 1
            release.set()
            assert blocked.result(timeout=30) == "done"
            for filler in fillers:
                filler.result(timeout=30)
            # Queue drained: writes are admitted again.
            server.submit_mutation(lambda: None, kind="noop").result(timeout=30)
            stats = server.stats()
            assert stats.writes_applied == 4
            assert stats.writes_failed == 0


def test_failed_write_publishes_no_snapshot(mini_catalog):
    with QService(sources=list(mini_catalog)) as service:
        with QServer(service) as server:
            before = server.stats()

            def explode():
                raise RuntimeError("mutation failed")

            future = server.submit_mutation(explode, kind="explode")
            with pytest.raises(RuntimeError, match="mutation failed"):
                future.result(timeout=30)
            stats = server.stats()
            assert stats.writes_failed == 1
            assert stats.snapshot_id == before.snapshot_id
            assert stats.snapshots_published == before.snapshots_published
            assert ("explode", None) not in server.write_log


def test_server_close_is_idempotent_and_rejects_new_work(mini_catalog):
    service = QService(sources=list(mini_catalog))
    server = QServer(service)
    server.close()
    server.close()
    with pytest.raises(InvalidRequestError, match="closed"):
        server.query(QueryRequest(keywords=("kinase",)))
    with pytest.raises(InvalidRequestError, match="closed"):
        server.submit_mutation(lambda: None)
    service.close()


# ----------------------------------------------------------------------
# Mid-stream page isolation under concurrent writes (both backends)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", [None, "sqlite"])
def test_mid_stream_pages_are_isolated_from_concurrent_writes(gbco_dataset, backend):
    """A page iterator opened before writes keeps yielding identical pages.

    The reader pins its snapshot with the first page; a registration (graph
    structure moves, caches invalidate) and a feedback event (weights move)
    then land through the writer lane; the remaining pages must still be
    byte-identical to a full read taken before either write.
    """
    entry = gbco_dataset.query_log[2]
    hold_out = tuple(sorted({r.split(".")[0] for r in entry.new_relations}))
    with _gbco_service(gbco_dataset, hold_out=hold_out, backend=backend) as service:
        with QServer(service) as server:
            result = server.query(QueryRequest(keywords=entry.keywords, page_size=7))
            assert len(result.answers) > 14, "need at least three pages"
            reference = _fingerprint(result.answers)

            pages = result.pages()
            first_page = next(pages)
            consumed = list(first_page.answers)

            server.register(
                RegisterSourceRequest(
                    source=_clone(gbco_dataset.catalog.source(hold_out[0])),
                    strategy="exhaustive",
                    matcher=MetadataMatcher(),
                )
            )
            fresh = server.query(QueryRequest(view=result.view_id))
            server.feedback(
                FeedbackRequest(
                    view=result.view_id,
                    answer=fresh.answers[0],
                    kind=AnnotationKind.VALID,
                )
            )

            for page in pages:
                consumed.extend(page.answers)
            assert _fingerprint(consumed) == reference
            # And the writes really landed: a fresh read runs on a newer
            # snapshot than the pinned one.
            assert (
                server.query(QueryRequest(view=result.view_id)).snapshot_id
                > result.snapshot_id
            )


# ----------------------------------------------------------------------
# Concurrent mixed traffic correctness
# ----------------------------------------------------------------------
def test_concurrent_reads_match_some_published_snapshot(gbco_dataset):
    """Every concurrent read equals the serial answer of the snapshot it names."""
    entry = gbco_dataset.query_log[2]
    with _gbco_service(gbco_dataset) as service:
        with QServer(service, read_workers=4) as server:
            seed = server.query(QueryRequest(keywords=entry.keywords))
            by_snapshot = {seed.snapshot_id: _fingerprint(seed.answers)}
            lock = threading.Lock()

            def read(_):
                result = server.query(QueryRequest(view=seed.view_id))
                return result.snapshot_id, _fingerprint(result.answers)

            def write(i):
                fresh = server.query(QueryRequest(view=seed.view_id))
                server.feedback(
                    FeedbackRequest(
                        view=seed.view_id,
                        answer=fresh.answers[i % len(fresh.answers)],
                        kind=AnnotationKind.VALID,
                    )
                )
                with lock:
                    after = server.query(QueryRequest(view=seed.view_id))
                    by_snapshot[after.snapshot_id] = _fingerprint(after.answers)

            with ThreadPoolExecutor(max_workers=6) as pool:
                read_futures = [pool.submit(read, i) for i in range(12)]
                write_futures = [pool.submit(write, i) for i in range(3)]
                observations = [future.result() for future in read_futures]
                for future in write_futures:
                    future.result()

            for snapshot_id, fingerprint in observations:
                expected = by_snapshot.get(snapshot_id)
                if expected is not None:
                    assert fingerprint == expected, (
                        f"read on snapshot {snapshot_id} diverged from the "
                        "serial answer of that snapshot"
                    )
            assert server.stats().writes_failed == 0


# ----------------------------------------------------------------------
# Steiner network topology rescore (per-tenant fast path)
# ----------------------------------------------------------------------
def test_tenant_network_rescores_from_base_topology(gbco_dataset):
    entry = gbco_dataset.query_log[2]
    with _gbco_service(gbco_dataset) as service:
        info = service.create_view(QueryRequest(keywords=entry.keywords), materialize=False)
        base = list(service.stream_answers(QueryRequest(view=info.view_id)))
        first = base[0]
        other = next(
            a for a in base if a.provenance.query_id != first.provenance.query_id
        )
        service.feedback(
            FeedbackRequest(
                view=info.view_id,
                answer=first,
                kind=AnnotationKind.PREFERRED_OVER,
                other=other,
                replay=4,
                tenant="alice",
            )
        )
        cache = service.engine_context.steiner_cache
        builds_before, rescores_before = cache.builds, cache.rescores
        rescored = _fingerprint(
            service.stream_answers(QueryRequest(view=info.view_id, tenant="alice"))
        )
        assert cache.rescores == rescores_before + 1
        assert cache.builds == builds_before

        # Parity: a from-scratch tenant network ranks identically.
        cache._entries.clear()
        service._tenant_views.clear()
        rebuilt = _fingerprint(
            service.stream_answers(QueryRequest(view=info.view_id, tenant="alice"))
        )
        assert cache.rescores == rescores_before + 1  # no donor -> full build
        assert rebuilt == rescored
