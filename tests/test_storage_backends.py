"""Storage-backend tests: protocol contract, SQL pushdown, parity, persistence.

The cross-backend parity suite is the acceptance gate of the pluggable
storage layer: the memory and SQLite backends must produce byte-identical
ranked answers, provenance and registration correspondences on the
fig6/fig8 fixture replays, and a SQLite catalog must survive a close /
reopen round trip.
"""

from __future__ import annotations

import pytest

from repro.api import QService, QueryRequest, RegisterSourceRequest, ServiceConfig
from repro.core import RankedView
from repro.datasets import build_gbco, grow_catalog_and_graph
from repro.datastore import Catalog, ConjunctiveQuery, DataSource
from repro.datastore.csvio import source_from_dict, source_to_dict
from repro.datastore.sqlgen import (
    query_to_parameterized_sql,
    query_to_sql,
    selection_condition,
    union_to_parameterized_sql,
    union_to_sql,
)
from repro.datastore.query import SelectionPredicate
from repro.engine.context import ExecutionContext
from repro.engine.executor import PlanExecutor
from repro.engine.predicates import compile_predicates
from repro.exceptions import QueryError, StorageError
from repro.graph import SearchGraph
from repro.matching import MetadataMatcher, ValueOverlapMatcher
from repro.storage import (
    MemoryBackend,
    SqliteBackend,
    backend_from_env,
    create_backend,
    resolve_backend,
)

BACKENDS = ("memory", "sqlite")


def make_backend(kind, tmp_path=None):
    if kind == "memory":
        return MemoryBackend()
    if tmp_path is not None:
        return SqliteBackend(tmp_path / "catalog.db")
    return SqliteBackend(":memory:")


@pytest.fixture(params=BACKENDS)
def backend(request):
    """One fresh backend per test, parameterized over both implementations."""
    instance = make_backend(request.param)
    yield instance
    instance.close()


def clone_source(source: DataSource) -> DataSource:
    return source_from_dict(source_to_dict(source))


def reset_edge_ids():
    """Restart the process-global edge-id counter.

    Edge ids embed a global sequence number, so two sessions built in one
    process number their (structurally identical) graphs differently —
    which shifts tree signatures and equal-cost tie-breaks.  Resetting the
    counter before each replay makes independent runs byte-comparable,
    so the parity assertions below can demand *identical* ranked answers
    rather than merely equal answer sets.
    """
    import itertools

    import repro.graph.edges as edges

    edges._edge_counter = itertools.count()


def answer_fingerprint(answers):
    """Everything observable about a ranked answer list, order included."""
    result = []
    for answer in answers:
        provenance = answer.provenance
        result.append(
            (
                tuple(answer.values.items()),
                answer.cost,
                None
                if provenance is None
                else (
                    provenance.query_id,
                    provenance.query_cost,
                    tuple(sorted(provenance.base_tuples)),
                ),
            )
        )
    return result


def correspondence_fingerprint(correspondences):
    return sorted(
        (c.source.qualified, c.target.qualified, c.confidence, c.matcher)
        for c in correspondences
    )


# ----------------------------------------------------------------------
# Protocol contract
# ----------------------------------------------------------------------
class TestBackendProtocol:
    def _schema(self):
        from repro.datastore.schema import RelationSchema

        return RelationSchema("r", ["a", "b"], source="s")

    def test_duplicate_relation_rejected(self, backend):
        schema = self._schema()
        backend.create_relation("s.r", schema)
        with pytest.raises(StorageError):
            backend.create_relation("s.r", schema)

    def test_scan_order_and_row_ids(self, backend):
        schema = self._schema()
        backend.create_relation("s.r", schema)
        backend.insert_rows("s.r", [("x", 1), ("y", 2), ("z", 3)])
        rows = backend.scan("s.r")
        assert [row.row_id for row in rows] == [0, 1, 2]
        assert [row["a"] for row in rows] == ["x", "y", "z"]
        backend.append_row("s.r", ("w", 4))
        assert backend.scan("s.r")[3].row_id == 3
        assert backend.row_count("s.r") == 4

    def test_bulk_ingest_bumps_version_once(self, backend):
        schema = self._schema()
        backend.create_relation("s.r", schema, initial_version=7)
        assert backend.version("s.r") == 7
        backend.insert_rows("s.r", iter([("x", 1), ("y", 2)]))
        assert backend.version("s.r") == 8
        backend.insert_rows("s.r", [])
        assert backend.version("s.r") == 8

    def test_ingest_atomicity(self, backend):
        schema = self._schema()
        backend.create_relation("s.r", schema)
        backend.insert_rows("s.r", [("x", 1)])
        version = backend.version("s.r")

        def bad_rows():
            yield ("ok", 2)
            raise ValueError("boom")

        with pytest.raises(ValueError):
            backend.insert_rows("s.r", bad_rows())
        assert backend.row_count("s.r") == 1
        assert backend.version("s.r") == version
        # The next successful ingest continues with dense row ids.
        backend.insert_rows("s.r", [("y", 3)])
        assert [row.row_id for row in backend.scan("s.r")] == [0, 1]

    def test_distinct_values_canonicalize(self, backend):
        schema = self._schema()
        backend.create_relation("s.r", schema)
        backend.insert_rows(
            "s.r", [(" 42 ", None), (42, ""), (42.0, "kept"), (None, "kept")]
        )
        assert backend.distinct_values("s.r", "a") == {"42"}
        assert backend.distinct_values("s.r", "b") == {"kept"}

    def test_drop_relation(self, backend):
        schema = self._schema()
        backend.create_relation("s.r", schema)
        assert backend.has_relation("s.r")
        backend.drop_relation("s.r")
        assert not backend.has_relation("s.r")
        backend.drop_relation("s.r")  # idempotent
        backend.create_relation("s.r", schema)  # key is reusable

    def test_storage_size_reported(self, backend):
        schema = self._schema()
        backend.create_relation("s.r", schema)
        backend.insert_rows("s.r", [("some text", i) for i in range(50)])
        assert backend.storage_size_bytes() > 0


class TestSqliteValues:
    def test_bool_none_roundtrip(self):
        backend = SqliteBackend(":memory:")
        from repro.datastore.schema import RelationSchema

        schema = RelationSchema("r", ["flag", "n"], source="s")
        backend.create_relation("s.r", schema)
        backend.insert_rows("s.r", [(True, None), (False, 3), (None, 2.5)])
        values = [tuple(row.values) for row in backend.scan("s.r")]
        assert values == [(True, None), (False, 3), (None, 2.5)]
        # Canonical semantics match the memory backend's.
        assert backend.distinct_values("s.r", "flag") == {"true", "false"}

    def test_unsupported_value_type_rejected_atomically(self):
        backend = SqliteBackend(":memory:")
        from repro.datastore.schema import RelationSchema

        schema = RelationSchema("r", ["a"], source="s")
        backend.create_relation("s.r", schema)
        with pytest.raises(StorageError):
            backend.insert_rows("s.r", [("fine",), ({"not": "fine"},)])
        assert backend.row_count("s.r") == 0


# ----------------------------------------------------------------------
# Table attach/detach and catalog routing
# ----------------------------------------------------------------------
class TestAttachDetach:
    def _source(self):
        return DataSource.build(
            "go",
            {"term": ["acc", "name"]},
            data={"term": [("GO:1", "alpha"), ("GO:2", "beta")]},
        )

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_add_source_attaches_tables(self, kind):
        backend = make_backend(kind)
        catalog = Catalog(backend=backend)
        source = self._source()
        table = source.table("term")
        version_before = table.version
        catalog.add_source(source)
        assert table.storage_backend is backend
        assert table.storage_key == "go.term"
        assert table.version > version_before
        assert [row["acc"] for row in table.scan()] == ["GO:1", "GO:2"]
        # Post-attach mutations route through the catalog backend.
        table.append(("GO:3", "gamma"))
        assert backend.row_count("go.term") == 3

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_remove_source_detaches_and_drops(self, kind):
        backend = make_backend(kind)
        catalog = Catalog(backend=backend)
        source = catalog.add_source(self._source())
        removed = catalog.remove_source("go")
        assert removed is source
        assert not backend.has_relation("go.term")
        table = removed.table("term")
        assert table.storage_backend is not backend
        assert [row["acc"] for row in table.scan()] == ["GO:1", "GO:2"]
        # The key is free again: re-registration works.
        catalog.add_source(removed)
        assert backend.has_relation("go.term")

    def test_versions_carry_forward_across_attach(self):
        backend = SqliteBackend(":memory:")
        source = self._source()
        table = source.table("term")
        seen = {table.version}
        Catalog(backend=backend).add_source(source)
        assert table.version not in seen
        seen.add(table.version)
        table.extend([("GO:9", "omega")])
        assert table.version not in seen


# ----------------------------------------------------------------------
# Engine pushdown parity
# ----------------------------------------------------------------------
def _make_query(with_selection=True):
    query = ConjunctiveQuery(provenance="tree-1", cost=1.5)
    query.add_atom("go.term", "t")
    query.add_atom("interpro.interpro2go", "i2g")
    query.add_join("t", "acc", "i2g", "go_id")
    if with_selection:
        query.add_selection("t", "name", "plasma membrane", mode="keyword")
    query.add_output("t", "name", "term")
    query.add_output("i2g", "entry_ac")
    return query


def _mini_sources():
    go = DataSource.build(
        "go",
        {"term": ["acc", "name"]},
        data={
            "term": [
                ("GO:0001", "plasma membrane"),
                ("GO:0002", "nucleus"),
                (" GO:0003 ", "plasma membrane transport"),
                (None, "orphan"),
            ]
        },
    )
    interpro = DataSource.build(
        "interpro",
        {"interpro2go": ["go_id", "entry_ac"]},
        data={
            "interpro2go": [
                ("GO:0001", "IPR001"),
                ("GO:0003", "IPR003"),
                ("GO:0002", "IPR002"),
                ("GO:0001", "IPR004"),
            ]
        },
    )
    return [go, interpro]


class TestPushdownParity:
    def _answers(self, kind, query, limit=None):
        catalog = Catalog(
            [clone_source(s) for s in _mini_sources()], backend=make_backend(kind)
        )
        context = ExecutionContext(catalog)
        answers = PlanExecutor(catalog, context).execute(query, limit=limit)
        return answers, context

    @pytest.mark.parametrize("with_selection", [True, False])
    def test_whole_query_pushdown_matches_memory(self, with_selection):
        query = _make_query(with_selection)
        memory_answers, _ = self._answers("memory", query)
        sqlite_answers, context = self._answers("sqlite", query)
        assert context.statistics.pushdown_queries == 1
        assert answer_fingerprint(sqlite_answers) == answer_fingerprint(memory_answers)
        assert memory_answers  # the comparison must not be vacuous

    def test_no_output_query_matches_memory(self):
        query = ConjunctiveQuery(provenance="tree-2", cost=0.25)
        query.add_atom("go.term", "t")
        query.add_selection("t", "name", "membrane", mode="contains")
        memory_answers, _ = self._answers("memory", query)
        sqlite_answers, _ = self._answers("sqlite", query)
        assert answer_fingerprint(sqlite_answers) == answer_fingerprint(memory_answers)
        assert len(memory_answers) == 2

    def test_equals_canonicalization_in_pushdown(self):
        # " GO:0003 " canonicalizes to "GO:0003"; the pushdown must match it.
        query = ConjunctiveQuery(cost=0.5)
        query.add_atom("go.term", "t")
        query.add_selection("t", "acc", "GO:0003", mode="equals")
        query.add_output("t", "name")
        memory_answers, _ = self._answers("memory", query)
        sqlite_answers, _ = self._answers("sqlite", query)
        assert answer_fingerprint(sqlite_answers) == answer_fingerprint(memory_answers)
        assert len(memory_answers) == 1

    def test_limit_falls_back_to_python_engine(self):
        query = _make_query()
        sqlite_answers, context = self._answers("sqlite", query, limit=2)
        memory_answers, _ = self._answers("memory", query, limit=2)
        assert context.statistics.pushdown_queries == 0
        assert answer_fingerprint(sqlite_answers) == answer_fingerprint(memory_answers)

    def test_scan_pushdown_matches_python_filter(self):
        sources = [clone_source(s) for s in _mini_sources()]
        catalog_mem = Catalog([clone_source(s) for s in sources])
        catalog_sql = Catalog(sources, backend=SqliteBackend(":memory:"))
        predicates = compile_predicates(
            [SelectionPredicate("t", "name", "plasma membrane", mode="keyword")]
        )
        mem_rows = ExecutionContext(catalog_mem).scan("go.term", predicates)
        sql_context = ExecutionContext(catalog_sql)
        sql_rows = sql_context.scan("go.term", predicates)
        assert sql_context.statistics.pushdown_scans == 1
        assert [(r.row_id, tuple(r.values)) for r in sql_rows] == [
            (r.row_id, tuple(r.values)) for r in mem_rows
        ]


# ----------------------------------------------------------------------
# Cross-backend parity on the fig6 / fig8 fixture replays
# ----------------------------------------------------------------------
def _gbco_replay(kind, dataset, trial):
    """One fig6-style replay: view answers, then a registration, per backend."""
    reset_edge_ids()
    excluded = {relation.split(".")[0] for relation in trial.new_relations}
    sources = [
        clone_source(source)
        for source in dataset.catalog
        if source.name not in excluded
    ]
    service = QService(
        sources=sources,
        matchers=[ValueOverlapMatcher(min_confidence=0.6, min_shared_values=5)],
        config=ServiceConfig(top_k=5, top_y=1),
        backend=make_backend(kind),
    )
    service.bootstrap_alignments()
    info = service.create_view(QueryRequest(keywords=tuple(trial.keywords)))
    before = answer_fingerprint(service.view(info.view_id).answers())

    # The view-based strategy needs a view with answers (its α prunes the
    # neighborhood); trials whose keyword view is empty after excluding the
    # new sources fall back to exhaustive — identically on both backends.
    strategy = "view_based" if before else "exhaustive"
    registrations = []
    for relation in trial.new_relations:
        source_name = relation.split(".")[0]
        response = service.register_source(
            RegisterSourceRequest(
                source=clone_source(dataset.catalog.source(source_name)),
                strategy=strategy,
                matcher=MetadataMatcher(),
            )
        )
        registrations.append(
            (
                response.edges_added,
                response.attribute_comparisons,
                tuple(response.candidate_relations),
                correspondence_fingerprint(response.alignment.correspondences),
            )
        )
    after = answer_fingerprint(service.view(info.view_id).answers())
    stats = service.stats()
    assert stats.backend == ("sqlite" if kind == "sqlite" else "memory")
    return before, registrations, after


@pytest.mark.parametrize("trial_index", [0, 1])
def test_fig6_replay_parity_across_backends(gbco_dataset, trial_index):
    trial = list(gbco_dataset.query_log)[trial_index]
    memory_run = _gbco_replay("memory", gbco_dataset, trial)
    sqlite_run = _gbco_replay("sqlite", gbco_dataset, trial)
    assert sqlite_run == memory_run
    assert memory_run[1], "replay registered nothing — parity would be vacuous"
    if trial_index == 0:
        assert memory_run[0], "replay produced no answers — parity would be vacuous"


def _fig8_replay(kind, size=40):
    """A fig8-style replay: grown synthetic catalog, ranked view answers."""
    from repro.alignment.base import install_associations
    from repro.matching.base import top_y_per_attribute

    reset_edge_ids()
    gbco = build_gbco(rows_per_relation=10)
    trial = list(gbco.query_log)[0]
    excluded = {relation.split(".")[0] for relation in trial.new_relations}
    catalog = Catalog(backend=make_backend(kind))
    for source in gbco.catalog:
        if source.name not in excluded:
            catalog.add_source(clone_source(source))
    graph = SearchGraph()
    graph.add_catalog(catalog)
    matcher = ValueOverlapMatcher(min_confidence=0.6, min_shared_values=5)
    tables = catalog.all_tables()
    correspondences = []
    for i, table_a in enumerate(tables):
        for table_b in tables[i + 1 :]:
            correspondences.extend(matcher.match_relations(table_a, table_b))
    install_associations(graph, top_y_per_attribute(correspondences, 1))
    grow_catalog_and_graph(catalog, graph, target_source_count=size, seed=size)
    view = RankedView(list(trial.keywords), catalog, graph, k=5)
    state = view.refresh()
    return answer_fingerprint(state.answers), tuple(g.signature for g in state.queries)


def test_fig8_replay_parity_across_backends():
    memory_run = _fig8_replay("memory")
    sqlite_run = _fig8_replay("sqlite")
    assert sqlite_run == memory_run
    assert memory_run[0], "replay produced no answers — parity would be vacuous"


# ----------------------------------------------------------------------
# SQLite persistence round trip
# ----------------------------------------------------------------------
class TestSqlitePersistence:
    def test_close_reopen_query_again(self, tmp_path):
        db_path = tmp_path / "session.db"
        keywords = ("plasma", "IPR001")

        reset_edge_ids()
        first = QService(
            sources=[clone_source(s) for s in _mini_sources()],
            backend=f"sqlite:{db_path}",
        )
        first.bootstrap_alignments()
        info = first.create_view(QueryRequest(keywords=keywords))
        original = answer_fingerprint(first.view(info.view_id).answers())
        first.close()

        # Reference run on plain memory: the reopened catalog must agree.
        reset_edge_ids()
        reference_service = QService(sources=[clone_source(s) for s in _mini_sources()])
        reference_service.bootstrap_alignments()
        ref_info = reference_service.create_view(QueryRequest(keywords=keywords))
        reference = answer_fingerprint(
            reference_service.view(ref_info.view_id).answers()
        )

        reset_edge_ids()
        reopened = QService(backend=f"sqlite:{db_path}")
        assert set(reopened.catalog.source_names()) == {"go", "interpro"}
        assert reopened.catalog.relation("go.term").version == 0
        assert len(reopened.catalog.relation("go.term")) == 4
        reopened.bootstrap_alignments()
        info2 = reopened.create_view(QueryRequest(keywords=keywords))
        replayed = answer_fingerprint(reopened.view(info2.view_id).answers())
        assert replayed == original == reference
        assert original, "round trip produced no answers — parity would be vacuous"
        reopened.close()

    def test_registration_persists(self, tmp_path):
        db_path = tmp_path / "session.db"
        service = QService(
            sources=[clone_source(_mini_sources()[0])], backend=f"sqlite:{db_path}"
        )
        service.create_view(QueryRequest(keywords=("plasma",)))
        service.register_source(
            RegisterSourceRequest(
                source=clone_source(_mini_sources()[1]),
                strategy="exhaustive",
                matcher=MetadataMatcher(),
            )
        )
        row_count = len(service.catalog.relation("interpro.interpro2go"))
        service.close()

        reopened = Catalog(backend=SqliteBackend(db_path))
        assert set(reopened.source_names()) == {"go", "interpro"}
        assert len(reopened.relation("interpro.interpro2go")) == row_count
        fks = reopened.source("interpro").schema.foreign_keys
        assert fks == _mini_sources()[1].schema.foreign_keys
        reopened.close()

    def test_post_admission_add_relation_persists(self, tmp_path):
        from repro.datastore.schema import RelationSchema

        db_path = tmp_path / "session.db"
        catalog = Catalog(
            [clone_source(_mini_sources()[0])], backend=SqliteBackend(db_path)
        )
        catalog.source("go").add_relation(
            RelationSchema("synonym", ["acc", "alias"]),
            rows=[("GO:0001", "membrane (plasma)")],
        )
        catalog.close()
        reopened = Catalog(backend=SqliteBackend(db_path))
        assert reopened.source("go").schema.relation_names() == ("term", "synonym")
        assert [tuple(r.values) for r in reopened.relation("go.synonym").scan()] == [
            ("GO:0001", "membrane (plasma)")
        ]
        reopened.close()

    def test_failed_metadata_persistence_rolls_back_attach(self):
        backend = SqliteBackend(":memory:")

        def exploding_save(name, payload):
            raise RuntimeError("disk full")

        backend.save_source_schema = exploding_save
        catalog = Catalog(backend=backend)
        source = clone_source(_mini_sources()[0])
        with pytest.raises(RuntimeError):
            catalog.add_source(source)
        # Full rollback: no rows stranded in the backend, source unregistered
        # and still usable, and a retry is not blocked by a stale relation.
        assert not backend.has_relation("go.term")
        assert "go" not in catalog.source_names()
        assert len(source.table("term")) == 4
        backend.close()

    def test_removed_source_not_persisted(self, tmp_path):
        db_path = tmp_path / "session.db"
        catalog = Catalog(
            [clone_source(s) for s in _mini_sources()],
            backend=SqliteBackend(db_path),
        )
        catalog.remove_source("interpro")
        catalog.close()
        reopened = Catalog(backend=SqliteBackend(db_path))
        assert set(reopened.source_names()) == {"go"}
        reopened.close()


# ----------------------------------------------------------------------
# Backend registry / env plumbing
# ----------------------------------------------------------------------
class TestBackendRegistry:
    def test_create_backend_names(self, tmp_path):
        assert isinstance(create_backend("memory"), MemoryBackend)
        assert isinstance(create_backend("sqlite"), SqliteBackend)
        spec = f"sqlite:{tmp_path / 'x.db'}"
        backend = create_backend(spec)
        assert backend.path == str(tmp_path / "x.db")
        backend.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(StorageError):
            create_backend("parquet")

    def test_resolve_backend_passthrough(self):
        backend = MemoryBackend()
        assert resolve_backend(backend) is backend
        assert resolve_backend(None) is None

    def test_backend_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backend_from_env() is None
        monkeypatch.setenv("REPRO_BACKEND", "memory")
        assert backend_from_env() is None
        monkeypatch.setenv("REPRO_BACKEND", "sqlite")
        backend = backend_from_env()
        assert isinstance(backend, SqliteBackend)
        backend.close()


# ----------------------------------------------------------------------
# Hardened sqlgen: parameterized rendering
# ----------------------------------------------------------------------
class TestParameterizedSqlgen:
    def test_placeholders_replace_literals(self):
        query = _make_query()
        query.add_selection("t", "acc", "GO:0001", mode="equals")
        literal = query_to_sql(query)
        parameterized = query_to_parameterized_sql(query)
        assert parameterized.sql.count("?") == len(parameterized.params)
        assert parameterized.params == (
            "%plasma%",
            "%membrane%",
            "GO:0001",
        )
        assert "GO:0001" not in parameterized.sql
        assert "'GO:0001'" in literal
        # Statement shape is identical: substituting the params back in
        # (quoted) yields the literal rendering.
        rebuilt = parameterized.sql
        for param in parameterized.params:
            rebuilt = rebuilt.replace("?", "'" + str(param) + "'", 1)
        assert rebuilt == literal

    def test_union_parameterized(self):
        q1 = _make_query()
        q2 = _make_query(with_selection=False)
        q2.cost = 0.5
        literal = union_to_sql([q1, q2])
        parameterized = union_to_parameterized_sql([q1, q2])
        assert parameterized.sql.count("?") == len(parameterized.params) == 2
        assert "UNION ALL" in parameterized.sql
        assert "'%plasma%'" in literal

    def test_exact_dialect_requires_params(self):
        predicate = SelectionPredicate("t", "name", "x", mode="keyword")
        with pytest.raises(QueryError):
            selection_condition(predicate, '"t"."name"', None, dialect="exact")
        params = []
        condition = selection_condition(predicate, '"t"."name"', params, dialect="exact")
        assert condition == 'repro_match(?, ?, "t"."name") = 1'
        assert params == ["keyword", "x"]

    def test_exact_dialect_equals_is_index_servable(self):
        # equals must render as repro_canon(col) = ? — the shape SQLite can
        # serve from the backend's repro_canon(col) expression indexes —
        # with the needle pre-canonicalized, not as an opaque function call.
        predicate = SelectionPredicate("t", "acc", " GO:0003 ", mode="equals")
        params = []
        condition = selection_condition(predicate, '"t"."acc"', params, dialect="exact")
        assert condition == 'repro_canon("t"."acc") = ?'
        assert params == ["GO:0003"]

    def test_equals_pushdown_uses_expression_index(self):
        catalog = Catalog(_mini_sources(), backend=SqliteBackend(":memory:"))
        backend = catalog.backend
        predicates = compile_predicates(
            [SelectionPredicate("t", "acc", "GO:0001", mode="equals")]
        )
        ExecutionContext(catalog).scan("go.term", predicates)
        plan = backend.execute_sql(
            'EXPLAIN QUERY PLAN SELECT * FROM "go.term" '
            'WHERE repro_canon("c_acc") = ?',
            ["GO:0001"],
        )
        assert any("USING INDEX" in str(row) for row in plan), plan
        backend.close()

    def test_unknown_dialect_rejected(self):
        predicate = SelectionPredicate("t", "name", "x")
        with pytest.raises(QueryError):
            selection_condition(predicate, "c", [], dialect="oracle")
