"""Unit tests for query generation from trees, ranked views, and the QSystem facade."""

from __future__ import annotations

import pytest

from repro import QSystem, QSystemConfig
from repro.core import (
    GoldStandard,
    QueryGenerator,
    RankedView,
    gold_target_tree,
    simulated_feedback_for_view,
    tree_signature,
)
from repro.datastore.database import DataSource
from repro.exceptions import QError, RegistrationError
from repro.graph import QueryGraphBuilder, SearchGraph
from repro.learning import AnnotationKind
from repro.matching import MetadataMatcher
from repro.steiner import k_best_steiner_trees


@pytest.fixture()
def expanded(mini_catalog, mini_graph):
    builder = QueryGraphBuilder(mini_catalog)
    return builder.expand(mini_graph, ["membrane", "title"])


class TestQueryGenerator:
    def test_tree_to_query(self, mini_catalog, expanded):
        trees = k_best_steiner_trees(expanded.graph, expanded.terminals, 1)
        generated = QueryGenerator(expanded.graph).generate(trees[0])
        query = generated.query
        query.validate()
        assert query.cost == pytest.approx(trees[0].cost)
        relations = set(query.relations())
        assert "go.term" in relations
        # the selection carries the matched value
        assert any(s.value == "plasma membrane" for s in query.selections)
        assert generated.signature == tree_signature(trees[0])

    def test_generate_all_skips_failures(self, mini_catalog, expanded):
        trees = k_best_steiner_trees(expanded.graph, expanded.terminals, 3)
        generated = QueryGenerator(expanded.graph).generate_all(trees)
        assert 1 <= len(generated) <= 3
        signatures = {g.signature for g in generated}
        assert len(signatures) == len(generated)

    def test_signature_is_stable(self, expanded):
        trees = k_best_steiner_trees(expanded.graph, expanded.terminals, 1)
        assert tree_signature(trees[0]) == tree_signature(trees[0])


class TestRankedView:
    def test_refresh_produces_ranked_answers(self, mini_catalog, mini_graph):
        view = RankedView(["membrane", "title"], mini_catalog, mini_graph, k=3)
        state = view.refresh()
        assert state.trees
        assert state.queries
        assert view.alpha is not None and view.alpha > 0
        costs = [a.cost for a in view.answers()]
        assert costs == sorted(costs)

    def test_answers_have_provenance(self, mini_catalog, mini_graph):
        view = RankedView(["membrane", "title"], mini_catalog, mini_graph, k=3)
        view.refresh()
        for answer in view.answers():
            assert answer.provenance is not None
            assert answer.provenance.query_id.startswith("tree:")

    def test_uses_relation(self, mini_catalog, mini_graph):
        view = RankedView(["membrane", "title"], mini_catalog, mini_graph, k=3)
        view.refresh()
        assert view.uses_relation("go.term")
        assert not view.uses_relation("not.there")

    def test_annotation_roundtrip(self, mini_catalog, mini_graph):
        view = RankedView(["membrane", "title"], mini_catalog, mini_graph, k=3)
        view.refresh()
        answers = view.answers()
        assert answers, "the mini catalog should produce at least one answer"
        event = view.annotate(answers[0], AnnotationKind.VALID)
        assert event.terminals == view.terminals
        assert event.target_tree.edge_ids

    def test_rebuild_query_graph_picks_up_new_sources(self, mini_catalog, mini_graph):
        view = RankedView(["membrane", "title"], mini_catalog, mini_graph, k=3)
        view.refresh()
        new_source = DataSource.build(
            "extra", {"info": ["acc", "comment"]}, data={"info": [{"acc": "GO:0001", "comment": "x"}]}
        )
        mini_catalog.add_source(new_source)
        mini_graph.add_source(new_source)
        view.builder = QueryGraphBuilder(mini_catalog)
        view.refresh(rebuild_graph=True)
        assert view.query_graph.graph.has_node("rel:extra.info")


class TestSimulatedFeedback:
    def test_gold_tree_uses_only_gold_associations(self, mini_catalog, mini_graph):
        gold = GoldStandard.from_pairs([("go.term.acc", "interpro.interpro2go.go_id")])
        # add a non-gold association that must be excluded
        mini_graph.add_association("go.term", "name", "interpro.pub", "title", {"mad": 0.9})
        builder = QueryGraphBuilder(mini_catalog)
        expanded = builder.expand(mini_graph, ["membrane", "IPR001"])
        tree = gold_target_tree(expanded.graph, expanded.terminals, gold)
        assert tree is not None
        from repro.core.evaluation import edge_attribute_pair
        from repro.graph import EdgeKind

        for edge in tree.edges(expanded.graph):
            if edge.kind is EdgeKind.ASSOCIATION:
                assert edge_attribute_pair(expanded.graph, edge) in gold.pairs

    def test_unreachable_gold_returns_none(self, mini_catalog, mini_graph):
        gold = GoldStandard.from_pairs([("x.y.z", "a.b.c")])  # no usable association
        # Remove the only cross-source association so go.term is unreachable
        # from interpro through gold edges alone... but FK edges remain, so use
        # keywords that require the association edge.
        for edge in list(mini_graph.association_edges()):
            mini_graph.remove_edge(edge.edge_id)
        builder = QueryGraphBuilder(mini_catalog)
        expanded = builder.expand(mini_graph, ["membrane", "title"])
        tree = gold_target_tree(expanded.graph, expanded.terminals, gold)
        assert tree is None


class TestQSystem:
    @pytest.fixture()
    def system(self, interpro_go_dataset):
        return QSystem(
            sources=interpro_go_dataset.catalog.sources(),
            config=QSystemConfig(top_k=3, top_y=2),
        )

    def test_bootstrap_installs_associations(self, system):
        correspondences = system.bootstrap_alignments(top_y=2)
        assert correspondences
        assert system.graph.association_edges()

    def test_create_view_and_alpha(self, system):
        system.bootstrap_alignments(top_y=2)
        view = system.create_view(["membrane", "title"])
        assert view.alpha is not None
        assert "membrane title" in system.views

    def test_register_source_exhaustive(self, system):
        system.bootstrap_alignments(top_y=2)
        new_source = DataSource.build(
            "mirna",
            {"target": ["entry_ac", "mirna_id"]},
            data={"target": [{"entry_ac": "IPR000001", "mirna_id": "MIR1"}]},
        )
        result = system.register_source(new_source, strategy="exhaustive")
        assert result.strategy == "exhaustive"
        assert system.catalog.has_source("mirna")
        assert result.attribute_comparisons > 0

    def test_register_source_view_based_requires_view(self, system):
        new_source = DataSource.build("x", {"r": ["a"]})
        with pytest.raises(RegistrationError):
            system.register_source(new_source, strategy="view_based")

    def test_register_source_view_based(self, system):
        system.bootstrap_alignments(top_y=2)
        view = system.create_view(["membrane", "title"])
        new_source = DataSource.build(
            "mirna2",
            {"target": ["entry_ac", "mirna_id"]},
            data={"target": [{"entry_ac": "IPR000001", "mirna_id": "MIR1"}]},
        )
        result = system.register_source(new_source, strategy="view_based", view=view)
        assert result.strategy == "view_based"
        exhaustive_candidates = system.catalog.relation_count - 1
        assert len(result.candidate_relations) <= exhaustive_candidates

    def test_register_source_preferential(self, system):
        system.bootstrap_alignments(top_y=2)
        new_source = DataSource.build(
            "mirna3", {"target": ["entry_ac"]}, data={"target": [{"entry_ac": "IPR000001"}]}
        )
        result = system.register_source(
            new_source, strategy="preferential", max_relations=2
        )
        assert len(result.candidate_relations) == 2

    def test_unknown_strategy(self, system):
        new_source = DataSource.build("y", {"r": ["a"]})
        with pytest.raises(QError):
            system.register_source(new_source, strategy="nope")

    def test_feedback_changes_costs(self, system, interpro_go_dataset):
        system.bootstrap_alignments(top_y=2)
        view = system.create_view(["membrane", "title"])
        event = simulated_feedback_for_view(view, interpro_go_dataset.gold)
        assert event is not None
        weights_before = system.graph.weights.as_dict()
        system.apply_feedback_events(view, [event], repetitions=1)
        assert system.graph.weights.as_dict() != weights_before
        assert len(system.feedback_log) == 1
