"""Windowed ranked-union pushdown, posting persistence, DB-API backend.

The acceptance gates of the rank-aware pushdown PR:

* the windowed ``SELECT`` (:mod:`repro.storage.windowed`) returns answers
  byte-identical — values, key order, cost, provenance, list order — to the
  Python :func:`~repro.engine.executor.ranked_union`, pagination included;
* the pagination edge cases behave through the windowed path exactly as
  through the Python path (offset past the end, ``limit=0`` rejection,
  deterministic cost-tie order, snapshot isolation of a mid-stream publish);
* the windowed ``SELECT`` and the posting self-join are actually *served by
  indexes* (``EXPLAIN QUERY PLAN`` assertions);
* posting tables make a warm :meth:`~repro.api.service.QService.open` skip
  the in-memory posting rebuild with zero behavior change;
* the generic DB-API backend satisfies the storage contract through a plain
  ``sqlite3`` DB-API connection, and the Postgres flavor degrades into a
  clear error (not an import crash) without psycopg2 installed.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.api import (
    QService,
    QueryRequest,
    RegisterSourceRequest,
    ServiceConfig,
)
from repro.core import RankedView
from repro.datasets import build_interpro_go
from repro.datastore import Catalog, ConjunctiveQuery
from repro.datastore.schema import RelationSchema
from repro.engine.context import ExecutionContext, window_pushdown_enabled
from repro.engine.executor import ranked_union, union_column_plan
from repro.exceptions import QueryError, StorageError
from repro.matching import ValueOverlapMatcher
from repro.profiling.index import CatalogProfileIndex
from repro.storage import DbApiBackend, SqliteBackend, create_backend
from repro.storage.postings import PostingStore
from repro.storage.windowed import WindowedUnionPushdown

from test_storage_backends import (
    _make_query,
    _mini_sources,
    answer_fingerprint,
    clone_source,
    reset_edge_ids,
)

#: Whether this process can exercise the windowed path at all (old SQLite
#: builds lack window functions; the REPRO_WINDOW_PUSHDOWN=off CI leg
#: disables it deliberately — these tests then assert the *fallback*).
WINDOWED_AVAILABLE = (
    sqlite3.sqlite_version_info >= (3, 25, 0) and window_pushdown_enabled()
)

requires_windowed = pytest.mark.skipif(
    not WINDOWED_AVAILABLE,
    reason="windowed pushdown unavailable (old SQLite or REPRO_WINDOW_PUSHDOWN=off)",
)


def _sqlite_view(keywords=("kinase", "title"), k=5, path=None, answer_limit=200):
    """A multi-query ranked view on a SQLite-backed service, plus the service."""
    reset_edge_ids()
    dataset = build_interpro_go(include_foreign_keys=True)
    service = QService(
        sources=[dataset.interpro],
        config=ServiceConfig(top_k=k, top_y=2, answer_limit=answer_limit),
        backend=SqliteBackend(path or ":memory:"),
    )
    service.bootstrap_alignments(top_y=2)
    info = service.create_view(QueryRequest(keywords=keywords, k=k))
    return service, service.view(info.view_id), info


# ----------------------------------------------------------------------
# Ranked parity: the windowed SELECT vs the Python ranked union
# ----------------------------------------------------------------------
class TestWindowedRankedParity:
    @requires_windowed
    def test_full_read_byte_identical_to_python_union(self):
        service, view, _ = _sqlite_view()
        windowed = view.answers_page()
        assert service.engine_context.statistics.pushdown_union_queries >= 1
        # Same view, same query objects, windowed path switched off: the
        # Python ranked union is the oracle.
        view.allow_window_pushdown = False
        view.invalidate_cache()
        python = view.answers_page()
        assert answer_fingerprint(windowed) == answer_fingerprint(python)
        assert len(windowed) > 3, "parity would be near-vacuous"
        service.close()

    @requires_windowed
    def test_every_page_equals_the_python_slice(self):
        service, view, _ = _sqlite_view()
        view.allow_window_pushdown = False
        full = view.answers()
        view.allow_window_pushdown = True
        assert len(full) >= 4
        for offset in range(0, len(full) + 2, 2):
            page = view.answers_page(limit=2, offset=offset)
            assert answer_fingerprint(page) == answer_fingerprint(
                full[offset : offset + 2]
            ), f"page at offset {offset} diverged"
        service.close()

    @requires_windowed
    def test_answers_accessor_primes_via_single_round_trip(self):
        # The cold refresh executes every generated query in ONE windowed
        # SELECT; a second read reuses the primed cache entirely.
        service, view, _ = _sqlite_view()
        stats = service.engine_context.statistics
        before = stats.pushdown_union_queries
        view.invalidate_cache()
        view.refresh()
        assert stats.pushdown_union_queries == before + 1
        executed = view.last_refresh.queries_executed
        assert executed == len(view.state.queries)
        view.refresh()
        assert view.last_refresh.queries_reused == executed
        assert stats.pushdown_union_queries == before + 1
        service.close()

    def test_gate_off_is_pure_fallback(self, monkeypatch):
        # REPRO_WINDOW_PUSHDOWN=off must not change a single answer byte —
        # it only moves the work back into the Python engine.
        service_on, view_on, info_on = _sqlite_view()
        on = answer_fingerprint(list(service_on.stream_answers(
            QueryRequest(view=info_on.view_id)
        )))
        service_on.close()
        monkeypatch.setenv("REPRO_WINDOW_PUSHDOWN", "off")
        service_off, view_off, info_off = _sqlite_view()
        assert service_off.engine_context.window_pushdown is None
        off = answer_fingerprint(list(service_off.stream_answers(
            QueryRequest(view=info_off.view_id)
        )))
        assert service_off.engine_context.statistics.pushdown_union_queries == 0
        service_off.close()
        assert on == off and on

    @requires_windowed
    def test_foreign_backend_relation_falls_back(self):
        # A union touching a relation that lives outside the SQLite backend
        # cannot push down; the Python engine serves it, identically.
        service, view, _ = _sqlite_view()
        context = service.engine_context
        queries = [g.query for g in view.state.queries]
        assert context.window_pushdown.can_execute(service.catalog, queries)
        relation = queries[0].atoms[0].relation
        service.catalog.relation(relation).detach()
        try:
            assert not context.window_pushdown.can_execute(
                service.catalog, queries
            )
            assert context.try_pushdown_union_raw(queries) is None
        finally:
            service.close()


# ----------------------------------------------------------------------
# Satellite: stable-order parity of the k-way merge and the window order
# ----------------------------------------------------------------------
class TestStableOrderParity:
    def _tied_queries(self):
        """Two equal-cost queries — the stable sort's tie-break territory."""
        first = ConjunctiveQuery(provenance="tree-a", cost=1.0)
        first.add_atom("go.term", "t")
        first.add_output("t", "name", "label")
        second = ConjunctiveQuery(provenance="tree-b", cost=1.0)
        second.add_atom("interpro.interpro2go", "i")
        second.add_output("i", "entry_ac", "label")
        third = ConjunctiveQuery(provenance="tree-c", cost=0.5)
        third.add_atom("go.term", "u")
        third.add_output("u", "acc", "label")
        return [first, second, third]

    def test_python_merge_keeps_query_then_emission_order(self):
        # The k-way merge (satellite 1) must reproduce the stable sort:
        # ascending cost, equal costs in query order, then emission order.
        catalog = Catalog([clone_source(s) for s in _mini_sources()])
        context = ExecutionContext(catalog)
        from repro.engine.executor import PlanExecutor

        executor = PlanExecutor(catalog, context)
        queries = self._tied_queries()
        pairs = [(q, executor.execute(q)) for q in queries]
        merged = ranked_union(pairs)
        costs = [a.cost for a in merged]
        assert costs == sorted(costs)
        # All cost-1.0 answers: every tree-a answer precedes every tree-b
        # answer (query order), each block in its own emission order.
        tied = [a.provenance.query_id for a in merged if a.cost == 1.0]
        assert tied == sorted(tied, key=lambda q: q != "tree-a")
        assert "tree-a" in tied and "tree-b" in tied

    @requires_windowed
    def test_window_order_matches_python_merge_on_ties(self):
        catalog = Catalog(
            [clone_source(s) for s in _mini_sources()],
            backend=SqliteBackend(":memory:"),
        )
        context = ExecutionContext(catalog)
        from repro.engine.executor import PlanExecutor

        executor = PlanExecutor(catalog, context)
        queries = sorted(self._tied_queries(), key=lambda q: q.cost)
        columns, mappings = union_column_plan(queries)
        windowed = context.try_pushdown_union_ranked(queries, columns, mappings)
        assert windowed is not None
        python = ranked_union([(q, executor.execute(q)) for q in queries])
        assert answer_fingerprint(windowed) == answer_fingerprint(python)
        assert len({a.cost for a in python}) < len(python), "no ties — vacuous"


# ----------------------------------------------------------------------
# Satellite: pagination edge cases through the windowed path
# ----------------------------------------------------------------------
class TestPaginationEdges:
    def test_offset_past_last_answer_is_empty(self):
        service, view, _ = _sqlite_view()
        total = len(view.answers())
        assert view.answers_page(limit=5, offset=total) == []
        assert view.answers_page(limit=5, offset=total + 100) == []
        service.close()

    def test_limit_zero_and_negative_offset_rejected(self):
        service, view, _ = _sqlite_view()
        with pytest.raises(QueryError):
            view.answers_page(limit=0)
        with pytest.raises(QueryError):
            view.answers_page(limit=-3)
        with pytest.raises(QueryError):
            view.answers_page(limit=1, offset=-1)
        service.close()

    def test_offset_never_reaches_past_answer_limit_cap(self):
        # The view's answer_limit caps the union; a window starting at the
        # cap must be empty even if more joined tuples exist beneath it.
        service, view, _ = _sqlite_view(answer_limit=3)
        assert len(view.answers()) == 3
        assert view.answers_page(limit=5, offset=3) == []
        assert len(view.answers_page(limit=5, offset=2)) == 1
        service.close()

    def test_single_answer_pages_tile_the_tie_region(self):
        # Cost ties must paginate deterministically: limit=1 pages, read in
        # any order, tile the full list exactly (row-id tie-break).
        service, view, _ = _sqlite_view()
        view.allow_window_pushdown = False
        full = view.answers()
        view.allow_window_pushdown = True
        assert len({a.cost for a in full}) < len(full), "no ties — vacuous"
        for offset in reversed(range(len(full))):
            page = view.answers_page(limit=1, offset=offset)
            assert answer_fingerprint(page) == answer_fingerprint(
                [full[offset]]
            ), f"tie region unstable at offset {offset}"
        service.close()

    @requires_windowed
    def test_mid_stream_publish_cannot_split_the_snapshot(self):
        # The windowed prime is one indivisible round trip: a publish
        # landing after the first pulled answer must not leak into the
        # remainder of an already-started stream.
        service, view, info = _sqlite_view()
        expected = answer_fingerprint(view.answers())
        view.invalidate_cache()
        stream = service.stream_answers(QueryRequest(view=info.view_id))
        got = [next(stream)]
        relation = view.state.queries[0].query.atoms[0].relation
        table = service.catalog.relation(relation)
        arity = len(table.schema.attribute_names)
        table.append(tuple(f"published-{i}" for i in range(arity)))
        got.extend(stream)
        assert answer_fingerprint(got) == expected
        # The *next* read does see the new data version (cache invalidated
        # by the version bump), so isolation is per-stream, not staleness.
        view.invalidate_cache()
        assert view.last_refresh is not None
        service.close()


# ----------------------------------------------------------------------
# Satellite: the windowed SELECT and posting join run on indexes
# ----------------------------------------------------------------------
class TestExplainQueryPlan:
    def _explain(self, backend, sql, params):
        return "\n".join(
            str(row[-1]) for row in backend.execute_sql("EXPLAIN QUERY PLAN " + sql, params)
        )

    @requires_windowed
    def test_windowed_union_uses_canon_expression_indexes(self):
        backend = SqliteBackend(":memory:")
        catalog = Catalog([clone_source(s) for s in _mini_sources()], backend=backend)
        query = _make_query()
        context = ExecutionContext(catalog)
        # One real execution creates the on-demand repro_canon(...) indexes
        # on the join columns.
        from repro.engine.executor import PlanExecutor

        PlanExecutor(catalog, context).execute(query)
        pushdown = WindowedUnionPushdown(backend)
        columns, mappings = union_column_plan([query])
        sql, params, _, _ = pushdown.compile_ranked(
            catalog, [query], columns, mappings
        )
        plan = self._explain(backend, sql, params)
        # The join probe must run on the on-demand repro_canon expression
        # index (SQLite reports expression-index probes as "<expr>=?").
        assert "USING INDEX ix_interpro_interpro2go_go_id (<expr>=?)" in plan, plan
        backend.close()

    def test_posting_self_join_probes_the_value_index(self):
        backend = SqliteBackend(":memory:")
        catalog = Catalog([clone_source(s) for s in _mini_sources()], backend=backend)
        index = CatalogProfileIndex.from_catalog(catalog)
        store = PostingStore(backend)
        assert store.sync(index)
        sql = (
            "SELECT other.relation, other.attribute, COUNT(*) "
            "FROM _repro_postings_values AS mine "
            "JOIN _repro_postings_values AS other ON other.value = mine.value "
            "WHERE mine.relation = ? AND mine.attribute = ? "
            "AND NOT (other.relation = mine.relation "
            "AND other.attribute = mine.attribute) "
            "GROUP BY other.relation, other.attribute"
        )
        plan = self._explain(backend, sql, ("go", "acc"))
        assert "ix_repro_postings_values_value" in plan, plan
        assert "ix_repro_postings_values_attr" in plan, plan
        backend.close()


# ----------------------------------------------------------------------
# Posting persistence: parity and the warm-open rebuild skip
# ----------------------------------------------------------------------
class TestPostingStore:
    def _indexed_catalog(self):
        backend = SqliteBackend(":memory:")
        catalog = Catalog([clone_source(s) for s in _mini_sources()], backend=backend)
        index = CatalogProfileIndex.from_catalog(catalog)
        return backend, catalog, index

    def test_store_candidates_equal_in_memory_walk(self):
        backend, catalog, index = self._indexed_catalog()
        store = PostingStore(backend)
        assert store.sync(index)
        assert not store.sync(index), "second sync must be a no-op"
        for profile in index.iter_attribute_profiles():
            relation, attribute = profile.relation, profile.attribute
            assert store.value_candidates(relation, attribute) == dict(
                index.value_candidates(relation, attribute)
            ), (relation, attribute)
        backend.close()

    def test_store_tfidf_round_trips_byte_identical(self):
        backend, catalog, index = self._indexed_catalog()
        store = PostingStore(backend)
        store.sync(index)
        index.attach_posting_store(store)
        for profile in index.iter_attribute_profiles():
            computed = index.content_tfidf(profile.relation, profile.attribute)
            stored = store.tfidf_vector(profile.relation, profile.attribute)
            assert stored == computed, (profile.relation, profile.attribute)
            assert list(stored) == list(computed), "iteration order differs"
        backend.close()

    def test_token_reads_match_through_the_store(self):
        backend, catalog, index = self._indexed_catalog()
        store = PostingStore(backend)
        store.sync(index)
        fresh = CatalogProfileIndex.from_catalog(catalog)
        for token in ("plasma", "membrane", "ipr001"):
            assert store.token_postings(token) == tuple(
                sorted(fresh.token_postings(token))
            )
            assert store.token_document_frequency(
                token
            ) == fresh.token_document_frequency(token)
        assert store.distinct_value_count() == fresh.distinct_value_count
        backend.close()

    def test_warm_open_skips_the_posting_rebuild(self, tmp_path):
        db = tmp_path / "catalog.db"
        service, view, info = _sqlite_view(path=db)
        cold = answer_fingerprint(view.answers())
        cold_stats = service.stats()
        assert cold_stats.posting_syncs >= 1
        assert cold_stats.posting_builds == 0
        service.save()  # session store lives inside the catalog database
        service.close()

        reset_edge_ids()
        reopened = QService.open(db)
        stats = reopened.stats()
        # The acceptance counter: a warm open performs NO full in-memory
        # posting rebuild and NO posting-table rewrite.
        assert stats.posting_builds == 0
        assert stats.posting_syncs == 0
        warm = answer_fingerprint(reopened.view(info.view_id).answers())
        assert warm == cold and warm
        assert reopened.stats().posting_builds == 0
        reopened.close()

    def test_registration_after_warm_open_stays_correct(self, tmp_path):
        # A post-open registration moves the epoch: the store goes stale,
        # candidate reads rebuild/fall back, and the tables re-sync.
        db = tmp_path / "catalog.db"
        service, view, info = _sqlite_view(path=db)
        service.save()
        service.close()

        reset_edge_ids()
        reopened = QService.open(db)
        # A new source overlapping interpro's entry accessions, so the
        # value-filtered alignment exercises the candidate lookup.
        donor = reopened.catalog.relation("interpro.entry")
        accs = [row.values[0] for row in donor.scan()][:8]
        from repro.datastore import DataSource

        source = DataSource.build(
            "extra",
            {"entry_notes": ["entry_ac", "note"]},
            data={"entry_notes": [(acc, f"note-{i}") for i, acc in enumerate(accs)]},
        )
        response = reopened.register_source(
            RegisterSourceRequest(
                source=source,
                strategy="exhaustive",
                matcher=ValueOverlapMatcher(min_confidence=0.5, min_shared_values=2),
                value_filter=True,
            )
        )
        assert response.attribute_comparisons > 0
        stats = reopened.stats()
        assert stats.posting_syncs >= 1, "mutation must re-sync the tables"
        # The store is current again: its join equals the live walk.
        store = reopened._posting_store
        assert store.is_current(
            reopened.profile_index.epoch, reopened.profile_index.attribute_count
        )
        for profile in list(reopened.profile_index.iter_attribute_profiles())[:4]:
            assert store.value_candidates(
                profile.relation, profile.attribute
            ) == dict(
                reopened.profile_index.value_candidates(
                    profile.relation, profile.attribute
                )
            )
        reopened.close()


# ----------------------------------------------------------------------
# The generic DB-API backend and the gated Postgres flavor
# ----------------------------------------------------------------------
class TestDbApiBackend:
    def _backend(self):
        return DbApiBackend(sqlite3.connect(":memory:"))

    def test_contract_smoke(self):
        backend = self._backend()
        schema = RelationSchema("r", ["a", "b"], source="s")
        backend.create_relation("s.r", schema)
        with pytest.raises(StorageError):
            backend.create_relation("s.r", schema)
        row = backend.append_row("s.r", ("x", True))
        assert (row.row_id, row.values) == (0, ("x", True))
        assert backend.insert_rows("s.r", [("y", 1), ("z", 2.5), (None, False)]) == 3
        assert backend.row_count("s.r") == 4
        assert backend.version("s.r") == 2
        scanned = [(r.row_id, r.values) for r in backend.scan("s.r")]
        assert scanned == [
            (0, ("x", True)),
            (1, ("y", 1)),
            (2, ("z", 2.5)),
            (3, (None, False)),
        ]
        assert backend.distinct_values("s.r", "a") == frozenset({"x", "y", "z"})
        with pytest.raises(StorageError):
            backend.insert_rows("s.r", [("wrong-arity",)])
        assert backend.row_count("s.r") == 4, "failed batch must roll back"
        backend.drop_relation("s.r")
        assert not backend.has_relation("s.r")
        backend.close()
        assert backend.closed

    def test_catalog_on_dbapi_backend_falls_back_to_python_engine(self):
        # Fallback by construction: no pushdown capability, every read goes
        # through the Python engine — and matches the memory backend.
        query = _make_query()
        memory_catalog = Catalog([clone_source(s) for s in _mini_sources()])
        memory_context = ExecutionContext(memory_catalog)
        dbapi_catalog = Catalog(
            [clone_source(s) for s in _mini_sources()], backend=self._backend()
        )
        dbapi_context = ExecutionContext(dbapi_catalog)
        assert dbapi_context.pushdown is None
        assert dbapi_context.window_pushdown is None
        from repro.engine.executor import PlanExecutor

        memory_answers = PlanExecutor(memory_catalog, memory_context).execute(query)
        dbapi_answers = PlanExecutor(dbapi_catalog, dbapi_context).execute(query)
        assert answer_fingerprint(dbapi_answers) == answer_fingerprint(memory_answers)
        assert memory_answers
        assert dbapi_context.statistics.pushdown_queries == 0
        assert dbapi_context.statistics.pushdown_union_queries == 0

    def test_posting_store_works_on_dbapi_backend(self):
        backend = self._backend()
        catalog = Catalog([clone_source(s) for s in _mini_sources()], backend=backend)
        index = CatalogProfileIndex.from_catalog(catalog)
        store = PostingStore(backend)
        assert store.sync(index)
        for profile in index.iter_attribute_profiles():
            assert store.value_candidates(
                profile.relation, profile.attribute
            ) == dict(index.value_candidates(profile.relation, profile.attribute))
        backend.close()

    def test_source_schema_persistence(self):
        backend = self._backend()
        backend.save_source_schema("one", {"name": "one"})
        backend.save_source_schema("two", {"name": "two"})
        backend.save_source_schema("one", {"name": "one", "v": 2})
        assert backend.persisted_source_schemas() == [
            {"name": "one", "v": 2},
            {"name": "two"},
        ]
        backend.delete_source_schema("one")
        assert backend.persisted_source_schemas() == [{"name": "two"}]
        backend.close()

    def test_invalid_paramstyle_rejected(self):
        with pytest.raises(StorageError, match="paramstyle"):
            DbApiBackend(sqlite3.connect(":memory:"), paramstyle="pyformat")

    def test_postgres_without_driver_is_a_clear_error(self):
        pytest.importorskip  # (not used: the point is psycopg2's absence)
        try:
            import psycopg2  # noqa: F401

            pytest.skip("psycopg2 installed — the gate cannot be observed")
        except ImportError:
            pass
        with pytest.raises(StorageError, match="psycopg2"):
            create_backend("postgres:dbname=repro")

    def test_registry_spellings(self):
        with pytest.raises(StorageError, match="DSN"):
            create_backend("postgres")
        with pytest.raises(StorageError, match="postgres"):
            create_backend("bogus")


# ----------------------------------------------------------------------
# Satellite: the counters surface in SystemStats
# ----------------------------------------------------------------------
class TestStatsCounters:
    @requires_windowed
    def test_union_counter_surfaces_on_sqlite(self):
        service, view, info = _sqlite_view()
        list(service.stream_answers(QueryRequest(view=info.view_id)))
        stats = service.stats()
        assert stats.pushdown_union_queries >= 1
        assert stats.posting_syncs >= 1
        assert stats.posting_builds == 0
        service.close()

    @pytest.mark.memory_engine_internals
    def test_counters_stay_zero_on_memory(self):
        reset_edge_ids()
        dataset = build_interpro_go(include_foreign_keys=True)
        service = QService(
            sources=[dataset.interpro],
            config=ServiceConfig(top_k=5, top_y=2),
        )
        service.bootstrap_alignments(top_y=2)
        list(service.stream_answers(QueryRequest(keywords=("kinase", "title"))))
        stats = service.stats()
        assert stats.pushdown_union_queries == 0
        assert stats.pushdown_queries == 0
        assert stats.posting_syncs == 0
        service.close()
