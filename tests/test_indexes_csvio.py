"""Unit tests for the value/token indexes and the CSV / JSON IO helpers."""

from __future__ import annotations

import pytest

from repro.datastore.csvio import (
    iter_relation_rows,
    load_catalog_json,
    load_relation_csv,
    load_source_from_csv_dir,
    read_relation_header,
    save_catalog_json,
    save_source_to_csv_dir,
    source_from_dict,
    source_to_dict,
)
from repro.datastore.database import Catalog, DataSource
from repro.datastore.indexes import TokenIndex, ValueIndex
from repro.exceptions import DataError
from repro.storage import SqliteBackend


class TestValueIndex:
    @pytest.fixture()
    def index(self, mini_catalog) -> ValueIndex:
        return ValueIndex.from_catalog(mini_catalog)

    def test_exact_lookup(self, index):
        occurrences = index.lookup("GO:0001")
        relations = {o.relation for o in occurrences}
        assert relations == {"go.term", "interpro.interpro2go"}

    def test_lookup_missing(self, index):
        assert index.lookup("NOPE") == ()
        assert index.lookup("") == ()

    def test_substring_lookup(self, index):
        occurrences = index.lookup_substring("membrane")
        assert any(o.value == "plasma membrane" for o in occurrences)

    def test_substring_limit(self, index):
        assert len(index.lookup_substring("GO:", limit=2)) == 2

    def test_attribute_values(self, index):
        values = index.attribute_values("go.term", "acc")
        assert values == {"GO:0001", "GO:0002", "GO:0003"}

    def test_attributes_with_value(self, index):
        pairs = index.attributes_with_value("IPR001")
        assert ("interpro.entry", "entry_ac") in pairs
        assert ("interpro.interpro2go", "entry_ac") in pairs

    def test_overlap(self, index):
        assert index.overlap("go.term", "acc", "interpro.interpro2go", "go_id") == 2
        assert index.has_overlap("go.term", "acc", "interpro.interpro2go", "go_id")
        assert not index.has_overlap("go.term", "name", "interpro.pub", "pub_id")

    def test_distinct_count_positive(self, index):
        assert index.distinct_value_count > 5
        assert ("go.term", "acc") in index.indexed_attributes()


class TestTokenIndex:
    def test_from_catalog_counts(self, mini_catalog):
        index = TokenIndex.from_catalog(mini_catalog, include_values=False)
        assert index.document_frequency("entry") >= 2  # relation + attribute labels
        assert index.document_frequency("unseen") == 0

    def test_replacing_document(self):
        index = TokenIndex()
        index.add_document("d1", "alpha beta")
        index.add_document("d1", "gamma")
        assert index.document_count == 1
        assert index.document_frequency("alpha") == 0
        assert index.tokens("d1") == {"gamma"}
        assert index.tokens("missing") == set()


class TestCsvIO:
    def test_relation_roundtrip(self, tmp_path):
        csv_path = tmp_path / "entry.csv"
        csv_path.write_text("entry_ac,name\nIPR001,Kinase\nIPR002,Zinc finger\n")
        schema, rows = load_relation_csv(csv_path)
        assert schema.name == "entry"
        assert schema.attribute_names == ("entry_ac", "name")
        assert rows[1]["name"] == "Zinc finger"

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            load_relation_csv(path)

    def test_bad_arity_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(DataError):
            load_relation_csv(path)

    def test_source_directory_roundtrip(self, tmp_path, mini_catalog):
        source = mini_catalog.source("interpro")
        out_dir = tmp_path / "interpro"
        written = save_source_to_csv_dir(source, out_dir)
        assert len(written) == 4
        loaded = load_source_from_csv_dir(out_dir)
        assert loaded.name == "interpro"
        assert loaded.relation_count == 4
        assert loaded.table("entry").distinct_values("entry_ac") == {"IPR001", "IPR002"}

    def test_iter_relation_rows_is_lazy(self, tmp_path):
        csv_path = tmp_path / "entry.csv"
        csv_path.write_text("entry_ac,name\nIPR001,Kinase\nIPR002,Zinc finger\n")
        stream = iter_relation_rows(csv_path)
        assert iter(stream) is stream  # a generator, not a materialized list
        assert next(stream)["entry_ac"] == "IPR001"
        header = read_relation_header(csv_path)
        assert header.attribute_names == ("entry_ac", "name")

    def test_streamed_batches_match_materialized_load(self, tmp_path, mini_catalog):
        out_dir = tmp_path / "interpro"
        save_source_to_csv_dir(mini_catalog.source("interpro"), out_dir)
        whole = load_source_from_csv_dir(out_dir)
        batched = load_source_from_csv_dir(out_dir, source_name="batched", batch_size=1)
        for table in whole:
            other = batched.table(table.schema.name)
            assert [tuple(r.values) for r in other.scan()] == [
                tuple(r.values) for r in table.scan()
            ]

    def test_stream_into_sqlite_backend(self, tmp_path, mini_catalog):
        out_dir = tmp_path / "interpro"
        save_source_to_csv_dir(mini_catalog.source("interpro"), out_dir)
        backend = SqliteBackend(":memory:")
        source = load_source_from_csv_dir(out_dir, backend=backend, batch_size=2)
        assert source.table("entry").storage_backend is backend
        assert backend.row_count("interpro.entry") == 2
        assert source.table("entry").distinct_values("entry_ac") == {"IPR001", "IPR002"}
        backend.close()

    def test_bad_batch_size_rejected(self, tmp_path):
        empty = tmp_path / "dir"
        empty.mkdir()
        (empty / "r.csv").write_text("a\n1\n")
        with pytest.raises(DataError):
            load_source_from_csv_dir(empty, batch_size=0)

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(DataError):
            load_source_from_csv_dir(tmp_path / "nope")

    def test_load_empty_directory(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(DataError):
            load_source_from_csv_dir(empty)


class TestDictAndJsonIO:
    def test_source_dict_roundtrip(self, mini_catalog):
        source = mini_catalog.source("interpro")
        payload = source_to_dict(source)
        restored = source_from_dict(payload)
        assert restored.name == source.name
        assert restored.relation_count == source.relation_count
        assert restored.row_count == source.row_count
        assert len(restored.schema.foreign_keys) == len(source.schema.foreign_keys)

    def test_catalog_json_roundtrip(self, tmp_path, mini_catalog):
        path = save_catalog_json(mini_catalog, tmp_path / "catalog.json")
        loaded = load_catalog_json(path)
        assert loaded.source_count == mini_catalog.source_count
        assert loaded.relation("go.term").distinct_values("acc") == {
            "GO:0001",
            "GO:0002",
            "GO:0003",
        }
