"""Unit tests for the schema matchers: metadata, MAD, value overlap, ensemble."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastore.database import DataSource
from repro.matching import (
    AttributeRef,
    Correspondence,
    DUMMY_LABEL,
    MadConfig,
    MadGraphConfig,
    MadMatcher,
    MatcherEnsemble,
    MetadataMatcher,
    MetadataMatcherConfig,
    ValueOverlapFilter,
    ValueOverlapMatcher,
    attribute_graph_node,
    build_column_value_graph,
    compute_walk_probabilities,
    merge_correspondences,
    normalize_distribution,
    run_mad,
    top_y_per_attribute,
    value_graph_node,
)


class TestCorrespondence:
    def test_key_is_order_independent(self):
        a = Correspondence(AttributeRef("r1", "x"), AttributeRef("r2", "y"), 0.9, "m")
        b = Correspondence(AttributeRef("r2", "y"), AttributeRef("r1", "x"), 0.7, "m")
        assert a.key() == b.key()
        assert a.reversed().source == a.target

    def test_top_y_per_attribute(self):
        # A pair is kept when it is among the top-Y candidates of *either*
        # endpoint; the y–b pair below is the best of neither endpoint and
        # must be dropped at Y=1.
        corrs = [
            Correspondence(AttributeRef("r1", "x"), AttributeRef("r2", "a"), 0.9, "m"),
            Correspondence(AttributeRef("r1", "x"), AttributeRef("r2", "b"), 0.8, "m"),
            Correspondence(AttributeRef("r1", "y"), AttributeRef("r2", "a"), 0.85, "m"),
            Correspondence(AttributeRef("r1", "y"), AttributeRef("r2", "b"), 0.7, "m"),
        ]
        top1 = top_y_per_attribute(corrs, 1)
        assert {c.confidence for c in top1} == {0.9, 0.85, 0.8}
        top2 = top_y_per_attribute(corrs, 2)
        assert {c.confidence for c in top2} == {0.9, 0.85, 0.8, 0.7}
        assert top_y_per_attribute(corrs, 1, min_confidence=0.95) == []
        with pytest.raises(ValueError):
            top_y_per_attribute(corrs, 0)

    def test_merge_correspondences(self):
        corrs = [
            Correspondence(AttributeRef("r1", "x"), AttributeRef("r2", "a"), 0.9, "m1"),
            Correspondence(AttributeRef("r2", "a"), AttributeRef("r1", "x"), 0.6, "m2"),
            Correspondence(AttributeRef("r1", "x"), AttributeRef("r2", "a"), 0.5, "m1"),
        ]
        merged = merge_correspondences(corrs)
        assert len(merged) == 1
        confidences = next(iter(merged.values()))
        assert confidences == {"m1": 0.9, "m2": 0.6}


class TestMetadataMatcher:
    @pytest.fixture()
    def matcher(self) -> MetadataMatcher:
        return MetadataMatcher()

    def test_identical_names_score_one(self, matcher):
        assert matcher.name_similarity("entry_ac", "entry_ac") == 1.0
        assert matcher.name_similarity("pub_id", "PubId") == 1.0

    def test_dissimilar_names_score_low(self, matcher):
        assert matcher.name_similarity("go_id", "acc") < 0.3

    def test_substring_containment_scores_high(self, matcher):
        assert matcher.name_similarity("title", "pub_title") > 0.5

    def test_empty_label(self, matcher):
        assert matcher.name_similarity("", "x") == 0.0

    def test_match_relations_counts_comparisons(self, matcher, mini_catalog):
        entry = mini_catalog.relation("interpro.entry")
        interpro2go = mini_catalog.relation("interpro.interpro2go")
        correspondences = matcher.match_relations(entry, interpro2go)
        assert matcher.counter.attribute_comparisons == 4
        assert matcher.counter.relation_pairs == 1
        pairs = {c.key() for c in correspondences}
        assert ("interpro.entry.entry_ac", "interpro.interpro2go.entry_ac") in pairs
        matcher.reset_counters()
        assert matcher.counter.attribute_comparisons == 0

    def test_same_relation_skipped(self, matcher, mini_catalog):
        entry = mini_catalog.relation("interpro.entry")
        assert matcher.match_relations(entry, entry) == []

    def test_confidences_in_unit_interval(self, matcher, mini_catalog):
        tables = mini_catalog.all_tables()
        for i, a in enumerate(tables):
            for b in tables[i + 1 :]:
                for c in matcher.match_relations(a, b):
                    assert 0.0 <= c.confidence <= 1.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MetadataMatcher(MetadataMatcherConfig(token_weight=0.9, jaro_winkler_weight=0.9))


class TestMadGraph:
    def test_column_value_graph_structure(self, mini_catalog):
        graph = build_column_value_graph(mini_catalog.all_tables())
        # acc and go_id share GO identifiers, so those value nodes survive pruning.
        shared_value = value_graph_node("GO:0001")
        assert shared_value in graph.value_nodes
        acc_node = attribute_graph_node("go.term", "acc")
        assert graph.degree(acc_node) >= 2
        assert graph.edge_count > 0

    def test_degree_one_values_pruned(self, mini_catalog):
        graph = build_column_value_graph(mini_catalog.all_tables())
        # "nucleus" appears only in go.term.name, hence is pruned.
        assert value_graph_node("nucleus") not in graph.value_nodes

    def test_pruning_can_be_disabled(self, mini_catalog):
        config = MadGraphConfig(prune_degree_one=False)
        graph = build_column_value_graph(mini_catalog.all_tables(), config)
        assert value_graph_node("nucleus") in graph.value_nodes

    def test_numeric_values_dropped(self):
        source = DataSource.build(
            "s",
            {"r1": ["a"], "r2": ["b"]},
            data={"r1": [{"a": "123"}, {"a": "shared"}], "r2": [{"b": "123"}, {"b": "shared"}]},
        )
        graph = build_column_value_graph(source.tables())
        assert value_graph_node("123") not in graph.value_nodes
        assert value_graph_node("shared") in graph.value_nodes

    def test_max_values_per_attribute(self, mini_catalog):
        config = MadGraphConfig(max_values_per_attribute=1, prune_degree_one=False)
        graph = build_column_value_graph(mini_catalog.all_tables(), config)
        acc_node = attribute_graph_node("go.term", "acc")
        assert graph.degree(acc_node) <= 1


class TestMadAlgorithm:
    def test_walk_probabilities_sum_to_one(self, mini_catalog):
        graph = build_column_value_graph(mini_catalog.all_tables())
        seeds = set(graph.attribute_nodes)
        probabilities = compute_walk_probabilities(graph, seeds)
        for node, prob in probabilities.items():
            total = prob.p_inj + prob.p_cont + prob.p_abnd
            assert total == pytest.approx(1.0, abs=1e-6)
            assert prob.p_inj >= 0 and prob.p_cont >= 0 and prob.p_abnd >= 0

    def test_isolated_node_gets_full_injection(self):
        from repro.matching.mad_graph import PropagationGraph

        graph = PropagationGraph()
        graph.weights["lonely"] = {}
        probabilities = compute_walk_probabilities(graph, {"lonely"})
        assert probabilities["lonely"].p_inj == 1.0

    def test_labels_propagate_through_shared_values(self, mini_catalog):
        graph = build_column_value_graph(mini_catalog.all_tables())
        seeds = {node: {node: 1.0} for node in graph.attribute_nodes}
        estimates = run_mad(graph, seeds, MadConfig(max_iterations=3))
        acc_node = attribute_graph_node("go.term", "acc")
        go_id_node = attribute_graph_node("interpro.interpro2go", "go_id")
        # After propagation the acc column should carry the go_id label.
        assert estimates[acc_node].get(go_id_node, 0.0) > 0.0

    def test_dummy_label_present(self, mini_catalog):
        graph = build_column_value_graph(mini_catalog.all_tables())
        seeds = {node: {node: 1.0} for node in graph.attribute_nodes}
        estimates = run_mad(graph, seeds, MadConfig(max_iterations=2))
        assert any(DUMMY_LABEL in dist for dist in estimates.values())

    def test_normalize_distribution(self):
        dist = {"a": 2.0, "b": 2.0, DUMMY_LABEL: 6.0}
        normalized = normalize_distribution(dist)
        assert normalized == {"a": 0.5, "b": 0.5}
        assert normalize_distribution({DUMMY_LABEL: 1.0}) == {}
        assert normalize_distribution({}) == {}

    def test_convergence_tolerance_stops_early(self, mini_catalog):
        graph = build_column_value_graph(mini_catalog.all_tables())
        seeds = {node: {node: 1.0} for node in graph.attribute_nodes}
        # Very loose tolerance: a single iteration should be enough to stop.
        loose = run_mad(graph, seeds, MadConfig(max_iterations=50, tolerance=1e9))
        assert loose  # simply completes quickly and returns distributions


class TestMadMatcher:
    def test_finds_instance_level_synonyms(self, mini_catalog):
        matcher = MadMatcher()
        correspondences = matcher.match_tables(mini_catalog.all_tables())
        pairs = {c.key() for c in correspondences}
        assert ("go.term.acc", "interpro.interpro2go.go_id") in pairs

    def test_pairwise_interface_restricts_to_two_relations(self, mini_catalog):
        matcher = MadMatcher()
        term = mini_catalog.relation("go.term")
        interpro2go = mini_catalog.relation("interpro.interpro2go")
        correspondences = matcher.match_relations(term, interpro2go)
        for c in correspondences:
            assert {c.source.relation, c.target.relation} == {"go.term", "interpro.interpro2go"}
        assert matcher.counter.relation_pairs == 1

    def test_same_relation_returns_empty(self, mini_catalog):
        matcher = MadMatcher()
        term = mini_catalog.relation("go.term")
        assert matcher.match_relations(term, term) == []

    def test_confidence_bounds(self, mini_catalog):
        matcher = MadMatcher()
        for c in matcher.match_tables(mini_catalog.all_tables()):
            assert 0.0 < c.confidence <= 1.0


class TestValueOverlap:
    def test_matcher_scores_containment(self, mini_catalog):
        matcher = ValueOverlapMatcher()
        entry = mini_catalog.relation("interpro.entry")
        interpro2go = mini_catalog.relation("interpro.interpro2go")
        correspondences = matcher.match_relations(entry, interpro2go)
        pairs = {c.key(): c.confidence for c in correspondences}
        key = ("interpro.entry.entry_ac", "interpro.interpro2go.entry_ac")
        assert pairs[key] == pytest.approx(1.0)

    def test_filter_allows_only_overlapping_pairs(self, mini_catalog):
        tables = mini_catalog.all_tables()
        overlap_filter = ValueOverlapFilter.from_tables(tables)
        assert overlap_filter.allows("go.term", "acc", "interpro.interpro2go", "go_id")
        assert not overlap_filter.allows("go.term", "name", "interpro.pub", "pub_id")

    def test_filter_counts_fewer_pairs_than_cartesian(self, mini_catalog):
        tables = mini_catalog.all_tables()
        overlap_filter = ValueOverlapFilter.from_tables(tables)
        term = mini_catalog.relation("go.term")
        interpro2go = mini_catalog.relation("interpro.interpro2go")
        cartesian = len(term.schema.attribute_names) * len(interpro2go.schema.attribute_names)
        assert overlap_filter.comparable_pairs(term, interpro2go) < cartesian


class TestEnsemble:
    def test_requires_matchers(self):
        with pytest.raises(ValueError):
            MatcherEnsemble([])

    def test_combines_confidences_per_pair(self, mini_catalog):
        ensemble = MatcherEnsemble([MetadataMatcher(), MadMatcher()], top_y=2)
        alignments = ensemble.match_tables(mini_catalog.all_tables())
        by_key = {a.key(): a for a in alignments}
        entry_pair = ("interpro.entry.entry_ac", "interpro.interpro2go.entry_ac")
        assert entry_pair in by_key
        confidences = by_key[entry_pair].confidences
        assert "metadata" in confidences and "mad" in confidences
        alignment = by_key[entry_pair]
        assert 0.0 < alignment.average_confidence <= alignment.max_confidence <= 1.0

    def test_mad_only_pair_survives_top_y(self, mini_catalog):
        ensemble = MatcherEnsemble([MetadataMatcher(), MadMatcher()], top_y=2)
        alignments = ensemble.match_tables(mini_catalog.all_tables())
        keys = {a.key() for a in alignments}
        assert ("go.term.acc", "interpro.interpro2go.go_id") in keys

    def test_counters_reset(self, mini_catalog):
        matcher = MetadataMatcher()
        ensemble = MatcherEnsemble([matcher])
        ensemble.match_relations(
            mini_catalog.relation("interpro.entry"), mini_catalog.relation("interpro.pub")
        )
        assert ensemble.total_attribute_comparisons > 0
        ensemble.reset_counters()
        assert ensemble.total_attribute_comparisons == 0
