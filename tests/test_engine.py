"""Tests for the planned execution engine: planner, context, and parity.

The parity class is the PR's core guarantee: for every query the engine
must return *exactly* what the seed nested-join executor returns — values
(including dict order), costs, provenance and answer order — regardless of
the join order the planner picks.
"""

from __future__ import annotations

import pytest

from repro.core import QSystem, QSystemConfig
from repro.datastore.executor import QueryExecutor
from repro.datastore.query import ConjunctiveQuery
from repro.engine import ExecutionContext, PlanExecutor, QueryPlanner, compile_predicates
from repro.exceptions import DisconnectedTerminalsError, SteinerError


def _answer_record(answer):
    """Full observable identity of one answer (values order included)."""
    provenance = answer.provenance
    assert provenance is not None
    return (
        tuple(answer.values.items()),
        answer.cost,
        provenance.query_id,
        provenance.query_cost,
        tuple(sorted(provenance.base_tuples)),
    )


def _assert_same_answers(engine_answers, reference_answers):
    assert [_answer_record(a) for a in engine_answers] == [
        _answer_record(a) for a in reference_answers
    ]


def make_join_query(cost: float = 1.0) -> ConjunctiveQuery:
    query = ConjunctiveQuery(cost=cost, provenance="q1")
    query.add_atom("go.term", "t")
    query.add_atom("interpro.interpro2go", "i2g")
    query.add_join("t", "acc", "i2g", "go_id")
    query.add_output("t", "name", "term_name")
    query.add_output("i2g", "entry_ac", "entry_ac")
    return query


class TestCompiledPredicates:
    def test_equals_precomputes_canonical_value(self):
        query = ConjunctiveQuery()
        query.add_atom("go.term", "t")
        query.add_selection("t", "acc", "  GO:0001  ", mode="equals")
        (compiled,) = compile_predicates(query.selections)
        assert compiled.canonical_value == "GO:0001"
        assert compiled.matches("GO:0001")
        assert not compiled.matches(None)

    def test_keyword_precomputes_token_set(self):
        query = ConjunctiveQuery()
        query.add_atom("go.term", "t")
        query.add_selection("t", "name", "Plasma Membrane")
        (compiled,) = compile_predicates(query.selections)
        assert compiled.needle_tokens == frozenset({"plasma", "membrane"})
        assert compiled.matches("the plasma membrane protein")
        assert not compiled.matches("plasma only")

    def test_contains_lowers_needle_once(self):
        query = ConjunctiveQuery()
        query.add_atom("go.term", "t")
        query.add_selection("t", "name", "MEMBRANE", mode="contains")
        (compiled,) = compile_predicates(query.selections)
        assert compiled.needle_lower == "membrane"
        assert compiled.matches("plasma Membrane")

    def test_key_is_alias_independent(self):
        query = ConjunctiveQuery()
        query.add_atom("go.term", "a")
        query.add_atom("go.term", "b")
        query.add_selection("a", "name", "membrane")
        query.add_selection("b", "name", "membrane")
        first, second = compile_predicates(query.selections)
        assert first.key == second.key

    def test_key_distinguishes_values_with_equal_str(self):
        # 1.0 (float) canonicalizes to "1" but "1.0" (str) stays "1.0":
        # their scans must not share a cache slot.
        query = ConjunctiveQuery()
        query.add_atom("go.term", "a")
        query.add_atom("go.term", "b")
        query.add_selection("a", "acc", 1.0, mode="equals")
        query.add_selection("b", "acc", "1.0", mode="equals")
        first, second = compile_predicates(query.selections)
        assert first.key != second.key


class TestPlanner:
    def test_greedy_order_starts_from_smallest_atom(self, mini_catalog):
        # go.term has 3 rows, interpro.interpro2go has 2 — the planner must
        # start from the smaller relation even though it is listed second.
        query = make_join_query()
        plan = QueryPlanner(ExecutionContext(mini_catalog)).plan(query)
        assert [step.alias for step in plan.steps] == ["i2g", "t"]
        assert plan.steps[0].is_cross_product
        assert not plan.steps[1].is_cross_product

    def test_selection_shrinks_estimate_and_order(self, mini_catalog):
        query = make_join_query()
        query.add_selection("t", "acc", "GO:0001", mode="equals")
        plan = QueryPlanner(ExecutionContext(mini_catalog)).plan(query)
        # With the equals selection, t filters to 1 row and now leads.
        assert [step.alias for step in plan.steps] == ["t", "i2g"]
        assert plan.steps[0].estimated_rows == 1

    def test_disconnected_join_graph_falls_back_to_cross_product(self, mini_catalog):
        query = ConjunctiveQuery()
        query.add_atom("go.term", "t")
        query.add_atom("interpro.pub", "p")
        plan = QueryPlanner(ExecutionContext(mini_catalog)).plan(query)
        assert all(step.is_cross_product for step in plan.steps)

    def test_explain_is_printable(self, mini_catalog):
        plan = QueryPlanner(ExecutionContext(mini_catalog)).plan(make_join_query())
        text = plan.explain()
        assert "hash_join" in text or "scan" in text


class TestExecutionContext:
    @pytest.mark.memory_engine_internals
    def test_scan_and_join_index_caches_hit(self, mini_catalog):
        context = ExecutionContext(mini_catalog)
        executor = PlanExecutor(mini_catalog, context)
        executor.execute(make_join_query())
        built = context.statistics.join_indexes_built
        executor.execute(make_join_query())
        assert context.statistics.join_index_cache_hits > 0
        assert context.statistics.join_indexes_built == built
        assert context.statistics.scan_cache_hits > 0

    def test_table_mutation_invalidates_naturally(self, mini_catalog):
        context = ExecutionContext(mini_catalog)
        executor = PlanExecutor(mini_catalog, context)
        before = executor.execute(make_join_query())
        mini_catalog.relation("interpro.interpro2go").append(
            {"go_id": "GO:0003", "entry_ac": "IPR003"}
        )
        after = executor.execute(make_join_query())
        assert len(after) == len(before) + 1

    @pytest.mark.memory_engine_internals
    def test_equals_pushdown_uses_index_scan(self, mini_catalog):
        context = ExecutionContext(mini_catalog)
        executor = PlanExecutor(mini_catalog, context)
        query = make_join_query()
        query.add_selection("t", "acc", "GO:0002", mode="equals")
        answers = executor.execute(query)
        assert len(answers) == 1
        assert context.statistics.index_scans > 0

    def test_invalidate_bumps_generation(self, mini_catalog):
        context = ExecutionContext(mini_catalog)
        generation = context.generation
        context.invalidate()
        assert context.generation == generation + 1

    def test_context_bound_to_other_catalog_rejected(self, mini_catalog, interpro_go_dataset):
        context = ExecutionContext(interpro_go_dataset.catalog)
        with pytest.raises(ValueError):
            PlanExecutor(mini_catalog, context)

    def test_replaced_table_with_coinciding_version_not_served_stale(self):
        from repro.datastore import Catalog, DataSource

        def source(rows):
            return DataSource.build("s", {"r": ["a"]}, data={"r": rows})

        catalog = Catalog([source([{"a": "old1"}, {"a": "old2"}])])
        executor = PlanExecutor(catalog)
        query = ConjunctiveQuery(provenance="q")
        query.add_atom("s.r", "r")
        query.add_output("r", "a", "a")
        assert [a["a"] for a in executor.execute(query)] == ["old1", "old2"]
        # Replace the source: same relation name, same row count, so the
        # fresh Table's version counter coincides with the old one's.
        catalog.remove_source("s")
        catalog.add_source(source([{"a": "new1"}, {"a": "new2"}]))
        assert [a["a"] for a in executor.execute(query)] == ["new1", "new2"]


class TestEngineParityHandcrafted:
    """Engine vs seed executor on handcrafted queries over the mini catalog."""

    def _queries(self, mini_catalog):
        queries = [make_join_query(cost=1.5)]

        keyword = make_join_query(cost=2.0)
        keyword.add_selection("t", "name", "membrane")
        queries.append(keyword)

        three_way = ConjunctiveQuery(cost=2.5, provenance="q3")
        three_way.add_atom("interpro.entry", "e")
        three_way.add_atom("interpro.entry2pub", "e2p")
        three_way.add_atom("interpro.pub", "p")
        three_way.add_join("e", "entry_ac", "e2p", "entry_ac")
        three_way.add_join("e2p", "pub_id", "p", "pub_id")
        three_way.add_output("e", "name", "entry_name")
        three_way.add_output("p", "title", "title")
        queries.append(three_way)

        cross = ConjunctiveQuery(cost=3.0, provenance="qx")
        cross.add_atom("go.term", "t")
        cross.add_atom("interpro.pub", "p")
        queries.append(cross)  # no join: cross product, no outputs

        empty = ConjunctiveQuery(cost=0.5, provenance="q0")
        empty.add_atom("go.term", "t")
        empty.add_atom("interpro.pub", "p")
        empty.add_join("t", "name", "p", "title")
        queries.append(empty)  # join over disjoint values: empty result
        return queries

    def test_execute_parity_including_order(self, mini_catalog):
        reference = QueryExecutor(mini_catalog, use_engine=False)
        engine = QueryExecutor(mini_catalog)
        for query in self._queries(mini_catalog):
            _assert_same_answers(engine.execute(query), reference.execute(query))

    def test_execute_parity_with_limit(self, mini_catalog):
        reference = QueryExecutor(mini_catalog, use_engine=False)
        engine = QueryExecutor(mini_catalog)
        cross = ConjunctiveQuery(provenance="qx")
        cross.add_atom("go.term", "t")
        cross.add_atom("interpro.pub", "p")
        _assert_same_answers(
            engine.execute(cross, limit=3), reference.execute(cross, limit=3)
        )

    def test_union_parity(self, mini_catalog):
        reference = QueryExecutor(mini_catalog, use_engine=False)
        engine = QueryExecutor(mini_catalog)
        queries = self._queries(mini_catalog)
        _assert_same_answers(
            engine.execute_union(queries), reference.execute_union(queries)
        )


class TestEngineParitySynthetic:
    """Engine vs seed executor over the synthetic InterPro–GO dataset.

    The queries come from real view refreshes (Steiner trees → conjunctive
    queries), so they exercise the planner on the shapes the system actually
    produces.
    """

    @pytest.fixture(scope="class")
    def system_and_queries(self, interpro_go_dataset):
        system = QSystem(
            sources=interpro_go_dataset.catalog.sources(),
            config=QSystemConfig(top_k=5, top_y=2),
        )
        system.bootstrap_alignments()
        queries = []
        for keywords in interpro_go_dataset.keyword_queries[:6]:
            view = system.create_view(list(keywords))
            queries.extend(generated.query for generated in view.state.queries)
        return system, queries

    def test_view_queries_exist(self, system_and_queries):
        _, queries = system_and_queries
        assert len(queries) >= 5

    def test_execute_parity(self, system_and_queries):
        system, queries = system_and_queries
        reference = QueryExecutor(system.catalog, use_engine=False)
        engine = QueryExecutor(system.catalog)
        for query in queries:
            _assert_same_answers(engine.execute(query), reference.execute(query))

    def test_union_parity(self, system_and_queries):
        system, queries = system_and_queries
        reference = QueryExecutor(system.catalog, use_engine=False)
        engine = QueryExecutor(system.catalog)
        _assert_same_answers(
            engine.execute_union(queries, limit=200),
            reference.execute_union(queries, limit=200),
        )


class TestTypedSteinerErrors:
    def test_disconnected_error_is_steiner_error(self):
        assert issubclass(DisconnectedTerminalsError, SteinerError)

    def test_both_solvers_raise_typed_error(self):
        from repro.graph import Edge, EdgeKind, FeatureVector, Node, NodeKind, SearchGraph, edge_feature
        from repro.steiner import approximate_steiner_tree, exact_steiner_tree

        graph = SearchGraph()
        for name in ("a", "b", "c", "d"):
            graph.add_node(Node(node_id=name, kind=NodeKind.RELATION, label=name, relation=name))
        for u, v in (("a", "b"), ("c", "d")):
            edge = Edge.create(u, v, EdgeKind.ASSOCIATION)
            edge.features = FeatureVector({edge_feature(edge.edge_id): 1.0})
            graph.weights.set(edge_feature(edge.edge_id), 1.0)
            graph.add_edge(edge)

        with pytest.raises(DisconnectedTerminalsError):
            exact_steiner_tree(graph, ["a", "c"])
        with pytest.raises(DisconnectedTerminalsError):
            approximate_steiner_tree(graph, ["a", "c"])
        with pytest.raises(DisconnectedTerminalsError):
            exact_steiner_tree(graph, ["a", "b", "c"])
