"""Unit tests for tables, rows, data sources and the catalog."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datastore.database import Catalog, DataSource
from repro.datastore.schema import RelationSchema, SourceSchema
from repro.datastore.table import Row, Table
from repro.datastore.types import ValueType
from repro.exceptions import DataError, SchemaError, UnknownRelationError


@pytest.fixture()
def entry_table() -> Table:
    schema = RelationSchema("entry", ["entry_ac", "name", "length"], source="interpro")
    return Table(
        schema,
        rows=[
            {"entry_ac": "IPR001", "name": "Kinase", "length": "120"},
            {"entry_ac": "IPR002", "name": "Zinc finger", "length": "87"},
            ("IPR003", "Kinase", "200"),
        ],
    )


class TestTable:
    def test_append_mapping_and_sequence(self, entry_table):
        assert len(entry_table) == 3
        assert entry_table[0]["entry_ac"] == "IPR001"
        assert entry_table[2]["name"] == "Kinase"

    def test_unknown_attribute_rejected(self, entry_table):
        with pytest.raises(DataError):
            entry_table.append({"nope": 1})

    def test_wrong_arity_rejected(self, entry_table):
        with pytest.raises(DataError):
            entry_table.append(("only", "two"))

    def test_uninterpretable_row_rejected(self, entry_table):
        with pytest.raises(DataError):
            entry_table.append(42)

    def test_column(self, entry_table):
        assert entry_table.column("name") == ["Kinase", "Zinc finger", "Kinase"]

    def test_distinct_values_canonicalized(self, entry_table):
        assert entry_table.distinct_values("name") == {"Kinase", "Zinc finger"}
        # cache invalidation on mutation
        entry_table.append({"entry_ac": "IPR004", "name": "Novel", "length": "10"})
        assert "Novel" in entry_table.distinct_values("name")

    def test_value_overlap(self, entry_table):
        other_schema = RelationSchema("method", ["method_ac", "name"], source="interpro")
        other = Table(other_schema, rows=[{"method_ac": "PF1", "name": "Kinase"}])
        assert entry_table.value_overlap("name", other, "name") == 1

    def test_inferred_column_type(self, entry_table):
        assert entry_table.inferred_column_type("length") is ValueType.INTEGER

    def test_select_and_project(self, entry_table):
        kinases = entry_table.select(lambda row: row["name"] == "Kinase")
        assert len(kinases) == 2
        projected = entry_table.project(["name"])
        assert projected.schema.attribute_names == ("name",)
        assert len(projected) == 3

    def test_row_protocols(self, entry_table):
        row = entry_table[0]
        assert row[0] == "IPR001"
        assert row.get("missing", "x") == "x"
        assert row.as_dict()["name"] == "Kinase"
        assert list(row) == ["IPR001", "Kinase", "120"]
        assert len(row) == 3

    @given(st.lists(st.text(min_size=1, max_size=5), min_size=0, max_size=30))
    def test_distinct_never_larger_than_rows_property(self, values):
        schema = RelationSchema("t", ["v"])
        table = Table(schema, rows=[{"v": v} for v in values])
        assert len(table.distinct_values("v")) <= len(table)


class TestDataSource:
    def test_build_and_lookup(self, mini_catalog):
        interpro = mini_catalog.source("interpro")
        assert interpro.relation_count == 4
        assert interpro.attribute_count == 8
        assert interpro.row_count == 8
        assert interpro.table("entry").schema.qualified_name == "interpro.entry"

    def test_unknown_relation(self, mini_catalog):
        with pytest.raises(UnknownRelationError):
            mini_catalog.source("interpro").table("missing")

    def test_add_relation(self):
        source = DataSource.build("s", {"r": ["a"]})
        table = source.add_relation(RelationSchema("r2", ["b"]), rows=[{"b": "1"}])
        assert len(table) == 1
        assert source.relation_count == 2


class TestCatalog:
    def test_duplicate_source_rejected(self, mini_catalog):
        with pytest.raises(SchemaError):
            mini_catalog.add_source(DataSource.build("go", {"term": ["acc"]}))

    def test_lookup_by_qualified_name(self, mini_catalog):
        table = mini_catalog.relation("interpro.entry")
        assert table.schema.name == "entry"
        with pytest.raises(UnknownRelationError):
            mini_catalog.relation("nope.entry")
        with pytest.raises(UnknownRelationError):
            mini_catalog.relation("not_qualified")

    def test_statistics(self, mini_catalog):
        assert mini_catalog.source_count == 2
        assert mini_catalog.relation_count == 5
        assert mini_catalog.attribute_count == 10
        assert len(mini_catalog.all_tables()) == 5
        assert len(mini_catalog.all_foreign_keys()) == 3

    def test_remove_source(self, mini_catalog):
        removed = mini_catalog.remove_source("go")
        assert removed.name == "go"
        assert not mini_catalog.has_source("go")
        with pytest.raises(SchemaError):
            mini_catalog.remove_source("go")

    def test_container_protocols(self, mini_catalog):
        assert "go" in mini_catalog
        assert "nope" not in mini_catalog
        assert len(mini_catalog) == 2
        assert {s.name for s in mini_catalog} == {"go", "interpro"}
