"""Edge cases of the ranked disjoint union and the incremental view refresh."""

from __future__ import annotations

import pytest

from repro.core import QSystem, QSystemConfig, RankedView
from repro.datastore import Catalog, DataSource
from repro.datastore.executor import QueryExecutor
from repro.datastore.query import ConjunctiveQuery
from repro.graph import QueryGraphBuilder, SearchGraph


def term_query(cost: float, provenance: str) -> ConjunctiveQuery:
    query = ConjunctiveQuery(cost=cost, provenance=provenance)
    query.add_atom("go.term", "t")
    query.add_output("t", "acc", "acc")
    query.add_output("t", "name", "name")
    return query


class TestUnionColumnAlignment:
    def test_conflicting_labels_within_one_query_stay_distinct(self, mini_catalog):
        # Two outputs of ONE query whose labels are compatible with each
        # other must not collapse onto the same unified column.
        query = ConjunctiveQuery(cost=1.0, provenance="q")
        query.add_atom("interpro.entry", "e")
        query.add_output("e", "name", "name")
        query.add_output("e", "entry_ac", "e.name")  # compatible with "name"
        answers = QueryExecutor(mini_catalog).execute_union([query])
        columns = set(answers[0].values.keys())
        assert columns == {"name", "e.name"}
        for answer in answers:
            assert answer["name"] != answer["e.name"]

    def test_compatible_labels_across_queries_share_a_column(self, mini_catalog):
        cheap = ConjunctiveQuery(cost=1.0, provenance="a")
        cheap.add_atom("go.term", "t")
        cheap.add_output("t", "name", "name")
        expensive = ConjunctiveQuery(cost=2.0, provenance="b")
        expensive.add_atom("interpro.entry", "e")
        expensive.add_output("e", "name", "e.name")  # trailing name matches
        answers = QueryExecutor(mini_catalog).execute_union([expensive, cheap])
        columns = set(answers[0].values.keys())
        assert columns == {"name"}
        assert all(a.values["name"] is not None for a in answers)

    def test_empty_sub_results_still_contribute_columns(self, mini_catalog):
        # A query with no matching rows must not derail the unified schema.
        empty = ConjunctiveQuery(cost=0.5, provenance="empty")
        empty.add_atom("go.term", "t")
        empty.add_selection("t", "acc", "GO:9999", mode="equals")
        empty.add_output("t", "acc", "missing_acc")
        full = term_query(1.0, "full")
        answers = QueryExecutor(mini_catalog).execute_union([empty, full])
        assert len(answers) == 3  # only the full query produced tuples
        # The empty query's column is part of the unified schema, padded.
        assert all("missing_acc" in a.values for a in answers)
        assert all(a["missing_acc"] is None for a in answers)

    def test_all_sub_results_empty(self, mini_catalog):
        empty = ConjunctiveQuery(cost=0.5, provenance="empty")
        empty.add_atom("go.term", "t")
        empty.add_selection("t", "acc", "GO:9999", mode="equals")
        assert QueryExecutor(mini_catalog).execute_union([empty]) == []

    def test_no_queries(self, mini_catalog):
        assert QueryExecutor(mini_catalog).execute_union([]) == []

    def test_limit_keeps_cheapest_answers(self, mini_catalog):
        cheap = term_query(1.0, "cheap")
        expensive = term_query(9.0, "expensive")
        answers = QueryExecutor(mini_catalog).execute_union([expensive, cheap], limit=3)
        assert len(answers) == 3
        assert all(a.cost == 1.0 for a in answers)
        assert all(a.provenance.query_id == "cheap" for a in answers)

    def test_limit_zero(self, mini_catalog):
        assert QueryExecutor(mini_catalog).execute_union([term_query(1.0, "q")], limit=0) == []

    def test_disjoint_union_pads_with_none(self, mini_catalog):
        terms = term_query(1.0, "terms")
        pubs = ConjunctiveQuery(cost=2.0, provenance="pubs")
        pubs.add_atom("interpro.pub", "p")
        pubs.add_output("p", "title", "title")
        answers = QueryExecutor(mini_catalog).execute_union([terms, pubs])
        columns = {"acc", "name", "title"}
        for answer in answers:
            assert set(answer.values.keys()) == columns
            if answer.provenance.query_id == "terms":
                assert answer["title"] is None
            else:
                assert answer["acc"] is None and answer["name"] is None


def _mini_system():
    go = DataSource.build(
        "go",
        {"term": ["acc", "name"]},
        data={
            "term": [
                {"acc": "GO:0001", "name": "plasma membrane"},
                {"acc": "GO:0002", "name": "nucleus"},
            ]
        },
    )
    interpro = DataSource.build(
        "interpro",
        {"interpro2go": ["go_id", "entry_ac"]},
        data={
            "interpro2go": [
                {"go_id": "GO:0001", "entry_ac": "IPR001"},
                {"go_id": "GO:0002", "entry_ac": "IPR002"},
            ]
        },
    )
    return QSystem(sources=[go, interpro])


class TestIncrementalRefresh:
    def _view(self) -> RankedView:
        system = _mini_system()
        system.graph.add_association("go.term", "acc", "interpro.interpro2go", "go_id", {"mad": 0.9})
        view = system.create_view(["membrane", "IPR001"])
        return view

    def test_refresh_reuses_unchanged_trees(self):
        view = self._view()
        first = view.last_refresh
        assert first.queries_executed >= 1
        state_before = view.state.answers
        second_state = view.refresh()
        second = view.last_refresh
        # Nothing changed: the solver is skipped and every query is reused.
        assert second.solver_runs == 0
        assert second.queries_executed == 0
        assert second.queries_reused == len(second_state.queries)
        assert [a.values for a in second_state.answers] == [a.values for a in state_before]

    def test_weight_change_resolves_but_reuses_answers(self):
        view = self._view()
        graph = view.query_graph.graph
        # Nudge a learnable edge cost: trees must be re-solved, but the
        # joined tuples are unchanged so cached answers are replayed.
        from repro.graph.features import edge_feature

        edge = next(iter(graph.association_edges()))
        graph.weights.set(edge_feature(edge.edge_id), 0.25)
        state = view.refresh()
        stats = view.last_refresh
        assert stats.solver_runs == 1
        assert stats.queries_executed == 0
        assert stats.queries_reused == len(state.queries)
        # Costs were re-stamped onto the reused answers.
        for answer in state.answers:
            assert answer.provenance.query_cost == answer.cost

    def test_table_mutation_forces_re_execution(self):
        view = self._view()
        view.catalog.relation("go.term").append({"acc": "GO:0003", "name": "membrane transport"})
        view.refresh()
        stats = view.last_refresh
        assert stats.queries_executed >= 1

    def test_invalidate_cache_forces_solver_and_execution(self):
        view = self._view()
        view.invalidate_cache()
        state = view.refresh()
        stats = view.last_refresh
        assert stats.solver_runs == 1
        assert stats.queries_executed == len(state.queries)

    def test_learning_hook_notifies_views(self):
        system = _mini_system()
        system.graph.add_association("go.term", "acc", "interpro.interpro2go", "go_id", {"mad": 0.9})
        view = system.create_view(["membrane", "IPR001"])
        assert view.state.answers, "view should produce answers"
        answer = view.state.answers[0]
        system.give_feedback(view, answer)
        # The learner ran and the views were refreshed through the hook path.
        assert system.feedback_log.events
        assert view.last_refresh.solver_runs == 1

    def test_registration_invalidates_view_caches(self):
        system = _mini_system()
        system.graph.add_association("go.term", "acc", "interpro.interpro2go", "go_id", {"mad": 0.9})
        view = system.create_view(["membrane", "IPR001"])
        generation = system.engine_context.generation
        new_source = DataSource.build(
            "extra",
            {"facts": ["go_acc", "note"]},
            data={"facts": [{"go_acc": "GO:0001", "note": "liver"}]},
        )
        system.register_source(new_source, strategy="exhaustive")
        assert system.engine_context.generation > generation
        # The refresh after registration re-executed (caches were dropped).
        assert view.last_refresh.queries_executed == len(view.state.queries)

    def test_replaced_source_with_coinciding_version_not_served_stale(self):
        # remove_source + add_source under the same name creates new Table
        # objects whose version counters can coincide with the old ones';
        # identity (not just version) must gate answer-cache reuse.
        view = self._view()
        old = [a.values for a in view.state.answers]
        assert old, "view should have answers"
        catalog = view.catalog
        replacement = DataSource.build(
            "go",
            {"term": ["acc", "name"]},
            data={
                "term": [
                    {"acc": "GO:0001", "name": "plasma membrane EDITED"},
                    {"acc": "GO:0002", "name": "nucleus EDITED"},
                ]
            },
        )
        catalog.remove_source("go")
        catalog.add_source(replacement)
        state = view.refresh()
        # The cache must miss (tables were replaced) and the re-executed
        # queries must not resurface the old table's tuples: the view's
        # selection predicate ("plasma membrane", from the old value node)
        # no longer matches anything in the replacement data.
        assert view.last_refresh.queries_reused == 0
        assert view.last_refresh.queries_executed >= 1
        names = {a.values.get("name") for a in state.answers}
        assert "plasma membrane" not in names

    def test_refresh_answers_match_seed_union_semantics(self):
        # The incremental path (cache + ranked_union) must equal a from-
        # scratch union of the same queries through the reference executor.
        view = self._view()
        view.refresh()
        reference = QueryExecutor(view.catalog, use_engine=False)
        expected = reference.execute_union(
            [g.query for g in view.state.queries], limit=view.answer_limit
        )
        got = view.state.answers
        assert [(a.values, a.cost) for a in got] == [(a.values, a.cost) for a in expected]
