"""Typed requests, enums, registries, view registry and pagination."""

from __future__ import annotations

import pytest

from repro.api import (
    AlignerSpec,
    AlignmentStrategy,
    AnswerPage,
    InvalidRequestError,
    QueryRequest,
    UnknownMatcherError,
    UnknownStrategyError,
    UnknownViewError,
    available_strategies,
    build_aligner,
    paginate,
)
from repro.api.views import ViewRegistry
from repro.datastore.provenance import AnswerTuple
from repro.exceptions import QError, RegistrationError
from repro.matching import MetadataMatcher, available_matchers, resolve_matcher


class TestAlignmentStrategy:
    def test_values_match_historical_strings(self):
        assert {s.value for s in AlignmentStrategy} == {
            "exhaustive",
            "view_based",
            "preferential",
            "profile_blocked",
        }

    def test_coerce_accepts_members_strings_and_case(self):
        assert AlignmentStrategy.coerce(AlignmentStrategy.EXHAUSTIVE) is AlignmentStrategy.EXHAUSTIVE
        assert AlignmentStrategy.coerce("view_based") is AlignmentStrategy.VIEW_BASED
        assert AlignmentStrategy.coerce("PREFERENTIAL") is AlignmentStrategy.PREFERENTIAL

    def test_unknown_strategy_lists_valid_options(self):
        with pytest.raises(UnknownStrategyError) as excinfo:
            AlignmentStrategy.coerce("nope")
        message = str(excinfo.value)
        for valid in available_strategies():
            assert valid in message
        # Typed errors stay catchable through the library-wide base class.
        assert isinstance(excinfo.value, QError)

    def test_build_aligner_dispatches(self):
        spec = AlignerSpec(matcher=MetadataMatcher(), top_y=2)
        aligner = build_aligner("exhaustive", spec)
        assert aligner.strategy_name == "exhaustive"

    def test_view_based_without_view_raises_registration_error(self):
        spec = AlignerSpec(matcher=MetadataMatcher())
        with pytest.raises(RegistrationError):
            build_aligner(AlignmentStrategy.VIEW_BASED, spec)


class TestMatcherRegistry:
    def test_builtins_registered_under_canonical_names(self):
        names = available_matchers()
        assert "metadata" in names
        assert "mad" in names
        assert "value_overlap" in names

    def test_resolve_by_name_builds_fresh_instance(self):
        a = resolve_matcher("metadata")
        b = resolve_matcher("metadata")
        assert isinstance(a, MetadataMatcher)
        assert a is not b  # comparison counters must not be shared

    def test_resolve_passes_instances_through(self):
        matcher = MetadataMatcher()
        assert resolve_matcher(matcher) is matcher

    def test_unknown_matcher_lists_valid_options(self):
        with pytest.raises(UnknownMatcherError) as excinfo:
            resolve_matcher("coma_plus_plus")
        message = str(excinfo.value)
        assert "metadata" in message and "mad" in message


class TestQueryRequest:
    def test_keywords_normalized_to_tuple(self):
        request = QueryRequest(keywords=["a", "b"])
        assert request.keywords == ("a", "b")

    def test_frozen(self):
        request = QueryRequest(keywords=("a",))
        with pytest.raises(AttributeError):
            request.k = 7


class _FakeView:
    """Just enough of a RankedView for registry bookkeeping tests."""

    def __init__(self, keywords):
        self.keywords = list(keywords)


class TestViewRegistry:
    def test_stable_ids_and_creation_order(self):
        registry = ViewRegistry()
        first = registry.add(_FakeView(["a"]), "a")
        second = registry.add(_FakeView(["b"]), "b")
        assert first.view_id == "view-0001"
        assert second.view_id == "view-0002"
        assert [r.view_id for r in registry.records()] == ["view-0001", "view-0002"]
        assert registry.latest() is second

    def test_latest_survives_name_reuse(self):
        # The seed's reversed-dict hack returned the *re-inserted* name's
        # view as "latest" even when a newer view existed under another
        # name; explicit creation order does not.
        registry = ViewRegistry()
        registry.add(_FakeView(["a"]), "shared name")
        newer = registry.add(_FakeView(["b"]), "b")
        replacement = registry.add(_FakeView(["a2"]), "shared name")
        assert registry.latest() is replacement  # created last, genuinely latest
        assert registry.get("shared name") is replacement
        assert registry.get("view-0002") is newer  # unshadowed record keeps its id

    def test_name_reuse_evicts_the_shadowed_record(self):
        # Seed dict semantics: views[name] = view REPLACED the old view.
        # The registry must not leak shadowed records (mutation paths
        # iterate all records), and evicted ids are never reused.
        registry = ViewRegistry()
        registry.add(_FakeView(["a"]), "shared name")
        registry.add(_FakeView(["a2"]), "shared name")
        assert len(registry) == 1
        with pytest.raises(UnknownViewError):
            registry.get("view-0001")  # the shadowed record is gone
        third = registry.add(_FakeView(["c"]), "c")
        assert third.view_id == "view-0003"  # ids stay unique after eviction

    def test_resolution_by_id_name_and_instance(self):
        registry = ViewRegistry()
        view = _FakeView(["a"])
        record = registry.add(view, "my view")
        assert registry.get("view-0001") is record
        assert registry.get("my view") is record
        assert registry.resolve(view) is record
        assert "view-0001" in registry and "my view" in registry

    def test_unknown_view_lists_known_references(self):
        registry = ViewRegistry()
        registry.add(_FakeView(["a"]), "known")
        with pytest.raises(UnknownViewError) as excinfo:
            registry.get("missing")
        assert "known" in str(excinfo.value)
        assert "view-0001" in str(excinfo.value)

    def test_latest_on_empty_registry(self):
        assert ViewRegistry().latest() is None


def _answer(i: int) -> AnswerTuple:
    return AnswerTuple(values={"n": i}, cost=float(i))


class TestPagination:
    def test_pages_and_exact_has_more(self):
        pages = list(paginate([_answer(i) for i in range(5)], "view-0001", page_size=2))
        assert [len(p) for p in pages] == [2, 2, 1]
        assert [p.has_more for p in pages] == [True, True, False]
        assert [p.index for p in pages] == [0, 1, 2]
        assert all(p.view_id == "view-0001" for p in pages)

    def test_exactly_full_final_page_reports_no_more(self):
        pages = list(paginate([_answer(i) for i in range(4)], "v", page_size=2))
        assert [len(p) for p in pages] == [2, 2]
        assert [p.has_more for p in pages] == [True, False]

    def test_empty_stream_yields_no_pages(self):
        assert list(paginate([], "v", page_size=3)) == []

    def test_limit_truncates(self):
        pages = list(paginate((_answer(i) for i in range(10)), "v", page_size=4, limit=5))
        assert sum(len(p) for p in pages) == 5

    def test_invalid_page_size_raises_eagerly(self):
        # At call time — not deferred to the first next() of the generator.
        with pytest.raises(InvalidRequestError):
            paginate([], "v", page_size=0)
        with pytest.raises(InvalidRequestError):
            paginate([], "v", page_size=3, limit=-1)

    def test_pagination_is_lazy(self):
        pulled = []

        def stream():
            for i in range(100):
                pulled.append(i)
                yield _answer(i)

        pages = paginate(stream(), "v", page_size=3)
        first = next(pages)
        assert len(first) == 3 and first.has_more
        # Only one answer of lookahead beyond the first page was consumed.
        assert len(pulled) == 4

    def test_answer_page_is_frozen(self):
        (page,) = list(paginate([_answer(1)], "v", page_size=1))
        assert isinstance(page, AnswerPage)
        with pytest.raises(AttributeError):
            page.index = 9
