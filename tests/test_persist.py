"""Durable sessions: save/open round trips, journaling, and replay parity.

The acceptance gate of :mod:`repro.persist`: a session saved after the
fig6-style replay (registration + feedback + views) must reopen from disk
with **byte-identical** answers, provenance and correspondence edges on both
storage backends — and reopening must be deterministic *without* the
hand-reset of the process-global edge-id counter the storage parity tests
need for independently built sessions.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    FeedbackRequest,
    QService,
    QueryRequest,
    RegisterSourceRequest,
    ServiceConfig,
    SnapshotError,
)
from repro.datastore import DataSource
from repro.datastore.csvio import source_from_dict, source_to_dict
from repro.matching import MetadataMatcher, ValueOverlapMatcher

BACKEND_SPECS = ("memory", "sqlite")


def clone_source(source: DataSource) -> DataSource:
    return source_from_dict(source_to_dict(source))


def mini_sources():
    go = DataSource.build(
        "go",
        {"term": ["acc", "name"]},
        data={
            "term": [
                ("GO:0001", "plasma membrane"),
                ("GO:0002", "nucleus"),
                (" GO:0003 ", "plasma membrane transport"),
                (None, "orphan"),
            ]
        },
    )
    interpro = DataSource.build(
        "interpro",
        {"interpro2go": ["go_id", "entry_ac"]},
        data={
            "interpro2go": [
                ("GO:0001", "IPR001"),
                ("GO:0003", "IPR003"),
                ("GO:0002", "IPR002"),
                ("GO:0001", "IPR004"),
            ]
        },
    )
    return [go, interpro]


def answer_fingerprint(answers):
    """Everything observable about a ranked answer list, order included."""
    result = []
    for answer in answers:
        provenance = answer.provenance
        result.append(
            (
                tuple(answer.values.items()),
                answer.cost,
                None
                if provenance is None
                else (
                    provenance.query_id,
                    provenance.query_cost,
                    tuple(sorted(provenance.base_tuples)),
                ),
            )
        )
    return result


def graph_fingerprint(graph):
    """Edges (ids, kinds, features, metadata) + weights, order included."""
    return (
        [
            (e.edge_id, e.kind.value, dict(e.features.items()), repr(e.metadata))
            for e in graph.edges()
        ],
        [n.node_id for n in graph.nodes()],
        graph.weights.as_dict(),
        graph.weights.version,
        graph.structure_version,
    )


def read(service, view_ref):
    return answer_fingerprint(
        list(service.stream_answers(QueryRequest(view=view_ref)))
    )


def session_location(kind, tmp_path):
    """Backend spec + save/open location for one parameterized round trip."""
    if kind == "sqlite":
        db = tmp_path / "session.db"
        return f"sqlite:{db}", None, db
    path = tmp_path / "session.json"
    return None, path, path


def build_session(kind, tmp_path, sources=None):
    backend, save_path, location = session_location(kind, tmp_path)
    service = QService(
        sources=sources if sources is not None else mini_sources(),
        matchers=[ValueOverlapMatcher(min_confidence=0.3, min_shared_values=2)],
        config=ServiceConfig(top_k=5, top_y=1),
        backend=backend,
    )
    return service, save_path, location


# ----------------------------------------------------------------------
# Round-trip parity (the replay acceptance gate)
# ----------------------------------------------------------------------
class TestRoundTripParity:
    @pytest.mark.parametrize("kind", BACKEND_SPECS)
    def test_full_session_replay_parity(self, kind, tmp_path):
        """Registration + feedback + views survive close/reopen byte-identically."""
        sources = mini_sources()
        service, save_path, location = build_session(
            kind, tmp_path, sources=[sources[0]]
        )
        service.bootstrap_alignments()
        info = service.create_view(QueryRequest(keywords=("plasma", "IPR001")))
        service.register_source(
            RegisterSourceRequest(source=sources[1], strategy="exhaustive")
        )
        answers = list(service.stream_answers(QueryRequest(view=info.view_id)))
        assert answers, "workload produced no answers — parity would be vacuous"
        service.feedback(FeedbackRequest(view=info.view_id, answer=answers[0]))
        live = read(service, info.view_id)
        live_graph = graph_fingerprint(service.graph)
        service.save(save_path)
        service.close()

        reopened = QService.open(location)
        assert read(reopened, info.view_id) == live
        assert graph_fingerprint(reopened.graph) == live_graph
        stats = reopened.stats()
        assert stats.snapshot_version == 1
        assert stats.registrations == 1
        assert stats.feedback_events == 1
        assert stats.sources == 2
        reopened.close()

    @pytest.mark.parametrize("kind", BACKEND_SPECS)
    def test_reopen_is_deterministic_without_counter_reset(self, kind, tmp_path):
        """Two opens of one file answer a *new* query identically.

        The snapshot carries the process-global edge-id counter, so each
        open restarts id allocation at the saved position — no by-hand
        ``edges._edge_counter`` reset required for replay parity.
        """
        service, save_path, location = build_session(kind, tmp_path)
        service.bootstrap_alignments()
        service.create_view(QueryRequest(keywords=("plasma", "IPR001")))
        service.save(save_path)
        service.close()

        first = QService.open(location)
        first_new = answer_fingerprint(
            list(first.stream_answers(QueryRequest(keywords=("membrane", "IPR003"))))
        )
        first_trees = [
            (t.cost, tuple(sorted(t.edge_ids)))
            for t in first.views.latest().view.state.trees
        ]
        first.close()
        second = QService.open(location)
        second_new = answer_fingerprint(
            list(second.stream_answers(QueryRequest(keywords=("membrane", "IPR003"))))
        )
        second_trees = [
            (t.cost, tuple(sorted(t.edge_ids)))
            for t in second.views.latest().view.state.trees
        ]
        second.close()
        assert first_new == second_new
        assert first_trees == second_trees
        assert first_trees, "new query solved no trees — determinism check vacuous"

    def test_restored_view_ids_continue_sequence(self, tmp_path):
        service, save_path, _ = build_session("memory", tmp_path)
        service.bootstrap_alignments()
        info = service.create_view(QueryRequest(keywords=("plasma", "IPR001")))
        assert info.view_id == "view-0001"
        service.save(save_path)

        reopened = QService.open(save_path)
        restored = reopened.view_info(info.view_id)
        assert restored.view_id == "view-0001"
        assert restored.keywords == ("plasma", "IPR001")
        next_info = reopened.create_view(QueryRequest(keywords=("nucleus", "IPR002")))
        assert next_info.view_id == "view-0002"

    def test_stale_view_rebuilds_identically_on_both_sides(self, tmp_path):
        """A view left stale at save time rebuilds on read — same on reopen."""
        sources = mini_sources()
        service, save_path, _ = build_session("memory", tmp_path, sources=[sources[0]])
        service.bootstrap_alignments()
        info = service.create_view(QueryRequest(keywords=("plasma", "IPR001")))
        # Structural mutation *after* the view's last sync, then save without
        # reading: the view is stale in the snapshot.
        service.register_source(
            RegisterSourceRequest(source=sources[1], strategy="exhaustive")
        )
        service.save(save_path)

        live = read(service, info.view_id)  # live rebuilds, consuming edge ids
        # Opening restores the edge-id counter to the saved position, so the
        # restored rebuild allocates exactly the ids the live rebuild did.
        reopened = QService.open(save_path)
        restored = read(reopened, info.view_id)
        assert restored == live
        assert live, "stale-view rebuild produced no answers — check workload"


# ----------------------------------------------------------------------
# fig6 / fig8 replay acceptance: the full workloads survive a round trip
# ----------------------------------------------------------------------
class TestReplayAcceptance:
    @pytest.mark.parametrize("kind", BACKEND_SPECS)
    def test_fig6_replay_round_trip(self, gbco_dataset, kind, tmp_path):
        """Registration + feedback + views on the GBCO fig6 workload."""
        trial = list(gbco_dataset.query_log)[0]
        excluded = {relation.split(".")[0] for relation in trial.new_relations}
        backend, save_path, location = session_location(kind, tmp_path)
        service = QService(
            sources=[
                clone_source(source)
                for source in gbco_dataset.catalog
                if source.name not in excluded
            ],
            matchers=[ValueOverlapMatcher(min_confidence=0.6, min_shared_values=5)],
            config=ServiceConfig(top_k=5, top_y=1),
            backend=backend,
        )
        service.bootstrap_alignments()
        info = service.create_view(QueryRequest(keywords=tuple(trial.keywords)))
        for relation in trial.new_relations:
            source_name = relation.split(".")[0]
            service.register_source(
                RegisterSourceRequest(
                    source=clone_source(gbco_dataset.catalog.source(source_name)),
                    strategy="view_based",
                    matcher=MetadataMatcher(),
                )
            )
        answers = list(service.stream_answers(QueryRequest(view=info.view_id)))
        assert answers, "fig6 replay produced no answers — parity would be vacuous"
        service.feedback(FeedbackRequest(view=info.view_id, answer=answers[0]))
        live = read(service, info.view_id)
        live_graph = graph_fingerprint(service.graph)
        service.save(save_path)
        service.close()

        reopened = QService.open(location)
        # Byte-identical answers, provenance and correspondence edges.
        assert read(reopened, info.view_id) == live
        assert graph_fingerprint(reopened.graph) == live_graph
        profiles = reopened.profile_index
        assert profiles.export_state() == service.profile_index.export_state()
        reopened.close()

    def test_fig8_grown_catalog_round_trip(self, tmp_path):
        """A fig8-style grown catalog (synthetic sources wired directly into
        catalog + graph, bypassing the service API) is still captured by the
        shadow-diff save and restored byte-identically."""
        from repro.datasets import build_gbco, grow_catalog_and_graph

        gbco = build_gbco(rows_per_relation=10)
        trial = list(gbco.query_log)[0]
        excluded = {relation.split(".")[0] for relation in trial.new_relations}
        service = QService(
            sources=[
                clone_source(source)
                for source in gbco.catalog
                if source.name not in excluded
            ],
            matchers=[ValueOverlapMatcher(min_confidence=0.6, min_shared_values=5)],
            config=ServiceConfig(top_k=5, top_y=1),
        )
        service.bootstrap_alignments()
        grow_catalog_and_graph(
            service.catalog, service.graph, target_source_count=30, seed=30
        )
        info = service.create_view(QueryRequest(keywords=tuple(trial.keywords)))
        live = read(service, info.view_id)
        assert live, "fig8 replay produced no answers — parity would be vacuous"
        service.save(tmp_path / "fig8.json")

        reopened = QService.open(tmp_path / "fig8.json")
        assert reopened.catalog.source_count == 30
        assert read(reopened, info.view_id) == live
        assert graph_fingerprint(reopened.graph) == graph_fingerprint(service.graph)


# ----------------------------------------------------------------------
# Journal behavior: incremental saves, compaction, expressiveness limits
# ----------------------------------------------------------------------
class TestJournal:
    @pytest.mark.parametrize("kind", BACKEND_SPECS)
    def test_second_save_appends_then_replays(self, kind, tmp_path):
        service, save_path, location = build_session(kind, tmp_path)
        service.bootstrap_alignments()
        info = service.create_view(QueryRequest(keywords=("plasma", "IPR001")))
        first = service.save(save_path)
        assert first.action == "snapshot" and first.snapshot_version == 1

        answers = list(service.stream_answers(QueryRequest(view=info.view_id)))
        service.feedback(FeedbackRequest(view=info.view_id, answer=answers[0]))
        live = read(service, info.view_id)
        second = service.save()
        assert second.action == "append"
        assert second.snapshot_version == 1
        assert second.journal_entries == 1
        service.close()

        reopened = QService.open(location)
        assert read(reopened, info.view_id) == live
        assert reopened.stats().journal_entries == 1
        reopened.close()

    def test_noop_save_reports_noop(self, tmp_path):
        service, save_path, _ = build_session("memory", tmp_path)
        service.save(save_path)
        report = service.save()
        assert report.action == "noop"
        assert report.journal_entries == 0

    def test_compaction_folds_journal_into_snapshot(self, tmp_path):
        service, save_path, _ = build_session("memory", tmp_path)
        service.config.journal_compact_after = 2
        service.bootstrap_alignments()
        info = service.create_view(QueryRequest(keywords=("plasma", "IPR001")))
        service.save(save_path)
        actions = []
        for _ in range(3):
            answers = list(service.stream_answers(QueryRequest(view=info.view_id)))
            service.feedback(FeedbackRequest(view=info.view_id, answer=answers[0]))
            actions.append(service.save())
        assert [r.action for r in actions] == ["append", "append", "snapshot"]
        assert actions[-1].compacted
        assert actions[-1].snapshot_version == 2
        assert actions[-1].journal_entries == 0
        live = read(service, info.view_id)
        reopened = QService.open(save_path)
        assert read(reopened, info.view_id) == live
        assert reopened.stats().snapshot_version == 2

    def test_explicit_compact_flag(self, tmp_path):
        service, save_path, _ = build_session("memory", tmp_path)
        service.save(save_path)
        service.create_view(QueryRequest(keywords=("plasma", "IPR001")))
        report = service.save(compact=True)
        assert report.action == "snapshot" and report.compacted

    def test_row_mutation_forces_snapshot_on_sidecar_store(self, tmp_path):
        """Appended rows of an existing relation cannot ride in a delta when
        the store holds no row data — the save must compact instead."""
        service, save_path, _ = build_session("memory", tmp_path)
        service.save(save_path)
        service.catalog.relation("go.term").append(("GO:0009", "golgi apparatus"))
        report = service.save()
        assert report.action == "snapshot" and report.compacted
        reopened = QService.open(save_path)
        assert len(reopened.catalog.relation("go.term")) == 5

    def test_remove_source_is_journaled(self, tmp_path):
        sources = mini_sources()
        service, save_path, _ = build_session("memory", tmp_path, sources=sources)
        service.bootstrap_alignments()
        service.save(save_path)
        service.remove_source("interpro")
        report = service.save()
        assert report.action == "append"
        reopened = QService.open(save_path)
        assert set(reopened.catalog.source_names()) == {"go"}
        assert not any(
            (node.relation or "").startswith("interpro.")
            for node in reopened.graph.nodes()
        )
        assert not reopened.profile_index.has_relation("interpro.interpro2go")

    def test_registration_after_snapshot_is_journaled(self, tmp_path):
        sources = mini_sources()
        service, save_path, _ = build_session("memory", tmp_path, sources=[sources[0]])
        service.bootstrap_alignments()
        service.save(save_path)
        service.register_source(
            RegisterSourceRequest(source=sources[1], strategy="exhaustive")
        )
        report = service.save()
        assert report.action == "append"
        live_graph = graph_fingerprint(service.graph)
        reopened = QService.open(save_path)
        assert graph_fingerprint(reopened.graph) == live_graph
        assert set(reopened.catalog.source_names()) == {"go", "interpro"}
        assert reopened.profile_index.has_relation("interpro.interpro2go")
        # The journal carried the rows (sidecar stores hold no row data).
        assert len(reopened.catalog.relation("interpro.interpro2go")) == 4


# ----------------------------------------------------------------------
# Autosave and close semantics
# ----------------------------------------------------------------------
class TestAutosaveAndClose:
    def test_autosave_path_checkpoints_every_mutation(self, tmp_path):
        path = tmp_path / "auto.json"
        service = QService(
            sources=mini_sources(),
            matchers=[ValueOverlapMatcher(min_confidence=0.3, min_shared_values=2)],
            autosave=path,
        )
        service.bootstrap_alignments()
        assert path.exists(), "autosave did not write on first mutation"
        info = service.create_view(QueryRequest(keywords=("plasma", "IPR001")))
        live = read(service, info.view_id)
        # No explicit save: the checkpoint happened inside create_view.
        reopened = QService.open(path)
        assert read(reopened, info.view_id) == live

    def test_autosave_true_requires_session_capable_backend(self, tmp_path):
        db = tmp_path / "auto.db"
        service = QService(
            sources=mini_sources(), backend=f"sqlite:{db}", autosave=True
        )
        service.bootstrap_alignments()
        assert service.stats().snapshot_version == 1
        service.close()
        reopened = QService.open(db)
        assert reopened.stats().sources == 2
        reopened.close()

        # Rejected at construction (not after a mutation already applied):
        # autosave=True has nowhere to write on a memory-backed catalog.
        with pytest.raises(SnapshotError):
            QService(sources=mini_sources(), backend="memory", autosave=True)

    def test_close_flushes_pending_changes(self, tmp_path):
        db = tmp_path / "session.db"
        service = QService(
            sources=mini_sources(),
            matchers=[ValueOverlapMatcher(min_confidence=0.3, min_shared_values=2)],
            backend=f"sqlite:{db}",
        )
        service.bootstrap_alignments()
        service.save()
        info = service.create_view(QueryRequest(keywords=("plasma", "IPR001")))
        live = read(service, info.view_id)
        service.close()  # must flush the unsaved view
        reopened = QService.open(db)
        assert read(reopened, info.view_id) == live
        reopened.close()

    def test_unsaved_session_closes_without_persisting(self, tmp_path):
        db = tmp_path / "session.db"
        service = QService(sources=mini_sources(), backend=f"sqlite:{db}")
        service.create_view(QueryRequest(keywords=("plasma", "IPR001")))
        service.close()  # never saved: pre-persistence behavior
        with pytest.raises(SnapshotError):
            QService.open(db)

    def test_close_is_idempotent_after_save(self, tmp_path):
        db = tmp_path / "session.db"
        service = QService(sources=mini_sources(), backend=f"sqlite:{db}")
        service.save()
        service.close()
        service.close()  # must not raise on the closed connection

    def test_failed_open_leaves_catalog_database_untouched(self, tmp_path):
        """Opening a catalog-only database must not create session tables."""
        import sqlite3

        db = tmp_path / "catalog-only.db"
        service = QService(sources=mini_sources(), backend=f"sqlite:{db}")
        service.close()  # rows persisted, but no session ever saved
        with pytest.raises(SnapshotError):
            QService.open(db)
        with sqlite3.connect(db) as conn:
            names = {
                name
                for (name,) in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
        assert not any(name.startswith("_repro_session") for name in names)

    def test_stale_journal_from_interrupted_compaction_is_discarded(self, tmp_path):
        """Crash-consistency: a sidecar journal left over from before a
        compaction (snapshot replaced, truncate lost) must not replay."""
        service, save_path, _ = build_session("memory", tmp_path)
        service.bootstrap_alignments()
        info = service.create_view(QueryRequest(keywords=("plasma", "IPR001")))
        service.save(save_path)
        answers = list(service.stream_answers(QueryRequest(view=info.view_id)))
        service.feedback(FeedbackRequest(view=info.view_id, answer=answers[0]))
        live = read(service, info.view_id)
        service.save()  # one journal entry after snapshot v1
        journal = save_path.parent / (save_path.name + ".journal")
        stale = journal.read_text()
        service.save(compact=True)  # snapshot v2, journal truncated
        journal.write_text(stale)  # simulate the lost truncation
        reopened = QService.open(save_path)
        assert reopened.stats().snapshot_version == 2
        assert read(reopened, info.view_id) == live


# ----------------------------------------------------------------------
# Error surface
# ----------------------------------------------------------------------
class TestErrors:
    def test_memory_save_without_path(self):
        service = QService(sources=mini_sources(), backend="memory")
        with pytest.raises(SnapshotError):
            service.save()

    def test_save_cannot_be_retargeted(self, tmp_path):
        service, save_path, _ = build_session("memory", tmp_path)
        service.save(save_path)
        with pytest.raises(SnapshotError):
            service.save(tmp_path / "elsewhere.json")

    def test_open_missing_location(self, tmp_path):
        with pytest.raises(SnapshotError):
            QService.open(tmp_path / "never-written.json")
        with pytest.raises(SnapshotError):
            QService.open()

    def test_open_database_without_session(self, tmp_path):
        db = tmp_path / "bare.db"
        service = QService(sources=mini_sources(), backend=f"sqlite:{db}")
        service.close()
        with pytest.raises(SnapshotError):
            QService.open(db)

    def test_matchers_override_on_open(self, tmp_path):
        service, save_path, _ = build_session("memory", tmp_path)
        service.save(save_path)
        reopened = QService.open(save_path, matchers=[MetadataMatcher()])
        assert isinstance(reopened.matchers[0], MetadataMatcher)
        # Default restore installs the standard stack.
        again = QService.open(save_path)
        assert len(again.matchers) == 2

    def test_config_survives_round_trip(self, tmp_path):
        config = ServiceConfig(top_k=3, top_y=1, answer_limit=17, default_page_size=4)
        config.graph.foreign_key_cost = 0.25
        service = QService(sources=mini_sources(), config=config)
        service.save(tmp_path / "s.json")
        reopened = QService.open(tmp_path / "s.json")
        assert reopened.config.top_k == 3
        assert reopened.config.answer_limit == 17
        assert reopened.config.default_page_size == 4
        assert reopened.config.graph.foreign_key_cost == 0.25
        assert reopened.graph.config.foreign_key_cost == 0.25

    def test_sidecar_contains_catalog_rows(self, tmp_path):
        """The sidecar file is self-contained: schema + rows + session."""
        service, save_path, _ = build_session("memory", tmp_path)
        service.save(save_path)
        document = json.loads(save_path.read_text())
        sources = document["body"]["catalog"]["sources"]
        assert {spec["name"] for spec in sources} == {"go", "interpro"}
        assert sources[0]["relations"]["term"]["rows"]
