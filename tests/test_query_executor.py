"""Unit tests for the conjunctive query model, the executor and SQL rendering."""

from __future__ import annotations

import pytest

from repro.datastore.executor import QueryExecutor
from repro.datastore.query import ConjunctiveQuery, SelectionPredicate
from repro.datastore.sqlgen import query_to_sql, union_to_sql
from repro.exceptions import QueryError


def make_join_query(cost: float = 1.0) -> ConjunctiveQuery:
    query = ConjunctiveQuery(cost=cost, provenance="q1")
    query.add_atom("go.term", "t")
    query.add_atom("interpro.interpro2go", "i2g")
    query.add_join("t", "acc", "i2g", "go_id")
    query.add_output("t", "name", "term_name")
    query.add_output("i2g", "entry_ac", "entry_ac")
    return query


class TestConjunctiveQuery:
    def test_duplicate_alias_rejected(self):
        query = ConjunctiveQuery()
        query.add_atom("go.term", "t")
        with pytest.raises(QueryError):
            query.add_atom("interpro.entry", "t")

    def test_unbound_alias_rejected(self):
        query = ConjunctiveQuery()
        query.add_atom("go.term", "t")
        with pytest.raises(QueryError):
            query.add_join("t", "acc", "missing", "go_id")
        with pytest.raises(QueryError):
            query.add_selection("missing", "acc", "GO:0001")
        with pytest.raises(QueryError):
            query.add_output("missing", "acc")

    def test_validate_empty_query(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery().validate()

    def test_invalid_selection_mode(self):
        with pytest.raises(QueryError):
            SelectionPredicate("t", "acc", "x", mode="regex")

    def test_introspection(self):
        query = make_join_query()
        assert query.relations() == ("go.term", "interpro.interpro2go")
        assert query.alias_map()["t"] == "go.term"
        assert query.output_labels() == ("term_name", "entry_ac")
        query.rename_output(0, "name")
        assert query.output_labels()[0] == "name"


class TestQueryExecutor:
    def test_simple_join(self, mini_catalog):
        executor = QueryExecutor(mini_catalog)
        answers = executor.execute(make_join_query())
        assert len(answers) == 2
        values = {(a["term_name"], a["entry_ac"]) for a in answers}
        assert ("plasma membrane", "IPR001") in values
        assert ("nucleus", "IPR002") in values

    def test_selection_keyword_mode(self, mini_catalog):
        query = make_join_query()
        query.add_selection("t", "name", "membrane")
        answers = QueryExecutor(mini_catalog).execute(query)
        assert len(answers) == 1
        assert answers[0]["term_name"] == "plasma membrane"

    def test_selection_equals_mode(self, mini_catalog):
        query = make_join_query()
        query.add_selection("t", "acc", "GO:0002", mode="equals")
        answers = QueryExecutor(mini_catalog).execute(query)
        assert len(answers) == 1
        assert answers[0]["entry_ac"] == "IPR002"

    def test_selection_contains_mode(self, mini_catalog):
        query = make_join_query()
        query.add_selection("t", "name", "MEMBRANE", mode="contains")
        answers = QueryExecutor(mini_catalog).execute(query)
        assert len(answers) == 1

    def test_three_way_join(self, mini_catalog):
        query = ConjunctiveQuery(cost=2.0, provenance="q3")
        query.add_atom("interpro.entry", "e")
        query.add_atom("interpro.entry2pub", "e2p")
        query.add_atom("interpro.pub", "p")
        query.add_join("e", "entry_ac", "e2p", "entry_ac")
        query.add_join("e2p", "pub_id", "p", "pub_id")
        query.add_output("e", "name", "entry_name")
        query.add_output("p", "title", "title")
        answers = QueryExecutor(mini_catalog).execute(query)
        assert {(a["entry_name"], a["title"]) for a in answers} == {
            ("Kinase domain", "Kinase domain structure"),
            ("Zinc finger", "Zinc finger review"),
        }

    def test_empty_join_produces_no_answers(self, mini_catalog):
        query = ConjunctiveQuery()
        query.add_atom("go.term", "t")
        query.add_atom("interpro.pub", "p")
        query.add_join("t", "name", "p", "title")  # no shared values
        assert QueryExecutor(mini_catalog).execute(query) == []

    def test_no_outputs_returns_all_columns(self, mini_catalog):
        query = ConjunctiveQuery()
        query.add_atom("go.term", "t")
        answers = QueryExecutor(mini_catalog).execute(query)
        assert len(answers) == 3
        assert "t.acc" in answers[0].values

    def test_limit(self, mini_catalog):
        query = ConjunctiveQuery()
        query.add_atom("go.term", "t")
        answers = QueryExecutor(mini_catalog).execute(query, limit=1)
        assert len(answers) == 1

    def test_provenance_attached(self, mini_catalog):
        answers = QueryExecutor(mini_catalog).execute(make_join_query(cost=3.5))
        provenance = answers[0].provenance
        assert provenance is not None
        assert provenance.query_id == "q1"
        assert provenance.query_cost == 3.5
        assert any(rel == "go.term" for rel, _ in provenance.base_tuples)
        assert provenance.involves_relation("go.term")
        assert answers[0].cost == 3.5

    def test_answer_key_stable(self, mini_catalog):
        answers_a = QueryExecutor(mini_catalog).execute(make_join_query())
        answers_b = QueryExecutor(mini_catalog).execute(make_join_query())
        assert {a.key() for a in answers_a} == {b.key() for b in answers_b}


class TestDisjointUnion:
    def test_union_aligns_compatible_columns(self, mini_catalog):
        cheap = make_join_query(cost=1.0)
        expensive = ConjunctiveQuery(cost=2.0, provenance="q2")
        expensive.add_atom("interpro.entry", "e")
        expensive.add_output("e", "name", "entry_name")
        expensive.add_output("e", "entry_ac", "entry_ac")
        answers = QueryExecutor(mini_catalog).execute_union([expensive, cheap])
        # All answers share one unified schema and are sorted by cost.
        assert [a.cost for a in answers] == sorted(a.cost for a in answers)
        columns = set(answers[0].values.keys())
        for answer in answers:
            assert set(answer.values.keys()) == columns
        # entry_ac from both queries lands in the same column.
        assert "entry_ac" in columns

    def test_union_limit(self, mini_catalog):
        answers = QueryExecutor(mini_catalog).execute_union([make_join_query()], limit=1)
        assert len(answers) == 1

    def test_union_custom_compatibility(self, mini_catalog):
        q1 = make_join_query(cost=1.0)
        q2 = ConjunctiveQuery(cost=2.0, provenance="q2")
        q2.add_atom("interpro.entry", "e")
        q2.add_output("e", "name", "entry_label")
        answers = QueryExecutor(mini_catalog).execute_union(
            [q1, q2], compatible=lambda a, b: {a, b} == {"entry_label", "term_name"}
        )
        columns = set(answers[0].values.keys())
        assert "entry_label" not in columns  # renamed onto term_name


class TestSqlGeneration:
    def test_single_query_sql(self):
        sql = query_to_sql(make_join_query(cost=1.25))
        assert 'FROM "go.term" AS "t"' in sql
        assert '"t"."acc" = "i2g"."go_id"' in sql
        assert "1.250000" in sql

    def test_selection_rendering(self):
        query = make_join_query()
        query.add_selection("t", "name", "plasma membrane", mode="keyword")
        query.add_selection("t", "acc", "GO:0001", mode="equals")
        query.add_selection("t", "name", "mem", mode="contains")
        sql = query_to_sql(query, include_cost=False)
        assert "LIKE '%plasma%'" in sql
        assert "= 'GO:0001'" in sql
        assert "LIKE '%mem%'" in sql

    def test_union_sql_pads_missing_columns(self):
        q1 = make_join_query(cost=1.0)
        q2 = ConjunctiveQuery(cost=2.0, provenance="q2")
        q2.add_atom("interpro.pub", "p")
        q2.add_output("p", "title", "title")
        sql = union_to_sql([q2, q1])
        assert "UNION ALL" in sql
        assert "NULL" in sql
        assert sql.strip().endswith('ORDER BY "_cost" ASC')
