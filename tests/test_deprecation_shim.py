"""The deprecated ``QSystem`` facade: warning, delegation, eager semantics."""

from __future__ import annotations

import warnings

import pytest

from repro import QSystem, QSystemConfig
from repro.api import QService, ServiceConfig
from repro.datastore import DataSource
from repro.exceptions import QError


def _sources():
    go = DataSource.build(
        "go",
        {"term": ["acc", "name"]},
        data={
            "term": [
                {"acc": "GO:0001", "name": "plasma membrane"},
                {"acc": "GO:0002", "name": "nucleus"},
            ]
        },
    )
    interpro = DataSource.build(
        "interpro",
        {"interpro2go": ["go_id", "entry_ac"]},
        data={
            "interpro2go": [
                {"go_id": "GO:0001", "entry_ac": "IPR001"},
                {"go_id": "GO:0002", "entry_ac": "IPR002"},
            ]
        },
    )
    return [go, interpro]


def _system() -> QSystem:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        system = QSystem(sources=_sources())
    system.graph.add_association(
        "go.term", "acc", "interpro.interpro2go", "go_id", {"mad": 0.9}
    )
    return system


class TestDeprecationShim:
    def test_construction_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="QService"):
            QSystem(sources=_sources())

    def test_config_alias_is_service_config(self):
        assert QSystemConfig is ServiceConfig
        config = QSystemConfig(top_k=3, top_y=2)
        assert config.top_k == 3

    def test_delegates_to_a_service_session(self):
        system = _system()
        assert isinstance(system.service, QService)
        # The shim exposes the service's state, not copies of it.
        assert system.catalog is system.service.catalog
        assert system.graph is system.service.graph
        assert system.registrar is system.service.registrar
        assert system.feedback_log is system.service.feedback_log
        assert system.engine_context is system.service.engine_context

    def test_feedback_accumulates_in_one_persistent_learner(self):
        system = _system()
        view = system.create_view(["membrane", "IPR001"])
        learner = system.service.learner
        system.give_feedback(view, view.state.answers[0])
        system.give_feedback(view, view.state.answers[0], replay=2)
        # Same learner object throughout, steps accumulated across calls
        # (the seed rebuilt a fresh learner per call).
        assert system.service.learner is learner
        assert learner.steps_processed == 3

    def test_views_mapping_has_seed_shape(self):
        system = _system()
        view = system.create_view(["membrane", "IPR001"])
        assert "membrane IPR001" in system.views
        assert system.views["membrane IPR001"] is view

    def test_latest_view_uses_creation_order(self):
        system = _system()
        system.create_view(["membrane", "IPR001"], name="shared")
        newest = system.create_view(["nucleus", "IPR002"])
        assert system._latest_view() is newest

    def test_mutations_stay_eager(self):
        # Seed contract: after give_feedback every view is fresh again.
        system = _system()
        view_a = system.create_view(["membrane", "IPR001"])
        view_b = system.create_view(["nucleus", "IPR002"])
        counts = (view_a.refresh_count, view_b.refresh_count)
        system.give_feedback(view_a, view_a.state.answers[0])
        assert view_a.refresh_count == counts[0] + 1
        assert view_b.refresh_count == counts[1] + 1

    def test_unknown_strategy_still_raises_qerror(self):
        system = _system()
        source = DataSource.build("y", {"r": ["a"]})
        with pytest.raises(QError):
            system.register_source(source, strategy="nope")
