"""Unit tests for feedback generalization, loss functions, binning, Hildreth QP and MIRA."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastore.provenance import AnswerTuple, TupleProvenance
from repro.exceptions import FeedbackError, LearningError
from repro.graph import (
    Edge,
    EdgeKind,
    FeatureVector,
    Node,
    NodeKind,
    SearchGraph,
    WeightVector,
    edge_feature,
    matcher_feature,
)
from repro.learning import (
    AnnotationKind,
    AnswerAnnotation,
    FeatureBinner,
    FeedbackEvent,
    FeedbackGeneralizer,
    FeedbackLog,
    LinearConstraint,
    OnlineLearner,
    hildreth_solve,
    normalized_edge_loss,
    symmetric_edge_loss,
    tree_feature_vector,
    zero_one_loss,
)
from repro.steiner import SteinerTree, k_best_steiner_trees


def build_parallel_edge_graph():
    """Two terminals connected by three parallel association edges of different cost."""
    graph = SearchGraph()
    for name in ("s", "t"):
        graph.add_node(Node(node_id=name, kind=NodeKind.RELATION, label=name, relation=name))
    edges = []
    for index, cost in enumerate((1.0, 2.0, 3.0)):
        edge = Edge.create("s", "t", EdgeKind.ASSOCIATION)
        edge.features = FeatureVector({edge_feature(edge.edge_id): 1.0})
        graph.weights.set(edge_feature(edge.edge_id), cost)
        graph.add_edge(edge)
        edges.append(edge)
    return graph, edges


class TestLossFunctions:
    def setup_method(self):
        self.tree_a = SteinerTree(frozenset({"e1", "e2"}), frozenset({"t"}), 1.0)
        self.tree_b = SteinerTree(frozenset({"e2", "e3"}), frozenset({"t"}), 2.0)

    def test_symmetric_loss(self):
        assert symmetric_edge_loss(self.tree_a, self.tree_b) == 2.0
        assert symmetric_edge_loss(self.tree_a, self.tree_a) == 0.0

    def test_normalized_loss(self):
        assert normalized_edge_loss(self.tree_a, self.tree_b) == pytest.approx(2 / 3)
        empty = SteinerTree(frozenset(), frozenset({"t"}), 0.0)
        assert normalized_edge_loss(empty, empty) == 0.0

    def test_zero_one_loss(self):
        assert zero_one_loss(self.tree_a, self.tree_b) == 1.0
        assert zero_one_loss(self.tree_a, self.tree_a) == 0.0


class TestHildrethSolver:
    def test_no_constraints_returns_copy(self):
        weights = WeightVector({"a": 1.0})
        result = hildreth_solve(weights, [])
        assert result.as_dict() == {"a": 1.0}
        assert result is not weights

    def test_single_constraint_projection(self):
        weights = WeightVector({"a": 0.0})
        constraint = LinearConstraint({"a": 1.0}, 2.0)
        result = hildreth_solve(weights, [constraint])
        assert result.get("a") == pytest.approx(2.0, abs=1e-6)

    def test_satisfied_constraint_leaves_weights(self):
        weights = WeightVector({"a": 5.0})
        constraint = LinearConstraint({"a": 1.0}, 2.0)
        result = hildreth_solve(weights, [constraint])
        assert result.get("a") == pytest.approx(5.0)

    def test_multiple_constraints(self):
        weights = WeightVector({})
        constraints = [
            LinearConstraint({"a": 1.0}, 1.0),
            LinearConstraint({"b": 1.0}, 2.0),
            LinearConstraint({"a": 1.0, "b": 1.0}, 2.0),
        ]
        result = hildreth_solve(weights, constraints)
        assert result.get("a") >= 1.0 - 1e-6
        assert result.get("b") >= 2.0 - 1e-6

    def test_violation_and_norm(self):
        constraint = LinearConstraint({"a": 2.0}, 4.0)
        assert constraint.violation(WeightVector({"a": 1.0})) == pytest.approx(2.0)
        assert constraint.squared_norm() == pytest.approx(4.0)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0.1, 3.0), st.floats(-2.0, 2.0)), min_size=1, max_size=5
        )
    )
    def test_constraints_satisfied_property(self, specs):
        # Single-variable constraints coeff * w >= bound are always feasible
        # when all coefficients are positive.
        constraints = [LinearConstraint({"w": coeff}, bound) for coeff, bound in specs]
        result = hildreth_solve(WeightVector({}), constraints, max_iterations=500)
        for constraint in constraints:
            assert constraint.violation(result) <= 1e-5


class TestTreeFeatureVector:
    def test_aggregates_learnable_and_fixed(self, mini_graph):
        association = mini_graph.association_edges()[0]
        membership = mini_graph.edges(EdgeKind.MEMBERSHIP)[0]
        tree = SteinerTree(
            frozenset({association.edge_id, membership.edge_id}), frozenset(), 0.0
        )
        phi, fixed = tree_feature_vector(mini_graph, tree)
        assert fixed == 0.0  # membership edges cost 0
        assert phi.get(matcher_feature("mad")) == pytest.approx(0.9)
        assert phi.get("default") == pytest.approx(1.0)


class TestOnlineLearner:
    def test_promoting_expensive_edge_changes_ranking(self):
        graph, edges = build_parallel_edge_graph()
        terminals = ["s", "t"]
        before = k_best_steiner_trees(graph, terminals, 1)[0]
        assert edges[0].edge_id in before.edge_ids

        target = SteinerTree.from_edges(graph, [edges[2].edge_id], terminals)
        learner = OnlineLearner(graph, k=3)
        result = learner.process(FeedbackEvent(terminals=tuple(terminals), target_tree=target))
        assert result.constraints > 0
        assert result.weight_change > 0
        after = k_best_steiner_trees(graph, terminals, 1)[0]
        assert after.edge_ids == target.edge_ids

    def test_margin_between_target_and_alternatives(self):
        graph, edges = build_parallel_edge_graph()
        terminals = ["s", "t"]
        target = SteinerTree.from_edges(graph, [edges[1].edge_id], terminals)
        OnlineLearner(graph, k=3).process(
            FeedbackEvent(terminals=tuple(terminals), target_tree=target)
        )
        target_cost = target.recost(graph).cost
        for edge in (edges[0], edges[2]):
            other = SteinerTree.from_edges(graph, [edge.edge_id], terminals)
            # symmetric loss between two single-edge trees is 2
            assert other.cost - target_cost >= 2.0 - 1e-4

    def test_edge_costs_stay_positive(self):
        graph, edges = build_parallel_edge_graph()
        terminals = ["s", "t"]
        target = SteinerTree.from_edges(graph, [edges[2].edge_id], terminals)
        learner = OnlineLearner(graph, k=3, positive_margin=0.01)
        learner.replay([FeedbackEvent(terminals=tuple(terminals), target_tree=target)], 3)
        for edge in graph.learnable_edges():
            assert graph.edge_cost(edge) >= 0.01 - 1e-6

    def test_demoted_tree_constraint(self):
        graph, edges = build_parallel_edge_graph()
        terminals = ["s", "t"]
        target = SteinerTree.from_edges(graph, [edges[1].edge_id], terminals)
        demoted = SteinerTree.from_edges(graph, [edges[0].edge_id], terminals)
        OnlineLearner(graph, k=1).process(
            FeedbackEvent(terminals=tuple(terminals), target_tree=target, demoted_tree=demoted)
        )
        assert demoted.recost(graph).cost > target.recost(graph).cost

    def test_missing_terminals_raise(self):
        graph, edges = build_parallel_edge_graph()
        target = SteinerTree.from_edges(graph, [edges[0].edge_id], ["s", "t"])
        learner = OnlineLearner(graph)
        with pytest.raises(LearningError):
            learner.process(FeedbackEvent(terminals=("missing",), target_tree=target))

    def test_process_stream_counts_steps(self):
        graph, edges = build_parallel_edge_graph()
        terminals = ("s", "t")
        target = SteinerTree.from_edges(graph, [edges[1].edge_id], terminals)
        learner = OnlineLearner(graph, k=2)
        learner.process_stream(
            [FeedbackEvent(terminals=terminals, target_tree=target)] * 3
        )
        assert learner.steps_processed == 3
        assert learner.replay([], 5) == []


class TestFeedbackGeneralization:
    def _answer(self, query_id: str) -> AnswerTuple:
        return AnswerTuple(
            values={"x": "1"},
            cost=1.0,
            provenance=TupleProvenance(query_id=query_id, query_cost=1.0),
        )

    def setup_method(self):
        self.tree_a = SteinerTree(frozenset({"e1"}), frozenset({"kw"}), 1.0)
        self.tree_b = SteinerTree(frozenset({"e2"}), frozenset({"kw"}), 2.0)
        self.generalizer = FeedbackGeneralizer(
            ["kw"], {"qa": self.tree_a, "qb": self.tree_b}
        )

    def test_valid_annotation_promotes_tree(self):
        event = self.generalizer.generalize(
            AnswerAnnotation(self._answer("qa"), AnnotationKind.VALID)
        )
        assert event.target_tree is self.tree_a
        assert event.demoted_tree is None

    def test_invalid_annotation_prefers_alternative(self):
        event = self.generalizer.generalize(
            AnswerAnnotation(self._answer("qa"), AnnotationKind.INVALID)
        )
        assert event.target_tree is self.tree_b
        assert event.demoted_tree is self.tree_a

    def test_invalid_without_alternative_raises(self):
        lonely = FeedbackGeneralizer(["kw"], {"qa": self.tree_a})
        with pytest.raises(FeedbackError):
            lonely.generalize(AnswerAnnotation(self._answer("qa"), AnnotationKind.INVALID))

    def test_preference_annotation(self):
        event = self.generalizer.generalize(
            AnswerAnnotation(
                self._answer("qb"), AnnotationKind.PREFERRED_OVER, other=self._answer("qa")
            )
        )
        assert event.target_tree is self.tree_b
        assert event.demoted_tree is self.tree_a

    def test_preference_requires_other(self):
        with pytest.raises(FeedbackError):
            self.generalizer.generalize(
                AnswerAnnotation(self._answer("qa"), AnnotationKind.PREFERRED_OVER)
            )

    def test_unknown_query_id(self):
        with pytest.raises(FeedbackError):
            self.generalizer.generalize(
                AnswerAnnotation(self._answer("unknown"), AnnotationKind.VALID)
            )

    def test_missing_provenance(self):
        with pytest.raises(FeedbackError):
            self.generalizer.generalize(
                AnswerAnnotation(AnswerTuple(values={}), AnnotationKind.VALID)
            )


class TestFeedbackLog:
    def test_sliding_window(self):
        log = FeedbackLog(window_size=2)
        tree = SteinerTree(frozenset(), frozenset(), 0.0)
        for i in range(4):
            log.add(FeedbackEvent(terminals=(f"k{i}",), target_tree=tree))
        assert len(log) == 2
        assert [e.terminals for e in log] == [("k2",), ("k3",)]

    def test_replay_sequence(self):
        log = FeedbackLog()
        tree = SteinerTree(frozenset(), frozenset(), 0.0)
        log.add(FeedbackEvent(terminals=("a",), target_tree=tree))
        assert len(log.replay_sequence(3)) == 3
        assert log.replay_sequence(0) == []


class TestFeatureBinner:
    def test_bin_index_and_center(self):
        binner = FeatureBinner(num_bins=4)
        assert binner.bin_index(-1.0) == 0
        assert binner.bin_index(0.1) == 0
        assert binner.bin_index(0.49) == 1
        assert binner.bin_index(1.5) == 3
        assert binner.bin_center(0) == pytest.approx(0.125)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FeatureBinner(num_bins=0)
        with pytest.raises(ValueError):
            FeatureBinner(lower=1.0, upper=0.0)

    def test_bin_vector_replaces_selected_features(self):
        binner = FeatureBinner(num_bins=2)
        features = FeatureVector({matcher_feature("mad"): 0.9, "default": 1.0})
        binned = binner.bin_vector(features, [matcher_feature("mad")])
        assert matcher_feature("mad") not in binned
        assert binned.get("default") == 1.0
        assert any(name.startswith("bin::") for name in binned.features())

    def test_apply_to_graph_preserves_costs(self, mini_graph):
        edge = mini_graph.association_edges()[0]
        cost_before = mini_graph.edge_cost(edge)
        rewritten = FeatureBinner(num_bins=5).apply_to_graph(mini_graph)
        assert rewritten >= 1
        cost_after = mini_graph.edge_cost(edge)
        # Bin centers approximate the original confidence, so the cost moves
        # by at most half a bin width times the matcher weight.
        assert cost_after == pytest.approx(cost_before, abs=0.06)
