"""Parity: posting-list (blocked) candidate generation vs the seed all-pairs loop.

The profile-indexed matcher layer must be a pure optimization: on any input,
the blocked paths return the *same* correspondences — same pairs, same
confidences, same order — as the exhaustive loops, and the filter's pair
counts are identical.  Checked on the fig7 fixtures (the GBCO catalog that
the Figure 6/7 registration replay introduces sources into) and on random
tables via hypothesis.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastore.database import Catalog, DataSource
from repro.datastore.indexes import ValueIndex
from repro.matching import (
    ContentTfIdfMatcher,
    MatcherEnsemble,
    MetadataMatcher,
    ValueOverlapFilter,
    ValueOverlapMatcher,
)
from repro.matching.metadata_matcher import _name_similarity_cached
from repro.profiling import CatalogProfileIndex


def _correspondence_tuples(correspondences):
    return [
        (c.source.qualified, c.target.qualified, c.confidence, c.matcher)
        for c in correspondences
    ]


# ----------------------------------------------------------------------
# fig7 fixtures (GBCO)
# ----------------------------------------------------------------------
class TestGbcoParity:
    @pytest.fixture(scope="class")
    def gbco_tables(self, gbco_dataset):
        return gbco_dataset.catalog.all_tables()

    @pytest.fixture(scope="class")
    def gbco_index(self, gbco_dataset):
        return CatalogProfileIndex.from_catalog(gbco_dataset.catalog)

    def test_value_overlap_matcher_blocked_equals_seed_loop(self, gbco_tables, gbco_index):
        blocked = ValueOverlapMatcher(profile_index=gbco_index)
        exhaustive = ValueOverlapMatcher()
        for i, table_a in enumerate(gbco_tables):
            for table_b in gbco_tables[i + 1 :]:
                left = blocked.match_relations(table_a, table_b)
                right = exhaustive.match_relations(table_a, table_b)
                assert _correspondence_tuples(left) == _correspondence_tuples(right)

    def test_value_overlap_matcher_thresholds_preserved(self, gbco_tables, gbco_index):
        blocked = ValueOverlapMatcher(
            min_confidence=0.5, min_shared_values=3, profile_index=gbco_index
        )
        exhaustive = ValueOverlapMatcher(min_confidence=0.5, min_shared_values=3)
        for i, table_a in enumerate(gbco_tables):
            for table_b in gbco_tables[i + 1 :]:
                assert _correspondence_tuples(
                    blocked.match_relations(table_a, table_b)
                ) == _correspondence_tuples(exhaustive.match_relations(table_a, table_b))

    def test_metadata_matcher_indexed_equals_plain(self, gbco_tables, gbco_index):
        indexed = MetadataMatcher(profile_index=gbco_index)
        plain = MetadataMatcher()
        for i, table_a in enumerate(gbco_tables):
            for table_b in gbco_tables[i + 1 :]:
                assert _correspondence_tuples(
                    indexed.match_relations(table_a, table_b)
                ) == _correspondence_tuples(plain.match_relations(table_a, table_b))

    def test_metadata_memo_replay_is_identical(self, gbco_tables, gbco_index):
        # Second pass over the same pairs must replay memoized output untouched.
        indexed = MetadataMatcher(profile_index=gbco_index)
        table_a, table_b = gbco_tables[0], gbco_tables[1]
        first = indexed.match_relations(table_a, table_b)
        hits_before = gbco_index.pair_cache_hits
        second = indexed.match_relations(table_a, table_b)
        assert gbco_index.pair_cache_hits > hits_before
        assert _correspondence_tuples(first) == _correspondence_tuples(second)

    def test_filter_counts_match_value_index_filter(self, gbco_dataset, gbco_tables, gbco_index):
        profile_filter = ValueOverlapFilter.from_index(gbco_index)
        legacy_filter = ValueOverlapFilter(
            index=ValueIndex.from_catalog(gbco_dataset.catalog)
        )
        for i, table_a in enumerate(gbco_tables):
            for table_b in gbco_tables[i + 1 :]:
                assert profile_filter.comparable_pairs(
                    table_a, table_b
                ) == legacy_filter.comparable_pairs(table_a, table_b)

    def test_comparison_counters_are_identical(self, gbco_tables, gbco_index):
        blocked = ValueOverlapMatcher(profile_index=gbco_index)
        exhaustive = ValueOverlapMatcher()
        for matcher in (blocked, exhaustive):
            for i, table_a in enumerate(gbco_tables[:6]):
                for table_b in gbco_tables[i + 1 : 6]:
                    matcher.match_relations(table_a, table_b)
        assert (
            blocked.counter.attribute_comparisons
            == exhaustive.counter.attribute_comparisons
        )
        assert blocked.counter.relation_pairs == exhaustive.counter.relation_pairs


class TestContentTfIdfMatcher:
    def test_blocking_is_lossless(self, mini_catalog):
        # Brute force: score every attribute pair by cosine; the blocked
        # matcher must return exactly the pairs clearing the threshold.
        index = CatalogProfileIndex.from_catalog(mini_catalog)
        matcher = ContentTfIdfMatcher(min_confidence=0.05, profile_index=index)
        tables = mini_catalog.all_tables()
        for i, table_a in enumerate(tables):
            for table_b in tables[i + 1 :]:
                rel_a = table_a.schema.qualified_name
                rel_b = table_b.schema.qualified_name
                expected = []
                for attr_a in table_a.schema.attribute_names:
                    for attr_b in table_b.schema.attribute_names:
                        confidence = index.content_similarity(
                            rel_a, attr_a, rel_b, attr_b
                        )
                        if confidence >= 0.05:
                            expected.append(
                                (
                                    f"{rel_a}.{attr_a}",
                                    f"{rel_b}.{attr_b}",
                                    round(min(confidence, 1.0), 6),
                                )
                            )
                got = [
                    (c.source.qualified, c.target.qualified, c.confidence)
                    for c in matcher.match_relations(table_a, table_b)
                ]
                assert got == expected

    def test_works_without_a_shared_index(self, mini_catalog):
        table_a = mini_catalog.relation("go.term")
        table_b = mini_catalog.relation("interpro.interpro2go")
        standalone = ContentTfIdfMatcher(min_confidence=0.05)
        result = standalone.match_relations(table_a, table_b)
        assert any(
            (c.source.attribute, c.target.attribute) == ("acc", "go_id")
            for c in result
        )

    def test_dispatchable_by_name(self):
        from repro.matching import resolve_matcher

        matcher = resolve_matcher("content_tfidf")
        assert isinstance(matcher, ContentTfIdfMatcher)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            ContentTfIdfMatcher(min_confidence=0.0)


class TestEnsembleParity:
    def test_ensemble_with_index_matches_plain(self, mini_catalog):
        index = CatalogProfileIndex.from_catalog(mini_catalog)
        tables = mini_catalog.all_tables()
        with_index = MatcherEnsemble(
            [MetadataMatcher(), ValueOverlapMatcher()], top_y=2, profile_index=index
        ).match_tables(tables)
        plain = MatcherEnsemble(
            [MetadataMatcher(), ValueOverlapMatcher()], top_y=2
        ).match_tables(tables)
        assert [
            (a.key(), sorted(a.confidences.items())) for a in with_index
        ] == [(a.key(), sorted(a.confidences.items())) for a in plain]


# ----------------------------------------------------------------------
# Property-style tests on random tables
# ----------------------------------------------------------------------
_VALUES = st.sampled_from(["a", "b", "c", "d", "e", "f", None])
_ATTRS = ["k1", "k2", "shared_id", "name"]


def _random_source(draw, name: str, arity: int, rows: int):
    attrs = _ATTRS[:arity]
    data = [
        {attr: draw(_VALUES) for attr in attrs}
        for _ in range(rows)
    ]
    return DataSource.build(name, {"rel": attrs}, data={"rel": data})


@st.composite
def _table_pair(draw):
    source_a = _random_source(draw, "alpha", draw(st.integers(1, 4)), draw(st.integers(0, 8)))
    source_b = _random_source(draw, "beta", draw(st.integers(1, 4)), draw(st.integers(0, 8)))
    return source_a, source_b


class TestRandomTableParity:
    @settings(max_examples=60, deadline=None)
    @given(data=_table_pair(), min_shared=st.integers(1, 3))
    def test_blocked_value_matcher_equals_exhaustive(self, data, min_shared):
        source_a, source_b = data
        catalog = Catalog([source_a, source_b])
        index = CatalogProfileIndex.from_catalog(catalog)
        table_a, table_b = source_a.table("rel"), source_b.table("rel")
        blocked = ValueOverlapMatcher(min_shared_values=min_shared, profile_index=index)
        exhaustive = ValueOverlapMatcher(min_shared_values=min_shared)
        assert _correspondence_tuples(
            blocked.match_relations(table_a, table_b)
        ) == _correspondence_tuples(exhaustive.match_relations(table_a, table_b))

    @settings(max_examples=60, deadline=None)
    @given(data=_table_pair(), min_shared=st.integers(1, 3))
    def test_filter_count_equals_nested_loop(self, data, min_shared):
        source_a, source_b = data
        catalog = Catalog([source_a, source_b])
        index = CatalogProfileIndex.from_catalog(catalog)
        table_a, table_b = source_a.table("rel"), source_b.table("rel")
        fast = ValueOverlapFilter.from_index(index)
        fast.min_shared_values = min_shared
        expected = 0
        for attr_a in table_a.schema.attribute_names:
            for attr_b in table_b.schema.attribute_names:
                if (
                    len(
                        table_a.distinct_values(attr_a)
                        & table_b.distinct_values(attr_b)
                    )
                    >= min_shared
                ):
                    expected += 1
        assert fast.comparable_pairs(table_a, table_b) == expected

    @settings(max_examples=120, deadline=None)
    @given(
        label_a=st.text(
            alphabet=st.sampled_from("abc_ABC012"), min_size=0, max_size=12
        ),
        label_b=st.text(
            alphabet=st.sampled_from("abc_ABC012"), min_size=0, max_size=12
        ),
    )
    def test_name_similarity_is_symmetric(self, label_a, label_b):
        # The metadata matcher canonicalizes the cached pair order; this is
        # sound only while every component measure is symmetric.
        forward = _name_similarity_cached.__wrapped__(
            label_a, label_b, 0.40, 0.25, 0.20, 0.15
        )
        backward = _name_similarity_cached.__wrapped__(
            label_b, label_a, 0.40, 0.25, 0.20, 0.15
        )
        assert forward == backward

    @settings(max_examples=40, deadline=None)
    @given(data=_table_pair())
    def test_stale_profile_falls_back_to_exhaustive(self, data):
        # Mutating a table after indexing must not produce stale blocked
        # results: the matcher detects the stale profile and scans.
        source_a, source_b = data
        catalog = Catalog([source_a, source_b])
        index = CatalogProfileIndex.from_catalog(catalog)
        table_a, table_b = source_a.table("rel"), source_b.table("rel")
        table_a.append({attr: "zz" for attr in table_a.schema.attribute_names})
        blocked = ValueOverlapMatcher(profile_index=index)
        exhaustive = ValueOverlapMatcher()
        assert _correspondence_tuples(
            blocked.match_relations(table_a, table_b)
        ) == _correspondence_tuples(exhaustive.match_relations(table_a, table_b))
