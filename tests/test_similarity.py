"""Unit and property tests for the similarity metrics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.similarity import (
    TfIdfScorer,
    character_ngrams,
    containment,
    jaccard,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    max_containment,
    ngram_jaccard,
    ngram_similarity,
    normalize_label,
    overlap_count,
    token_jaccard,
    token_set,
    tokenize,
)

short_text = st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")), max_size=12)


class TestTokenize:
    def test_snake_case(self):
        assert tokenize("entry_ac") == ["entry", "ac"]

    def test_camel_case_and_digits(self):
        assert tokenize("InterPro2GO") == ["inter", "pro", "2", "go"]

    def test_stopwords(self):
        assert tokenize("name of the entry", drop_stopwords=True) == ["name", "entry"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("___") == []

    def test_normalize_label(self):
        assert normalize_label("GO Term") == "go_term"

    def test_token_set(self):
        assert token_set("go_id go") == frozenset({"go", "id"})

    def test_character_ngrams_padding(self):
        grams = character_ngrams("ab", 3)
        assert "##a" in grams and "b##" in grams

    def test_character_ngrams_invalid_n(self):
        with pytest.raises(ValueError):
            character_ngrams("ab", 0)


class TestLevenshtein:
    def test_known_distances(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "abc") == 0

    def test_similarity_bounds(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert 0.0 <= levenshtein_similarity("abc", "xyz") <= 1.0

    @given(short_text, short_text)
    def test_symmetry_property(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(short_text, short_text, short_text)
    def test_triangle_inequality_property(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)


class TestJaroWinkler:
    def test_identical(self):
        assert jaro_winkler_similarity("pub", "pub") == 1.0

    def test_prefix_boost(self):
        plain = jaro_winkler_similarity("publication", "publisher")
        assert plain > 0.8

    def test_disjoint(self):
        assert jaro_winkler_similarity("abc", "xyz") == 0.0

    @given(short_text, short_text)
    def test_bounds_property(self, a, b):
        score = jaro_winkler_similarity(a, b)
        assert 0.0 <= score <= 1.0 + 1e-9


class TestNgram:
    def test_identical(self):
        assert ngram_similarity("entry", "entry") == 1.0
        assert ngram_jaccard("entry", "entry") == 1.0

    def test_related_labels(self):
        assert ngram_similarity("entry_ac", "entry_acc") > 0.6

    @given(short_text, short_text)
    def test_bounds_and_symmetry_property(self, a, b):
        score = ngram_similarity(a, b)
        assert 0.0 <= score <= 1.0
        assert score == pytest.approx(ngram_similarity(b, a))


class TestSetSimilarity:
    def test_jaccard(self):
        assert jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard(set(), set()) == 1.0

    def test_containment(self):
        assert containment({1}, {1, 2, 3}) == 1.0
        assert containment({1, 2, 3}, {1}) == pytest.approx(1 / 3)
        assert containment(set(), {1}) == 1.0
        assert containment({1}, set()) == 0.0

    def test_max_containment(self):
        assert max_containment({1}, {1, 2, 3}) == 1.0
        assert max_containment(set(), set()) == 1.0
        assert max_containment({1}, set()) == 0.0

    def test_token_jaccard(self):
        assert token_jaccard("go_id", "id_go") == 1.0
        assert token_jaccard("go_id", "accession") == 0.0

    def test_overlap_count(self):
        assert overlap_count(["a", "b", "b"], ["b", "c"]) == 1

    @given(st.sets(st.integers(), max_size=20), st.sets(st.integers(), max_size=20))
    def test_jaccard_bounds_property(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0


class TestTfIdf:
    @pytest.fixture()
    def scorer(self) -> TfIdfScorer:
        return TfIdfScorer(corpus=["go term name", "entry accession", "publication title", "go id"])

    def test_identical_text(self, scorer):
        assert scorer.similarity("go term", "go term") == pytest.approx(1.0)

    def test_partial_overlap_ranked(self, scorer):
        close = scorer.similarity("membrane", "plasma membrane")
        far = scorer.similarity("membrane", "publication title")
        assert close > far

    def test_no_overlap(self, scorer):
        assert scorer.similarity("membrane", "publication") == 0.0

    def test_empty_text(self, scorer):
        assert scorer.similarity("", "anything") == 0.0

    def test_mismatch_cost_complements_similarity(self, scorer):
        similarity = scorer.similarity("go term", "go term name")
        assert scorer.mismatch_cost("go term", "go term name") == pytest.approx(1 - similarity)

    def test_rare_tokens_weighted_higher(self):
        scorer = TfIdfScorer(corpus=["id"] * 20 + ["membrane"])
        assert scorer.inverse_document_frequency("membrane") > scorer.inverse_document_frequency("id")

    def test_document_frequency(self, scorer):
        assert scorer.document_frequency("go") == 2
        assert scorer.document_frequency("unseen") == 0
