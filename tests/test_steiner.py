"""Unit and property tests for the Steiner tree algorithms."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SteinerError
from repro.graph import Edge, EdgeKind, FeatureVector, Node, NodeKind, SearchGraph, edge_feature
from repro.steiner import (
    KBestSteiner,
    SteinerTree,
    approximate_steiner_tree,
    default_solver,
    exact_steiner_tree,
    k_best_steiner_trees,
    validate_terminals,
)


def build_weighted_graph(edges):
    """Build a SearchGraph from (u, v, cost) triples over generic nodes."""
    graph = SearchGraph()
    nodes = {u for u, _, _ in edges} | {v for _, v, _ in edges}
    for name in nodes:
        graph.add_node(Node(node_id=name, kind=NodeKind.RELATION, label=name, relation=name))
    for u, v, cost in edges:
        edge = Edge.create(u, v, EdgeKind.ASSOCIATION)
        edge.features = FeatureVector({edge_feature(edge.edge_id): 1.0})
        graph.weights.set(edge_feature(edge.edge_id), cost)
        graph.add_edge(edge)
    return graph


@pytest.fixture()
def diamond_graph() -> SearchGraph:
    """a-b-d and a-c-d paths plus an expensive direct a-d edge."""
    return build_weighted_graph(
        [
            ("a", "b", 1.0),
            ("b", "d", 1.0),
            ("a", "c", 2.0),
            ("c", "d", 2.0),
            ("a", "d", 5.0),
        ]
    )


class TestExactSteiner:
    def test_two_terminals_is_shortest_path(self, diamond_graph):
        tree = exact_steiner_tree(diamond_graph, ["a", "d"])
        assert tree.cost == pytest.approx(2.0)
        assert len(tree.edge_ids) == 2
        assert tree.is_connected_tree(diamond_graph)

    def test_single_terminal(self, diamond_graph):
        tree = exact_steiner_tree(diamond_graph, ["a"])
        assert tree.cost == 0.0
        assert tree.edge_ids == frozenset()

    def test_three_terminals(self, diamond_graph):
        tree = exact_steiner_tree(diamond_graph, ["a", "c", "d"])
        assert tree.is_connected_tree(diamond_graph)
        # best solution: a-b-d (2.0) + d-c (2.0) or a-c + c-d = 4.0 either way
        assert tree.cost == pytest.approx(4.0)

    def test_disconnected_terminals_raise(self):
        graph = build_weighted_graph([("a", "b", 1.0), ("c", "d", 1.0)])
        with pytest.raises(SteinerError):
            exact_steiner_tree(graph, ["a", "c"])

    def test_too_many_terminals_guard(self, diamond_graph):
        with pytest.raises(SteinerError):
            exact_steiner_tree(diamond_graph, ["a", "b", "c", "d"], max_terminals=2)

    def test_unknown_terminal(self, diamond_graph):
        with pytest.raises(SteinerError):
            exact_steiner_tree(diamond_graph, ["a", "zzz"])

    def test_validate_terminals_dedup(self, diamond_graph):
        assert validate_terminals(diamond_graph, ["a", "a", "b"]) == ("a", "b")
        with pytest.raises(SteinerError):
            validate_terminals(diamond_graph, [])


class TestTwoTerminalTieBreak:
    def test_equal_cost_witness_matches_dp_choice(self):
        """The 2-terminal fast path must pick the same equal-cost path as
        the Dreyfus–Wagner DP did in the seed implementation (whose witness
        is the Dijkstra tree rooted at the *second* terminal)."""
        edges = [
            ("A", "x", 1.0),
            ("x", "B", 3.0),
            ("A", "y1", 3.0),
            ("y1", "y2", 0.5),
            ("y2", "B", 0.5),
        ]
        graph = SearchGraph()
        nodes = {u for u, _, _ in edges} | {v for _, v, _ in edges}
        for name in sorted(nodes):
            graph.add_node(Node(node_id=name, kind=NodeKind.RELATION, label=name, relation=name))
        by_pair = {}
        for u, v, cost in edges:
            edge = Edge.create(u, v, EdgeKind.ASSOCIATION)
            edge.features = FeatureVector({edge_feature(edge.edge_id): 1.0})
            graph.weights.set(edge_feature(edge.edge_id), cost)
            graph.add_edge(edge)
            by_pair[(u, v)] = edge.edge_id
        tree = exact_steiner_tree(graph, ["A", "B"])
        assert tree.cost == pytest.approx(4.0)
        # Seed DP choice among the two cost-4 paths: the y-path.
        expected = {by_pair[("A", "y1")], by_pair[("y1", "y2")], by_pair[("y2", "B")]}
        assert tree.edge_ids == frozenset(expected)


class TestApproximateSteiner:
    def test_matches_exact_on_small_graph(self, diamond_graph):
        exact = exact_steiner_tree(diamond_graph, ["a", "d"])
        approx = approximate_steiner_tree(diamond_graph, ["a", "d"])
        assert approx.is_connected_tree(diamond_graph)
        assert approx.cost >= exact.cost - 1e-9

    def test_disconnected_raise(self):
        graph = build_weighted_graph([("a", "b", 1.0), ("c", "d", 1.0)])
        with pytest.raises(SteinerError):
            approximate_steiner_tree(graph, ["a", "d"])

    def test_prunes_nonterminal_leaves(self):
        graph = build_weighted_graph(
            [("a", "b", 1.0), ("b", "c", 1.0), ("b", "x", 0.1)]
        )
        tree = approximate_steiner_tree(graph, ["a", "c"])
        nodes = tree.nodes(graph)
        assert "x" not in nodes

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_approximation_never_beats_exact_property(self, seed):
        rng = random.Random(seed)
        names = [f"n{i}" for i in range(8)]
        edges = []
        # random connected graph: chain + random extra edges
        for i in range(1, len(names)):
            edges.append((names[i - 1], names[i], rng.uniform(0.1, 3.0)))
        for _ in range(6):
            u, v = rng.sample(names, 2)
            edges.append((u, v, rng.uniform(0.1, 3.0)))
        graph = build_weighted_graph(edges)
        terminals = rng.sample(names, 3)
        exact = exact_steiner_tree(graph, terminals)
        approx = approximate_steiner_tree(graph, terminals)
        assert exact.is_connected_tree(graph)
        assert approx.is_connected_tree(graph)
        assert approx.cost >= exact.cost - 1e-9
        # KMB guarantee: at most 2x the optimum.
        assert approx.cost <= 2 * exact.cost + 1e-9


class TestTopK:
    def test_first_tree_is_optimal(self, diamond_graph):
        trees = k_best_steiner_trees(diamond_graph, ["a", "d"], 3)
        exact = exact_steiner_tree(diamond_graph, ["a", "d"])
        assert trees[0].cost == pytest.approx(exact.cost)

    def test_trees_are_distinct_and_sorted(self, diamond_graph):
        trees = k_best_steiner_trees(diamond_graph, ["a", "d"], 3)
        assert len(trees) == 3
        signatures = {t.edge_ids for t in trees}
        assert len(signatures) == 3
        costs = [t.cost for t in trees]
        assert costs == sorted(costs)
        # the three a-d interpretations: via b (2), via c (4), direct (5)
        assert costs == pytest.approx([2.0, 4.0, 5.0])

    def test_k_larger_than_alternatives(self, diamond_graph):
        trees = k_best_steiner_trees(diamond_graph, ["a", "d"], 50)
        assert 3 <= len(trees) <= 50

    def test_invalid_k(self, diamond_graph):
        with pytest.raises(ValueError):
            KBestSteiner().solve(diamond_graph, ["a", "d"], 0)

    def test_disconnected_returns_empty(self):
        graph = build_weighted_graph([("a", "b", 1.0), ("c", "d", 1.0)])
        assert KBestSteiner().solve(graph, ["a", "c"], 3) == []

    def test_default_solver_dispatch(self, diamond_graph):
        tree = default_solver(diamond_graph, ["a", "b", "c", "d"], exact_terminal_limit=3)
        assert tree.is_connected_tree(diamond_graph)


class TestSteinerTreeObject:
    def test_symmetric_difference(self, diamond_graph):
        trees = k_best_steiner_trees(diamond_graph, ["a", "d"], 2)
        assert trees[0].symmetric_edge_difference(trees[0]) == 0
        assert trees[0].symmetric_edge_difference(trees[1]) == 4

    def test_recost_after_weight_change(self, diamond_graph):
        tree = exact_steiner_tree(diamond_graph, ["a", "d"])
        edge_id = next(iter(tree.edge_ids))
        diamond_graph.weights.set(edge_feature(edge_id), 10.0)
        recosted = tree.recost(diamond_graph)
        assert recosted.cost > tree.cost

    def test_contains_relation(self, diamond_graph):
        tree = exact_steiner_tree(diamond_graph, ["a", "d"])
        assert tree.contains_relation(diamond_graph, "a")
        assert not tree.contains_relation(diamond_graph, "c")

    def test_ordering(self, diamond_graph):
        trees = k_best_steiner_trees(diamond_graph, ["a", "d"], 2)
        assert trees[0] < trees[1]
