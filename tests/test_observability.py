"""Tests of the observability layer (:mod:`repro.obs`).

Covers the contracts the module promises:

* every ranked read is attributable: ``ReadResult.trace`` carries a
  well-nested span tree, a serving-path verdict and — on fallback — a
  concrete ineligibility reason, on both storage backends and under
  ``REPRO_WINDOW_PUSHDOWN=off``;
* concurrent reads produce *disjoint* well-nested span trees, exact under
  a deterministic injected clock;
* the off switch (``observability=False``) returns ``trace=None`` with
  byte-identical answers while counters keep moving;
* the explain/decision log, slow-query log, writer-lane histograms,
  metrics exposition, and ``SystemStats`` as a registry view.
"""

from __future__ import annotations

import sqlite3
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    FeedbackRequest,
    QService,
    QueryRequest,
    ServiceConfig,
)
from repro.datastore.csvio import source_from_dict, source_to_dict
from repro.engine.context import window_pushdown_enabled
from repro.exceptions import InvalidRequestError
from repro.learning import AnnotationKind
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.obs.metrics import NullRegistry
from repro.obs.tracing import NOOP_TRACE, active_trace, well_nested
from repro.service import QServer

#: Whether this process can exercise the windowed pushdown path (old
#: SQLite builds lack window functions; the REPRO_WINDOW_PUSHDOWN=off CI
#: leg disables it deliberately — the trace then explains the fallback).
WINDOWED_AVAILABLE = (
    sqlite3.sqlite_version_info >= (3, 25, 0) and window_pushdown_enabled()
)


def _clone(source):
    return source_from_dict(source_to_dict(source))


def _fingerprint(answers):
    return [
        (
            tuple(answer.values.items()),
            answer.cost,
            tuple(sorted(answer.provenance.base_tuples))
            if answer.provenance is not None
            else None,
        )
        for answer in answers
    ]


def _gbco_service(gbco_dataset, backend=None, **overrides):
    """A bootstrap-aligned session over the GBCO catalog."""
    config = ServiceConfig(top_k=5, top_y=1, write_queue_limit=16, **overrides)
    service = QService(
        sources=[_clone(source) for source in gbco_dataset.catalog],
        config=config,
        backend=backend,
    )
    service.bootstrap_alignments()
    return service


def _keywords(gbco_dataset):
    return tuple(list(gbco_dataset.query_log)[0].keywords)


class _CountingClock:
    """A deterministic, thread-safe clock: each call returns t+1."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._t = 0.0

    def __call__(self) -> float:
        with self._lock:
            self._t += 1.0
            return self._t


# ----------------------------------------------------------------------
# Metrics registry (pure unit)
# ----------------------------------------------------------------------
def test_registry_counters_gauges_histograms_and_exposition():
    registry = MetricsRegistry()
    reads = registry.counter("reads_total", "total reads")
    assert reads.inc() == 1
    assert reads.inc(2) == 3
    registry.gauge("depth", "queue depth", fn=lambda: 7)
    hist = registry.histogram("latency_seconds", "read latency")
    hist.observe(0.001)
    hist.observe(1000.0)  # overflow bucket

    assert registry.value("reads_total") == 3
    assert registry.value("never_registered") == 0

    text = registry.prometheus_text()
    assert "# TYPE reads_total counter" in text
    assert "reads_total 3" in text
    assert "depth 7" in text
    assert "latency_seconds_count 2" in text

    as_dict = registry.as_dict()
    assert as_dict["reads_total"] == 3


def test_registry_labeled_counters_are_distinct():
    registry = MetricsRegistry()
    a = registry.counter("path_total", "by path", labels={"path": "windowed"})
    b = registry.counter("path_total", "by path", labels={"path": "cached"})
    a.inc()
    a.inc()
    b.inc()
    assert registry.value("path_total", labels={"path": "windowed"}) == 2
    assert registry.value("path_total", labels={"path": "cached"}) == 1
    assert 'path_total{path="windowed"} 2' in registry.prometheus_text()


def test_null_registry_is_inert():
    registry = NullRegistry()
    assert registry.counter("x", "x").inc() == 0
    registry.histogram("h", "h").observe(1.0)
    assert registry.value("x") == 0
    assert registry.prometheus_text() == ""
    assert registry.as_dict() == {}


# ----------------------------------------------------------------------
# Tracer (pure unit)
# ----------------------------------------------------------------------
def test_trace_spans_are_exact_under_injected_clock():
    tracer = Tracer(enabled=True, clock=_CountingClock())
    trace = tracer.trace("read")
    with trace:
        with trace.span("solve"):
            with trace.span("expand"):
                pass
        with trace.span("execute"):
            pass
    root = trace.root
    assert well_nested(root)
    assert [child.name for child in root.children] == ["solve", "execute"]
    # Clock ticks: root=1, solve=2, expand=3,4, solve end=5, execute=6,7,
    # root end=8 — every duration is exact, no wall-clock involved.
    assert root.start == 1.0 and root.end == 8.0
    solve = root.children[0]
    assert solve.start == 2.0 and solve.end == 5.0
    assert solve.children[0].duration == 1.0


def test_disabled_tracer_returns_shared_noop():
    tracer = Tracer(enabled=False)
    trace = tracer.trace("read")
    assert trace is NOOP_TRACE
    assert not trace.enabled
    with trace:
        with trace.span("anything"):
            trace.annotate("path", "windowed")
            trace.tally("queries_python")
    assert trace.annotations == {}
    assert active_trace() is NOOP_TRACE  # nothing leaked into the slot


def test_annotate_once_keeps_first_reason():
    tracer = Tracer(enabled=True, clock=_CountingClock())
    trace = tracer.trace("read")
    with trace:
        trace.annotate_once("fallback_reason", "the fundamental one")
        trace.annotate_once("fallback_reason", "a later, derived one")
    assert trace.annotations["fallback_reason"] == "the fundamental one"


# ----------------------------------------------------------------------
# Read-lane attribution (both backends + pushdown off)
# ----------------------------------------------------------------------
def test_memory_read_trace_explains_python_union(gbco_dataset):
    # Pinned to the memory backend regardless of the REPRO_BACKEND matrix
    # leg: this test is about the Python-join-engine explanation.
    with _gbco_service(gbco_dataset, backend="memory") as service:
        with QServer(service) as server:
            result = server.query(QueryRequest(keywords=_keywords(gbco_dataset)))
            assert result.answers
            trace = result.trace
            assert trace is not None
            assert trace.path == "python-union"
            assert "no SQL pushdown" in trace.fallback_reason
            assert well_nested(trace.root)
            stages = trace.stages()
            assert "snapshot_acquire" in stages
            assert "paginate" in stages
            assert trace.duration > 0.0
            assert "path=python-union" in trace.render()


def test_sqlite_read_trace_names_its_serving_path(gbco_dataset, tmp_path):
    backend = f"sqlite:{tmp_path / 'obs.db'}"
    with _gbco_service(gbco_dataset, backend=backend) as service:
        with QServer(service) as server:
            result = server.query(QueryRequest(keywords=_keywords(gbco_dataset)))
            assert result.answers
            trace = result.trace
            assert trace is not None
            if WINDOWED_AVAILABLE:
                assert trace.path == "windowed"
                assert trace.fallback_reason == ""
            else:
                # The off-switch CI leg (or an old SQLite) must still get a
                # concrete reason, not a silent fallback.
                assert trace.path in ("posting-join", "python-union", "mixed")
                assert trace.fallback_reason
            # The repeat read serves from the snapshot answer cache and
            # says so.
            again = server.query(QueryRequest(view=result.view_id))
            assert again.trace is not None
            assert again.trace.path == "cached"
            assert _fingerprint(again.answers) == _fingerprint(result.answers)


@pytest.mark.skipif(
    sqlite3.sqlite_version_info < (3, 25, 0),
    reason="windowed pushdown needs SQLite >= 3.25",
)
def test_pushdown_off_switch_is_explained(gbco_dataset, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_WINDOW_PUSHDOWN", "off")
    backend = f"sqlite:{tmp_path / 'obs_off.db'}"
    with _gbco_service(gbco_dataset, backend=backend) as service:
        with QServer(service) as server:
            result = server.query(QueryRequest(keywords=_keywords(gbco_dataset)))
            assert result.answers
            trace = result.trace
            assert trace is not None
            assert trace.path != "windowed"
            assert "REPRO_WINDOW_PUSHDOWN" in trace.fallback_reason


def test_tenant_overlay_read_explains_fallback(gbco_dataset):
    with _gbco_service(gbco_dataset) as service:
        info = service.create_view(QueryRequest(keywords=_keywords(gbco_dataset)))
        base = list(service.stream_answers(QueryRequest(view=info.view_id)))
        first = base[0]
        other = next(
            a for a in base if a.provenance.query_id != first.provenance.query_id
        )
        service.feedback(
            FeedbackRequest(
                view=info.view_id,
                answer=first,
                kind=AnnotationKind.PREFERRED_OVER,
                other=other,
                tenant="alice",
            )
        )
        service.answers_page(QueryRequest(view=info.view_id, tenant="alice"))
        decision = service.obs.decisions.last()
        assert decision.tenant == "alice"
        assert decision.fallback_reason.startswith("tenant overlay view")


# ----------------------------------------------------------------------
# Concurrency: disjoint well-nested trees under a deterministic clock
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
def test_concurrent_reads_yield_disjoint_well_nested_traces(
    gbco_dataset, tmp_path, backend_kind
):
    backend = (
        "memory"
        if backend_kind == "memory"
        else f"sqlite:{tmp_path / 'obs_concurrent.db'}"
    )
    service = _gbco_service(gbco_dataset, backend=backend)
    service.obs = Observability(enabled=True, clock=_CountingClock())
    with service:
        with QServer(service, read_workers=4) as server:
            info = server.create_view(QueryRequest(keywords=_keywords(gbco_dataset)))
            request = QueryRequest(view=info.view_id)
            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(
                    pool.map(lambda _: server.query(request), range(16))
                )
            traces = [result.trace for result in results]
            assert all(trace is not None for trace in traces)
            seen_span_ids = set()
            for trace in traces:
                assert well_nested(trace.root)
                # Integer clock ticks: every span interval is exact and
                # strictly positive — no two clock reads ever tie.
                for span in trace.root.walk():
                    assert span.end > span.start
                    assert float(span.start).is_integer()
                span_ids = {id(span) for span in trace.root.walk()}
                # Disjoint trees: no span object shared between requests.
                assert not (span_ids & seen_span_ids)
                seen_span_ids |= span_ids
            fingerprints = {tuple(_fingerprint(r.answers)) for r in results}
            assert len(fingerprints) == 1  # all reads saw the same snapshot


# ----------------------------------------------------------------------
# The off switch
# ----------------------------------------------------------------------
def test_disabled_mode_returns_no_trace_and_identical_answers(gbco_dataset):
    with _gbco_service(gbco_dataset) as loud:
        with QServer(loud) as loud_server:
            traced = loud_server.query(
                QueryRequest(keywords=_keywords(gbco_dataset))
            )
    with _gbco_service(gbco_dataset, observability=False) as quiet:
        with QServer(quiet) as quiet_server:
            untraced = quiet_server.query(
                QueryRequest(keywords=_keywords(gbco_dataset))
            )
            assert untraced.trace is None
            # Counters still move with tracing off …
            assert quiet.obs.registry.value("q_reads_total") == 1
            # … but no decision, slow-query or span state accumulates.
            assert len(quiet.obs.decisions) == 0
    assert traced.trace is not None
    assert _fingerprint(untraced.answers) == _fingerprint(traced.answers)


def test_noop_bundle_serves_reads_without_any_bookkeeping(gbco_dataset):
    service = _gbco_service(gbco_dataset)
    service.obs = Observability.noop()
    with service:
        with QServer(service) as server:
            result = server.query(QueryRequest(keywords=_keywords(gbco_dataset)))
            assert result.answers
            assert result.trace is None
            assert service.obs.registry.value("q_reads_total") == 0
            assert server.metrics() == ""


# ----------------------------------------------------------------------
# Explain / slow-query logs and writer-lane accounting
# ----------------------------------------------------------------------
def test_decision_log_records_every_ranked_read(gbco_dataset):
    with _gbco_service(gbco_dataset) as service:
        with QServer(service) as server:
            result = server.query(QueryRequest(keywords=_keywords(gbco_dataset)))
            server.query(QueryRequest(view=result.view_id))
            records = service.obs.decisions.records()
            assert len(records) == 2
            assert [record.path for record in records] == [
                result.trace.path,
                "cached",
            ]
            assert records[0].view_id == result.view_id
            assert records[0].snapshot_id == result.snapshot_id
            rendered = service.obs.decisions.last().render()
            assert "path=cached" in rendered
            assert result.view_name in rendered


def test_slow_query_log_captures_above_threshold(gbco_dataset):
    # A zero threshold forces every read into the slow log.
    with _gbco_service(gbco_dataset, slow_query_ms=0.0) as service:
        with QServer(service) as server:
            server.query(QueryRequest(keywords=_keywords(gbco_dataset)))
            assert len(service.obs.slow_log) >= 1
            assert service.obs.registry.value("q_slow_queries_total") >= 1
    # The default threshold keeps a fast read out of it.
    with _gbco_service(gbco_dataset) as service:
        with QServer(service) as server:
            server.query(QueryRequest(view=None, keywords=_keywords(gbco_dataset)))
            assert service.obs.registry.value("q_slow_queries_total") == 0


def test_writer_lane_histograms_and_gauges(gbco_dataset):
    with _gbco_service(gbco_dataset) as service:
        with QServer(service) as server:
            server.create_view(QueryRequest(keywords=_keywords(gbco_dataset)))
            text = server.metrics()
            assert "q_write_apply_seconds_count 1" in text
            assert "q_write_queue_wait_seconds_count 1" in text
            assert "q_writes_applied_total 1" in text
            assert "q_snapshot_id" in text
            assert "q_write_queue_depth 0" in text
            assert server.metrics("json")["q_writes_applied_total"] == 1


# ----------------------------------------------------------------------
# Exposition & SystemStats as a registry view
# ----------------------------------------------------------------------
def test_service_metrics_exposition_formats(gbco_dataset):
    with _gbco_service(gbco_dataset) as service:
        service.answers_page(
            QueryRequest(keywords=_keywords(gbco_dataset))
        )
        text = service.metrics()
        assert "# TYPE q_reads_total counter" in text
        assert "q_reads_total 1" in text
        assert "q_sources" in text
        as_dict = service.metrics("json")
        assert as_dict["q_reads_total"] == 1
        with pytest.raises(InvalidRequestError):
            service.metrics("xml")


def test_system_stats_reads_through_the_registry(gbco_dataset):
    with _gbco_service(gbco_dataset) as service:
        service.answers_page(QueryRequest(keywords=_keywords(gbco_dataset)))
        stats = service.stats()
        value = service.obs.registry.value
        assert stats.sources == int(value("q_sources"))
        assert stats.views == int(value("q_views")) == 1
        assert stats.steiner_cache_builds == int(value("q_steiner_cache_builds_total"))
        assert stats.steiner_cache_builds >= 1
        assert stats.pushdown_union_queries == int(
            value("q_pushdown_union_queries_total")
        )
        # The gauge reads live structures: creating another view moves both.
        service.create_view(QueryRequest(keywords=_keywords(gbco_dataset)[:1]))
        assert service.stats().views == int(value("q_views")) == 2
