"""Registration atomicity: maintained indexes, graph rollback, batch ingest."""

from __future__ import annotations

import pytest

from repro.alignment import ExhaustiveAligner, SourceRegistrar
from repro.alignment.base import BaseAligner
from repro.datastore.database import Catalog, DataSource
from repro.datastore.indexes import TokenIndex, ValueIndex
from repro.exceptions import RegistrationError
from repro.graph import QueryGraphBuilder, SearchGraph
from repro.matching import MetadataMatcher
from repro.profiling import CatalogProfileIndex


class _ExplodingAligner(BaseAligner):
    strategy_name = "exploding"

    def candidate_relations(self, graph, catalog, new_source):
        raise RuntimeError("boom")


@pytest.fixture()
def new_source() -> DataSource:
    return DataSource.build(
        "newdb",
        {"xref": ["entry_ac", "go_ref", "score"]},
        data={
            "xref": [
                {"entry_ac": "IPR001", "go_ref": "GO:0001", "score": "1"},
                {"entry_ac": "IPR002", "go_ref": "GO:0002", "score": "2"},
            ]
        },
    )


class TestSearchGraphRemoval:
    def test_remove_node_drops_incident_edges(self, mini_catalog, mini_graph):
        node_id = mini_graph.attribute_nodes()[0].node_id
        incident = len(mini_graph.edges_of(node_id))
        assert incident > 0
        edges_before = mini_graph.edge_count
        mini_graph.remove_node(node_id)
        assert not mini_graph.has_node(node_id)
        assert mini_graph.edge_count == edges_before - incident

    def test_remove_source_is_inverse_of_add_source(self, mini_graph, new_source):
        nodes_before = mini_graph.node_count
        edges_before = mini_graph.edge_count
        mini_graph.add_source(new_source)
        assert mini_graph.node_count > nodes_before
        mini_graph.remove_source("newdb")
        assert mini_graph.node_count == nodes_before
        assert mini_graph.edge_count == edges_before
        assert not mini_graph.has_node("rel:newdb.xref")


class TestIncrementalIndexes:
    def test_value_index_remove_source_equals_fresh_build(self, mini_catalog, new_source):
        grown = ValueIndex.from_catalog(mini_catalog)
        grown.index_source(new_source)
        assert grown.attributes_with_value("GO:0001") >= {
            ("newdb.xref", "go_ref"),
            ("go.term", "acc"),
        }
        grown.remove_source("newdb")
        fresh = ValueIndex.from_catalog(mini_catalog)
        for table in mini_catalog.all_tables():
            relation = table.schema.qualified_name
            for attr in table.schema.attribute_names:
                assert grown.attribute_values(relation, attr) == fresh.attribute_values(
                    relation, attr
                )
        assert grown.distinct_value_count == fresh.distinct_value_count
        assert ("newdb.xref", "go_ref") not in grown.attributes_with_value("GO:0001")
        assert [o.relation for o in grown.lookup("GO:0001")] == [
            o.relation for o in fresh.lookup("GO:0001")
        ]

    def test_token_index_remove_source_equals_fresh_build(self, mini_catalog, new_source):
        grown = TokenIndex.from_catalog(mini_catalog)
        count_before = grown.document_count
        grown.index_source(new_source)
        assert grown.document_count > count_before
        grown.remove_source("newdb")
        fresh = TokenIndex.from_catalog(mini_catalog)
        assert grown.document_count == fresh.document_count
        for token in ("kinase", "membrane", "entry", "ac", "go"):
            assert grown.document_frequency(token) == fresh.document_frequency(token)

    def test_builder_add_then_remove_source_restores_state(self, mini_catalog, new_source):
        builder = QueryGraphBuilder(mini_catalog)
        docs_before = builder.scorer.document_count
        idf_before = builder.scorer.inverse_document_frequency("entry")
        builder.add_source(new_source)
        assert builder.scorer.document_count > docs_before
        assert builder.value_index.lookup("GO:0001")
        builder.remove_source(new_source)
        assert builder.scorer.document_count == docs_before
        assert builder.scorer.inverse_document_frequency("entry") == idf_before
        assert ("newdb.xref", "go_ref") not in builder.value_index.attributes_with_value(
            "GO:0001"
        )


class TestRegistrarRollback:
    def _registrar(self, mini_catalog, mini_graph):
        profile_index = CatalogProfileIndex.from_catalog(mini_catalog)
        value_index = ValueIndex.from_catalog(mini_catalog)
        token_index = TokenIndex.from_catalog(mini_catalog)
        registrar = SourceRegistrar(
            mini_catalog, mini_graph, indexes=(profile_index, value_index, token_index)
        )
        return registrar, profile_index, value_index, token_index

    def test_successful_registration_updates_all_indexes(
        self, mini_catalog, mini_graph, new_source
    ):
        registrar, profile_index, value_index, token_index = self._registrar(
            mini_catalog, mini_graph
        )
        registrar.register(new_source, ExhaustiveAligner(MetadataMatcher()))
        assert mini_catalog.has_source("newdb")
        assert profile_index.has_relation("newdb.xref")
        assert value_index.attribute_values("newdb.xref", "go_ref")
        assert token_index.tokens("attribute:newdb.xref.entry_ac")

    def test_failure_rolls_back_catalog_graph_and_indexes(
        self, mini_catalog, mini_graph, new_source
    ):
        registrar, profile_index, value_index, token_index = self._registrar(
            mini_catalog, mini_graph
        )
        nodes_before = mini_graph.node_count
        edges_before = mini_graph.edge_count
        docs_before = token_index.document_count
        values_before = value_index.distinct_value_count
        with pytest.raises(RuntimeError):
            registrar.register(new_source, _ExplodingAligner(MetadataMatcher()))
        assert not mini_catalog.has_source("newdb")
        assert mini_graph.node_count == nodes_before
        assert mini_graph.edge_count == edges_before
        assert not profile_index.has_relation("newdb.xref")
        assert value_index.distinct_value_count == values_before
        assert token_index.document_count == docs_before
        assert registrar.epoch == 0

    def test_registration_succeeds_after_a_failed_attempt(
        self, mini_catalog, mini_graph, new_source
    ):
        registrar, profile_index, _, _ = self._registrar(mini_catalog, mini_graph)
        with pytest.raises(RuntimeError):
            registrar.register(new_source, _ExplodingAligner(MetadataMatcher()))
        result = registrar.register(new_source, ExhaustiveAligner(MetadataMatcher()))
        assert result.new_source == "newdb"
        assert profile_index.has_relation("newdb.xref")
        assert registrar.registered_sources() == ["newdb"]

    def test_duplicate_registration_is_rejected_before_mutation(
        self, mini_catalog, mini_graph, new_source
    ):
        registrar, *_ = self._registrar(mini_catalog, mini_graph)
        registrar.register(new_source, ExhaustiveAligner(MetadataMatcher()))
        with pytest.raises(RegistrationError):
            registrar.register(new_source, ExhaustiveAligner(MetadataMatcher()))
        assert registrar.registered_sources() == ["newdb"]


class TestRegisterBatch:
    def _second_source(self) -> DataSource:
        return DataSource.build(
            "otherdb",
            {"links": ["go_ref", "label"]},
            data={"links": [{"go_ref": "GO:0002", "label": "nucleus"}]},
        )

    def test_batch_admits_all_then_aligns(self, mini_catalog, mini_graph, new_source):
        registrar, profile_index, *_ = TestRegistrarRollback()._registrar(
            mini_catalog, mini_graph
        )
        other = self._second_source()
        results = registrar.register_batch(
            [new_source, other],
            [ExhaustiveAligner(MetadataMatcher()), ExhaustiveAligner(MetadataMatcher())],
        )
        assert [r.new_source for r in results] == ["newdb", "otherdb"]
        assert registrar.registered_sources() == ["newdb", "otherdb"]
        assert profile_index.has_relation("newdb.xref")
        assert profile_index.has_relation("otherdb.links")
        # Batch members are visible to each other's alignment.
        assert "newdb.xref" in results[1].candidate_relations

    def test_batch_failure_rolls_back_every_member(
        self, mini_catalog, mini_graph, new_source
    ):
        registrar, profile_index, value_index, token_index = TestRegistrarRollback()._registrar(
            mini_catalog, mini_graph
        )
        nodes_before = mini_graph.node_count
        other = self._second_source()
        with pytest.raises(RuntimeError):
            registrar.register_batch(
                [new_source, other],
                [ExhaustiveAligner(MetadataMatcher()), _ExplodingAligner(MetadataMatcher())],
            )
        assert not mini_catalog.has_source("newdb")
        assert not mini_catalog.has_source("otherdb")
        assert mini_graph.node_count == nodes_before
        assert not profile_index.has_relation("newdb.xref")
        assert not profile_index.has_relation("otherdb.links")
        assert registrar.registered_sources() == []

    def test_batch_aligner_factories_resolve_after_admission(
        self, mini_catalog, mini_graph, new_source
    ):
        # A factory entry must be invoked only once every batch member is
        # admitted, so construction-time snapshots (e.g. the view-based
        # strategy's neighborhood graph) see the whole batch.
        registrar, *_ = TestRegistrarRollback()._registrar(mini_catalog, mini_graph)
        other = self._second_source()
        observed = {}

        def factory():
            observed["newdb"] = mini_catalog.has_source("newdb")
            observed["otherdb"] = mini_catalog.has_source("otherdb")
            return ExhaustiveAligner(MetadataMatcher())

        results = registrar.register_batch(
            [new_source, other], [factory, ExhaustiveAligner(MetadataMatcher())]
        )
        assert observed == {"newdb": True, "otherdb": True}
        assert [r.new_source for r in results] == ["newdb", "otherdb"]

    def test_batch_validates_before_mutating(self, mini_catalog, mini_graph, new_source):
        registrar, *_ = TestRegistrarRollback()._registrar(mini_catalog, mini_graph)
        with pytest.raises(RegistrationError):
            registrar.register_batch(
                [new_source, new_source],
                [ExhaustiveAligner(MetadataMatcher()), ExhaustiveAligner(MetadataMatcher())],
            )
        assert not mini_catalog.has_source("newdb")
        with pytest.raises(RegistrationError):
            registrar.register_batch([new_source], [])
