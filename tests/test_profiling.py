"""Unit tests for the profiling subsystem (profiles + CatalogProfileIndex)."""

from __future__ import annotations

import math

import pytest

from repro.datastore.database import Catalog, DataSource
from repro.datastore.indexes import ValueIndex
from repro.profiling import (
    AttributeProfile,
    CatalogProfileIndex,
    profile_table,
    schema_fingerprint,
)


@pytest.fixture()
def index(mini_catalog) -> CatalogProfileIndex:
    return CatalogProfileIndex.from_catalog(mini_catalog)


class TestProfileTable:
    def test_attribute_profiles_match_table_state(self, mini_catalog):
        table = mini_catalog.relation("go.term")
        relation_profile, attributes = profile_table(table)
        assert relation_profile.relation == "go.term"
        assert relation_profile.attribute_names == ("acc", "name")
        assert relation_profile.fingerprint == schema_fingerprint(table)
        acc = attributes["acc"]
        assert acc.distinct_values == table.distinct_values("acc")
        assert acc.row_count == len(table)
        assert acc.non_null_count == 3
        assert acc.distinct_count == 3
        assert acc.selectivity == 1.0
        assert "acc" in acc.name_tokens

    def test_value_tokens_cover_cell_tokens(self, mini_catalog):
        table = mini_catalog.relation("go.term")
        _, attributes = profile_table(table)
        assert "membrane" in attributes["name"].value_tokens
        assert "kinase" in attributes["name"].value_tokens

    def test_name_token_union_is_sibling_union(self, mini_catalog):
        table = mini_catalog.relation("interpro.interpro2go")
        relation_profile, attributes = profile_table(table)
        union = set()
        for profile in attributes.values():
            union |= profile.name_tokens
        assert relation_profile.name_token_union == union


class TestCatalogProfileIndex:
    def test_counts(self, mini_catalog, index):
        assert index.relation_count == mini_catalog.relation_count
        assert index.attribute_count == mini_catalog.attribute_count
        assert index.has_relation("go.term")
        assert not index.has_relation("nope.nope")

    def test_overlap_parity_with_value_index(self, mini_catalog, index):
        value_index = ValueIndex.from_catalog(mini_catalog)
        attrs = [
            (t.schema.qualified_name, a)
            for t in mini_catalog.all_tables()
            for a in t.schema.attribute_names
        ]
        for rel_a, attr_a in attrs:
            for rel_b, attr_b in attrs:
                assert index.overlap(rel_a, attr_a, rel_b, attr_b) == value_index.overlap(
                    rel_a, attr_a, rel_b, attr_b
                )

    def test_value_candidates_match_bruteforce(self, mini_catalog, index):
        tables = mini_catalog.all_tables()
        for table in tables:
            relation = table.schema.qualified_name
            for attribute in table.schema.attribute_names:
                expected = {}
                mine = table.distinct_values(attribute)
                for other in tables:
                    other_relation = other.schema.qualified_name
                    for other_attr in other.schema.attribute_names:
                        if (other_relation, other_attr) == (relation, attribute):
                            continue
                        shared = len(mine & other.distinct_values(other_attr))
                        if shared:
                            expected[(other_relation, other_attr)] = shared
                assert index.value_candidates(relation, attribute) == expected

    def test_candidate_cache_revalidates_on_epoch(self, mini_catalog, index):
        first = index.value_candidates("go.term", "acc")
        assert index.value_candidates("go.term", "acc") is first  # memo hit
        extra = DataSource.build(
            "extra", {"t": ["go_ref"]}, data={"t": [{"go_ref": "GO:0001"}]}
        )
        index.index_source(extra)
        second = index.value_candidates("go.term", "acc")
        assert ("extra.t", "go_ref") in second

    def test_comparable_pair_count_matches_nested_loop(self, mini_catalog, index):
        tables = mini_catalog.all_tables()
        for min_shared in (1, 2):
            for table_a in tables:
                for table_b in tables:
                    if table_a is table_b:
                        continue
                    rel_a = table_a.schema.qualified_name
                    rel_b = table_b.schema.qualified_name
                    expected = 0
                    for attr_a in table_a.schema.attribute_names:
                        for attr_b in table_b.schema.attribute_names:
                            if index.overlap(rel_a, attr_a, rel_b, attr_b) >= min_shared:
                                expected += 1
                    assert (
                        index.comparable_pair_count(rel_a, rel_b, min_shared) == expected
                    )

    def test_remove_source_equals_fresh_build(self, mini_catalog):
        full = CatalogProfileIndex.from_catalog(mini_catalog)
        full.remove_source("interpro")
        fresh = CatalogProfileIndex.from_tables(
            mini_catalog.source("go").tables()
        )
        assert full.relation_count == fresh.relation_count
        assert full.attribute_count == fresh.attribute_count
        assert full.distinct_value_count == fresh.distinct_value_count
        assert not full.has_relation("interpro.entry")
        assert full.value_candidates("go.term", "acc") == fresh.value_candidates(
            "go.term", "acc"
        )

    def test_reindexing_a_mutated_table_replaces_the_profile(self, mini_catalog, index):
        table = mini_catalog.relation("go.term")
        assert index.is_current(table)
        table.append({"acc": "GO:0009", "name": "ribosome"})
        assert not index.is_current(table)
        index.index_table(table)
        assert index.is_current(table)
        assert "go:0009" in {
            v.lower() for v in index.profile("go.term", "acc").distinct_values
        }

    def test_epoch_moves_on_every_structural_change(self, index, mini_catalog):
        before = index.epoch
        extra = DataSource.build("x", {"t": ["a"]}, data={"t": [{"a": "1"}]})
        index.index_source(extra)
        assert index.epoch > before
        mid = index.epoch
        index.remove_source("x")
        assert index.epoch > mid


class TestTfIdfVectors:
    def test_content_tfidf_is_l2_normalized(self, index):
        vector = index.content_tfidf("go.term", "name")
        assert vector
        norm = math.sqrt(sum(w * w for w in vector.values()))
        assert norm == pytest.approx(1.0)

    def test_content_similarity_bounds_and_identity(self, index):
        same = index.content_similarity("go.term", "acc", "go.term", "acc")
        assert same == pytest.approx(1.0)
        cross = index.content_similarity("go.term", "acc", "interpro.interpro2go", "go_id")
        assert 0.0 < cross <= 1.0 + 1e-9
        unrelated = index.content_similarity("go.term", "acc", "interpro.pub", "title")
        assert unrelated < cross

    def test_unknown_attribute_has_empty_vector(self, index):
        assert index.content_tfidf("go.term", "missing") == {}
        assert index.content_similarity("go.term", "missing", "go.term", "acc") == 0.0

    def test_token_postings_and_document_frequency_agree(self, index):
        postings = index.token_postings("membrane")
        assert ("go.term", "name") in postings
        assert index.token_document_frequency("membrane") == len(postings)
        assert index.token_postings("no_such_token") == ()


class TestPairMemo:
    def test_get_put_and_counters(self, index):
        key = ("m", (1.0,), ("a", ("x",)), ("b", ("y",)))
        assert index.pair_memo_get(key) is None
        assert index.pair_cache_misses == 1
        index.pair_memo_put(key, (1, 2, 3))
        assert index.pair_memo_get(key) == (1, 2, 3)
        assert index.pair_cache_hits == 1
