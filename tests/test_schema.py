"""Unit tests for schema objects: attributes, relations, sources, foreign keys."""

from __future__ import annotations

import pytest

from repro.datastore.schema import (
    Attribute,
    ForeignKey,
    RelationSchema,
    SourceSchema,
    qualified_name,
    split_qualified,
)
from repro.datastore.types import ValueType
from repro.exceptions import SchemaError, UnknownAttributeError


class TestAttribute:
    def test_defaults(self):
        attr = Attribute("go_id")
        assert attr.value_type is ValueType.STRING
        assert attr.description == ""

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_renamed(self):
        attr = Attribute("go_id", ValueType.IDENTIFIER, "accession")
        renamed = attr.renamed("acc")
        assert renamed.name == "acc"
        assert renamed.value_type is ValueType.IDENTIFIER
        assert renamed.description == "accession"


class TestQualifiedNames:
    def test_roundtrip(self):
        name = qualified_name("interpro", "entry", "name")
        assert name == "interpro.entry.name"
        assert split_qualified(name) == ("interpro", "entry", "name")


class TestRelationSchema:
    def test_string_attributes_promoted(self):
        rel = RelationSchema("entry", ["entry_ac", "name"])
        assert rel.attribute_names == ("entry_ac", "name")
        assert all(isinstance(a, Attribute) for a in rel.attributes)

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("entry", ["a", "a"])

    def test_empty_relation_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("entry", [])

    def test_unknown_attribute(self):
        rel = RelationSchema("entry", ["entry_ac"])
        with pytest.raises(UnknownAttributeError):
            rel.attribute("missing")
        assert not rel.has_attribute("missing")

    def test_attribute_index(self):
        rel = RelationSchema("entry", ["a", "b", "c"])
        assert rel.attribute_index("b") == 1
        with pytest.raises(UnknownAttributeError):
            rel.attribute_index("z")

    def test_primary_key_validated(self):
        with pytest.raises(SchemaError):
            RelationSchema("entry", ["a"], primary_key=["missing"])
        rel = RelationSchema("entry", ["a", "b"], primary_key=["a"])
        assert rel.primary_key == ("a",)

    def test_qualified_names(self):
        rel = RelationSchema("entry", ["entry_ac"], source="interpro")
        assert rel.qualified_name == "interpro.entry"
        assert rel.qualified_attribute("entry_ac") == "interpro.entry.entry_ac"
        assert rel.qualified_attribute_names() == ("interpro.entry.entry_ac",)

    def test_unbound_qualified_name(self):
        rel = RelationSchema("entry", ["a"])
        assert rel.qualified_name == "entry"
        rel.bind_source("interpro")
        assert rel.qualified_name == "interpro.entry"

    def test_equality_and_hash(self):
        a = RelationSchema("entry", ["x"], source="s")
        b = RelationSchema("entry", ["x"], source="s")
        c = RelationSchema("entry", ["y"], source="s")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_container_protocol(self):
        rel = RelationSchema("entry", ["a", "b"])
        assert "a" in rel
        assert "z" not in rel
        assert len(rel) == 2
        assert [attr.name for attr in rel] == ["a", "b"]


class TestSourceSchema:
    def test_add_relation_binds_source(self):
        source = SourceSchema("interpro")
        rel = source.add_relation(RelationSchema("entry", ["entry_ac"]))
        assert rel.source == "interpro"
        assert source.relation("entry") is rel

    def test_duplicate_relation_rejected(self):
        source = SourceSchema("interpro")
        source.add_relation(RelationSchema("entry", ["a"]))
        with pytest.raises(SchemaError):
            source.add_relation(RelationSchema("entry", ["b"]))

    def test_unknown_relation(self):
        source = SourceSchema("interpro")
        with pytest.raises(SchemaError):
            source.relation("missing")

    def test_foreign_key_validation(self):
        source = SourceSchema("interpro")
        source.add_relation(RelationSchema("entry", ["entry_ac"]))
        source.add_relation(RelationSchema("entry2pub", ["entry_ac", "pub_id"]))
        fk = source.add_foreign_key(ForeignKey("entry2pub", "entry_ac", "entry", "entry_ac"))
        assert fk in source.foreign_keys
        with pytest.raises(SchemaError):
            source.add_foreign_key(ForeignKey("entry2pub", "missing", "entry", "entry_ac"))
        with pytest.raises(SchemaError):
            source.add_foreign_key(ForeignKey("nope", "x", "entry", "entry_ac"))

    def test_attribute_count_and_all_attributes(self):
        source = SourceSchema("s")
        source.add_relation(RelationSchema("r1", ["a", "b"]))
        source.add_relation(RelationSchema("r2", ["c"]))
        assert source.attribute_count == 3
        assert len(source.all_attributes()) == 3
        assert len(source) == 2
        assert source.relation_names() == ("r1", "r2")

    def test_empty_source_name_rejected(self):
        with pytest.raises(SchemaError):
            SourceSchema("")


class TestForeignKey:
    def test_reversed(self):
        fk = ForeignKey("a", "x", "b", "y")
        rev = fk.reversed()
        assert rev.source_relation == "b"
        assert rev.target_attribute == "x"
        assert fk.as_tuple() == ("a", "x", "b", "y")
