"""Steiner-tree algorithms for keyword query interpretation.

Public API
----------
* :class:`SteinerTree` — value object for a tree plus its cost.
* :func:`exact_steiner_tree` — Dreyfus–Wagner exact DP (small terminal sets).
* :func:`approximate_steiner_tree` — distance-network 2-approximation.
* :class:`KBestSteiner`, :func:`k_best_steiner_trees` — top-k enumeration
  (``KBESTSTEINER`` of Algorithm 4).
* :func:`default_solver` — exact-or-approximate dispatch used by the system.
* :class:`SteinerNetwork` — reusable integer-indexed graph snapshot the
  solvers (and the top-k enumerator) run on.
"""

from .approx import approximate_steiner_tree
from .exact import exact_steiner_tree
from .network import SteinerNetwork
from .topk import KBestSteiner, default_solver, k_best_steiner_trees
from .tree import SteinerTree, validate_terminals

__all__ = [
    "KBestSteiner",
    "SteinerNetwork",
    "SteinerTree",
    "approximate_steiner_tree",
    "default_solver",
    "exact_steiner_tree",
    "k_best_steiner_trees",
    "validate_terminals",
]
