"""Steiner tree representation.

A Steiner tree for a keyword query is a tree in the query graph whose leaves
include all keyword (terminal) nodes; its cost is the sum of its edge costs
under the current weight vector.  Each tree is later translated into one
conjunctive query (paper Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..exceptions import SteinerError
from ..graph.search_graph import SearchGraph


@dataclass(frozen=True)
class SteinerTree:
    """An (edge-set, terminal-set) pair with its cost.

    Trees are value objects: two trees with the same edge set are equal
    regardless of the order edges were discovered in.
    """

    edge_ids: FrozenSet[str]
    terminals: FrozenSet[str]
    cost: float

    @classmethod
    def from_edges(
        cls, graph: SearchGraph, edge_ids: Iterable[str], terminals: Iterable[str]
    ) -> "SteinerTree":
        """Build a tree from edge ids, computing its cost from ``graph``."""
        edge_ids = frozenset(edge_ids)
        cost = sum(graph.edge_cost_by_id(edge_id) for edge_id in edge_ids)
        return cls(edge_ids=edge_ids, terminals=frozenset(terminals), cost=cost)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def nodes(self, graph: SearchGraph) -> Set[str]:
        """All node ids covered by the tree's edges (plus isolated terminals)."""
        nodes: Set[str] = set(self.terminals)
        for edge_id in self.edge_ids:
            edge = graph.edge(edge_id)
            nodes.add(edge.u)
            nodes.add(edge.v)
        return nodes

    def edges(self, graph: SearchGraph):
        """The tree's :class:`~repro.graph.edges.Edge` objects."""
        return [graph.edge(edge_id) for edge_id in self.edge_ids]

    def recost(self, graph: SearchGraph) -> "SteinerTree":
        """Return the same tree re-costed under the graph's current weights."""
        return SteinerTree.from_edges(graph, self.edge_ids, self.terminals)

    def contains_relation(self, graph: SearchGraph, qualified_relation: str) -> bool:
        """Whether the tree touches any node of ``qualified_relation``."""
        for node_id in self.nodes(graph):
            node = graph.node(node_id)
            if node.relation == qualified_relation:
                return True
        return False

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def is_connected_tree(self, graph: SearchGraph) -> bool:
        """Check the edge set forms a connected acyclic subgraph spanning the terminals."""
        if not self.edge_ids:
            return len(self.terminals) <= 1
        nodes = self.nodes(graph)
        # |E| == |V| - 1 is the acyclicity condition for a connected graph.
        if len(self.edge_ids) != len(nodes) - 1:
            return False
        adjacency: Dict[str, List[str]] = {node: [] for node in nodes}
        for edge_id in self.edge_ids:
            edge = graph.edge(edge_id)
            adjacency[edge.u].append(edge.v)
            adjacency[edge.v].append(edge.u)
        start = next(iter(nodes))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        if seen != nodes:
            return False
        return self.terminals <= nodes

    def symmetric_edge_difference(self, other: "SteinerTree") -> int:
        """``|E(T) \\ E(T')| + |E(T') \\ E(T)|`` — the loss of Equation 2."""
        return len(self.edge_ids ^ other.edge_ids)

    def __lt__(self, other: "SteinerTree") -> bool:
        return (self.cost, sorted(self.edge_ids)) < (other.cost, sorted(other.edge_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SteinerTree(cost={self.cost:.3f}, edges={len(self.edge_ids)})"


def validate_terminals(graph: SearchGraph, terminals: Sequence[str]) -> Tuple[str, ...]:
    """Check every terminal exists in the graph; returns the deduplicated tuple."""
    unique: List[str] = []
    seen: Set[str] = set()
    for terminal in terminals:
        if not graph.has_node(terminal):
            raise SteinerError(f"terminal {terminal!r} is not a node of the graph")
        if terminal not in seen:
            seen.add(terminal)
            unique.append(terminal)
    if not unique:
        raise SteinerError("at least one terminal is required")
    return tuple(unique)
