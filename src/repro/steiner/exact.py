"""Exact Steiner tree computation (Dreyfus–Wagner dynamic program).

Used at small scales — the paper runs "an exact algorithm at small scales,
and an approximation algorithm at larger scales".  The Dreyfus–Wagner DP is
exponential in the number of terminals (``O(3^t · n + 2^t · n^2)`` with
Dijkstra inner loops) but the keyword queries of interest have 2–5 keywords,
where it is perfectly practical.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..exceptions import SteinerError
from ..graph.search_graph import SearchGraph
from .tree import SteinerTree, validate_terminals


def _edge_lists(graph: SearchGraph) -> Dict[str, List[Tuple[str, str, float]]]:
    """Adjacency as node -> [(neighbor, edge_id, cost)]."""
    adjacency: Dict[str, List[Tuple[str, str, float]]] = {n.node_id: [] for n in graph.nodes()}
    for edge in graph.edges():
        cost = graph.edge_cost(edge)
        adjacency[edge.u].append((edge.v, edge.edge_id, cost))
        adjacency[edge.v].append((edge.u, edge.edge_id, cost))
    return adjacency


def _shortest_paths_from(
    adjacency: Dict[str, List[Tuple[str, str, float]]], source: str
) -> Tuple[Dict[str, float], Dict[str, Tuple[str, str]]]:
    """Dijkstra returning distances and predecessor (node, edge) pairs."""
    distances: Dict[str, float] = {source: 0.0}
    predecessors: Dict[str, Tuple[str, str]] = {}
    heap: List[Tuple[float, str]] = [(0.0, source)]
    while heap:
        dist, node = heapq.heappop(heap)
        if dist > distances.get(node, float("inf")):
            continue
        for neighbor, edge_id, cost in adjacency[node]:
            candidate = dist + cost
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                predecessors[neighbor] = (node, edge_id)
                heapq.heappush(heap, (candidate, neighbor))
    return distances, predecessors


def _path_edges(predecessors: Dict[str, Tuple[str, str]], target: str) -> Set[str]:
    """Reconstruct the edge set of the shortest path ending at ``target``."""
    edges: Set[str] = set()
    node = target
    while node in predecessors:
        previous, edge_id = predecessors[node]
        edges.add(edge_id)
        node = previous
    return edges


def exact_steiner_tree(
    graph: SearchGraph, terminals: Sequence[str], max_terminals: int = 8
) -> SteinerTree:
    """Compute a minimum-cost Steiner tree connecting ``terminals``.

    Parameters
    ----------
    graph:
        The query graph.
    terminals:
        Node ids that must appear in the tree.
    max_terminals:
        Guard: the DP is exponential in the number of terminals, so calls
        with more terminals than this raise :class:`SteinerError` (callers
        should fall back to the approximation algorithm).

    Raises
    ------
    SteinerError
        If the terminals cannot be connected, or there are too many of them.
    """
    terminals = validate_terminals(graph, terminals)
    if len(terminals) > max_terminals:
        raise SteinerError(
            f"exact Steiner tree limited to {max_terminals} terminals; got {len(terminals)}"
        )
    if len(terminals) == 1:
        return SteinerTree(frozenset(), frozenset(terminals), 0.0)

    adjacency = _edge_lists(graph)
    all_nodes = list(adjacency.keys())

    # Single-source shortest paths from every node would be wasteful; the DP
    # only needs paths *to* arbitrary nodes *from* nodes already carrying
    # partial trees, which we realize by running Dijkstra on a "virtual"
    # graph during the merge step.  For clarity (graphs here are modest) we
    # instead precompute shortest paths from every node that can appear as a
    # DP state root: every node in the graph.
    #
    # dp[(subset, v)] = (cost, edge_set) of the cheapest tree spanning
    # ``subset`` of terminals plus node ``v``.
    terminal_list = list(terminals)
    terminal_index = {t: i for i, t in enumerate(terminal_list)}
    full_mask = (1 << len(terminal_list)) - 1

    INF = float("inf")
    dp_cost: Dict[Tuple[int, str], float] = {}
    dp_edges: Dict[Tuple[int, str], FrozenSet[str]] = {}

    # Base cases: singleton subsets = shortest path from the terminal to v.
    sp_cache: Dict[str, Tuple[Dict[str, float], Dict[str, Tuple[str, str]]]] = {}

    def shortest_from(node: str):
        if node not in sp_cache:
            sp_cache[node] = _shortest_paths_from(adjacency, node)
        return sp_cache[node]

    for terminal in terminal_list:
        mask = 1 << terminal_index[terminal]
        distances, predecessors = shortest_from(terminal)
        for v in all_nodes:
            if v in distances:
                dp_cost[(mask, v)] = distances[v]
                dp_edges[(mask, v)] = frozenset(_path_edges(predecessors, v))

    # Iterate over subsets in increasing popcount order.
    subsets = sorted(range(1, full_mask + 1), key=lambda m: bin(m).count("1"))
    for subset in subsets:
        if bin(subset).count("1") < 2:
            continue
        # Merge step: dp[subset][v] = min over proper sub-splits.
        for v in all_nodes:
            best_cost = dp_cost.get((subset, v), INF)
            best_edges = dp_edges.get((subset, v))
            sub = (subset - 1) & subset
            while sub > 0:
                other = subset ^ sub
                if sub < other:  # consider each unordered split once
                    cost_a = dp_cost.get((sub, v), INF)
                    cost_b = dp_cost.get((other, v), INF)
                    if cost_a + cost_b < best_cost:
                        best_cost = cost_a + cost_b
                        best_edges = dp_edges[(sub, v)] | dp_edges[(other, v)]
                sub = (sub - 1) & subset
            if best_edges is not None and best_cost < INF:
                dp_cost[(subset, v)] = best_cost
                dp_edges[(subset, v)] = frozenset(best_edges)

        # Grow step: connect the merged tree to other nodes via shortest paths.
        # dp[subset][u] = min_v dp[subset][v] + dist(v, u), realized with a
        # Dijkstra seeded with the current dp values.
        heap: List[Tuple[float, str]] = []
        current: Dict[str, float] = {}
        origin: Dict[str, str] = {}
        for v in all_nodes:
            cost = dp_cost.get((subset, v), INF)
            if cost < INF:
                current[v] = cost
                origin[v] = v
                heapq.heappush(heap, (cost, v))
        predecessors: Dict[str, Tuple[str, str]] = {}
        while heap:
            dist, node = heapq.heappop(heap)
            if dist > current.get(node, INF):
                continue
            for neighbor, edge_id, cost in adjacency[node]:
                candidate = dist + cost
                if candidate < current.get(neighbor, INF):
                    current[neighbor] = candidate
                    origin[neighbor] = origin[node]
                    predecessors[neighbor] = (node, edge_id)
                    heapq.heappush(heap, (candidate, neighbor))
        for node, cost in current.items():
            if cost < dp_cost.get((subset, node), INF):
                root = origin[node]
                path = _path_edges(predecessors, node)
                dp_cost[(subset, node)] = cost
                dp_edges[(subset, node)] = frozenset(dp_edges[(subset, root)] | path)

    # The answer is the cheapest tree spanning all terminals rooted anywhere;
    # rooting at the first terminal is sufficient because it is in the set.
    root = terminal_list[0]
    key = (full_mask, root)
    if key not in dp_cost:
        raise SteinerError("terminals are not connected in the graph")
    return SteinerTree.from_edges(graph, dp_edges[key], terminals)
