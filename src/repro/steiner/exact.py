"""Exact Steiner tree computation (Dreyfus–Wagner dynamic program).

Used at small scales — the paper runs "an exact algorithm at small scales,
and an approximation algorithm at larger scales".  The Dreyfus–Wagner DP is
exponential in the number of terminals (``O(3^t · n + 2^t · n^2)`` with
Dijkstra inner loops) but the keyword queries of interest have 2–5 keywords,
where it is perfectly practical.

The algorithm itself lives in :class:`~repro.steiner.network.SteinerNetwork`
so that the top-k enumerator can snapshot the graph (node/edge indexing and
edge costs) once and re-solve under many edge-exclusion sets; this module
keeps the stable one-shot functional entry point.
"""

from __future__ import annotations

from typing import Sequence

from ..graph.search_graph import SearchGraph
from .network import SteinerNetwork
from .tree import SteinerTree


def exact_steiner_tree(
    graph: SearchGraph, terminals: Sequence[str], max_terminals: int = 8
) -> SteinerTree:
    """Compute a minimum-cost Steiner tree connecting ``terminals``.

    Parameters
    ----------
    graph:
        The query graph.
    terminals:
        Node ids that must appear in the tree.
    max_terminals:
        Guard: the DP is exponential in the number of terminals, so calls
        with more terminals than this raise :class:`SteinerError` (callers
        should fall back to the approximation algorithm).

    Raises
    ------
    DisconnectedTerminalsError
        If the terminals cannot be connected.
    SteinerError
        If there are too many terminals for the exact DP.
    """
    return SteinerNetwork(graph).exact_tree(terminals, max_terminals=max_terminals)
