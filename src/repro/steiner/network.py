"""A reusable, integer-indexed snapshot of a graph for Steiner solving.

The k-best enumerator (:mod:`repro.steiner.topk`) re-solves the Steiner
problem dozens of times per call on graphs that differ only by a handful of
*excluded* edges.  The seed implementation copied the whole
:class:`~repro.graph.search_graph.SearchGraph` for every exclusion set and
re-derived every edge cost (a weight-vector dot product per edge) from
scratch inside each solve.

:class:`SteinerNetwork` lifts that work out of the solver loop: it snapshots
the graph once — nodes and edges mapped to dense integer indexes, every edge
cost evaluated once — and both solvers then run over plain lists, taking the
exclusion set as an argument instead of requiring a mutated graph copy.

Parity note: heap entries carry the node-id *string* as the tie-breaker so
that Dijkstra pop order — and therefore every equal-cost tie-break — is
bit-identical to the seed implementation.
"""

from __future__ import annotations

import heapq
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..exceptions import DisconnectedTerminalsError, SteinerError
from ..graph.search_graph import SearchGraph
from .tree import SteinerTree, validate_terminals

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.budget import Budget

_EMPTY: FrozenSet[int] = frozenset()


class SteinerNetwork:
    """Immutable solving substrate built once from a :class:`SearchGraph`.

    The snapshot reflects the graph's structure and edge costs at
    construction time; callers must rebuild after the graph or its weight
    vector changes (the k-best enumerator builds one per ``solve`` call).
    """

    __slots__ = ("graph", "node_ids", "node_index", "edge_ids", "edge_index", "edge_costs", "adjacency")

    def __init__(self, graph: SearchGraph) -> None:
        self.graph = graph
        self.node_ids: List[str] = [node.node_id for node in graph.nodes()]
        self.node_index: Dict[str, int] = {nid: i for i, nid in enumerate(self.node_ids)}
        edges = graph.edges()
        self.edge_ids: List[str] = [edge.edge_id for edge in edges]
        self.edge_index: Dict[str, int] = {eid: i for i, eid in enumerate(self.edge_ids)}
        self.edge_costs: List[float] = [graph.edge_cost(edge) for edge in edges]
        # node index -> [(neighbor index, edge index, cost)]
        self.adjacency: List[List[Tuple[int, int, float]]] = [[] for _ in self.node_ids]
        for idx, edge in enumerate(edges):
            u = self.node_index[edge.u]
            v = self.node_index[edge.v]
            cost = self.edge_costs[idx]
            self.adjacency[u].append((v, idx, cost))
            self.adjacency[v].append((u, idx, cost))

    # ------------------------------------------------------------------
    # Topology-sharing rescore
    # ------------------------------------------------------------------
    def rescored(
        self,
        graph: SearchGraph,
        changed_features: "Optional[AbstractSet[str]]" = None,
    ) -> "SteinerNetwork":
        """A snapshot of ``graph`` that reuses this network's topology.

        ``graph`` must be a structural twin of this snapshot's graph — same
        nodes and the *same edge objects* in the same order (the shape
        :func:`~repro.learning.overlays.graph_with_weights` produces for
        per-tenant pricing) — differing only in its weight vector.  The
        caller is responsible for that guarantee; the engine's network cache
        verifies it by edge-object identity before calling here.

        The integer index maps are shared outright (they depend only on
        topology).  Costs are re-derived under ``graph``'s weights; with
        ``changed_features`` given — e.g. a tenant overlay's sparse shadow —
        only edges carrying at least one changed feature are re-priced, and
        every other edge keeps this snapshot's cost verbatim.  For a sparse
        overlay that turns an O(edges) pass of feature dot products into a
        handful, which is what makes per-tenant solving cheap at scale.
        """
        clone = object.__new__(SteinerNetwork)
        clone.graph = graph
        clone.node_ids = self.node_ids
        clone.node_index = self.node_index
        clone.edge_ids = self.edge_ids
        clone.edge_index = self.edge_index
        if changed_features is None:
            costs = [graph.edge_cost_by_id(eid) for eid in self.edge_ids]
        else:
            costs = list(self.edge_costs)
            if changed_features:
                for idx, eid in enumerate(self.edge_ids):
                    edge = graph.edge(eid)
                    if not changed_features.isdisjoint(edge.features):
                        costs[idx] = graph.edge_cost(edge)
        clone.edge_costs = costs
        clone.adjacency = [
            [(neighbor, edge_idx, costs[edge_idx]) for neighbor, edge_idx, _ in entries]
            for entries in self.adjacency
        ]
        return clone

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def edge_indexes(self, edge_ids: Iterable[str]) -> FrozenSet[int]:
        """Map edge-id strings to this snapshot's indexes (unknown ids skipped)."""
        index = self.edge_index
        return frozenset(index[eid] for eid in edge_ids if eid in index)

    def _tree_from_indexes(self, edge_idxs: Iterable[int], terminals: Sequence[str]) -> SteinerTree:
        # Recost through the graph (as the seed solvers did) so tree costs
        # stay bit-identical with trees built elsewhere.
        return SteinerTree.from_edges(
            self.graph, (self.edge_ids[i] for i in edge_idxs), terminals
        )

    # ------------------------------------------------------------------
    # Dijkstra over the snapshot
    # ------------------------------------------------------------------
    def _dijkstra(
        self,
        source: int,
        excluded: AbstractSet[int],
        budget: "Optional[Budget]" = None,
    ) -> Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]:
        """Distances and predecessor ``(node, edge)`` pairs from ``source``."""
        INF = float("inf")
        node_ids = self.node_ids
        adjacency = self.adjacency
        distances: Dict[int, float] = {source: 0.0}
        predecessors: Dict[int, Tuple[int, int]] = {}
        heap: List[Tuple[float, str, int]] = [(0.0, node_ids[source], source)]
        while heap:
            if budget is not None:
                budget.tick("dijkstra")
            dist, _, node = heapq.heappop(heap)
            if dist > distances.get(node, INF):
                continue
            for neighbor, edge_idx, cost in adjacency[node]:
                if edge_idx in excluded:
                    continue
                candidate = dist + cost
                if candidate < distances.get(neighbor, INF):
                    distances[neighbor] = candidate
                    predecessors[neighbor] = (node, edge_idx)
                    heapq.heappush(heap, (candidate, node_ids[neighbor], neighbor))
        return distances, predecessors

    @staticmethod
    def _path_edges(predecessors: Dict[int, Tuple[int, int]], target: int) -> Set[int]:
        edges: Set[int] = set()
        node = target
        while node in predecessors:
            previous, edge_idx = predecessors[node]
            edges.add(edge_idx)
            node = previous
        return edges

    @staticmethod
    def _all_path_edge_sets(
        predecessors: Dict[int, Tuple[int, int]]
    ) -> Dict[int, FrozenSet[int]]:
        """Path edge set for *every* node of a shortest-path tree.

        Equivalent to calling :meth:`_path_edges` per node, but each node's
        set is derived from its predecessor's set with a single union, so
        shared path prefixes are never re-walked.
        """
        memo: Dict[int, FrozenSet[int]] = {}
        for target in predecessors:
            if target in memo:
                continue
            stack = [target]
            node = predecessors[target][0]
            while node in predecessors and node not in memo:
                stack.append(node)
                node = predecessors[node][0]
            base = memo.get(node, _EMPTY)
            for pending in reversed(stack):
                base = base | frozenset((predecessors[pending][1],))
                memo[pending] = base
        return memo

    def _shortest_path_tree(
        self,
        terminals: Sequence[str],
        excluded: AbstractSet[int],
        budget: "Optional[Budget]" = None,
    ) -> SteinerTree:
        """Two-terminal special case: the tree is a minimum-cost path.

        Runs one Dijkstra with early termination instead of the full
        Dreyfus–Wagner DP (which would compute distances and path sets for
        *every* node).  The search is rooted at the *second* terminal with
        the first as target because that is the equal-cost witness the DP
        produces (its two-terminal answer is read off the singleton-mask
        entry of the second terminal's shortest-path tree at the first
        terminal) — keeping tie-breaks bit-identical to the seed solver.
        """
        source = self.node_index[terminals[1]]
        target = self.node_index[terminals[0]]
        INF = float("inf")
        node_ids = self.node_ids
        adjacency = self.adjacency
        distances: Dict[int, float] = {source: 0.0}
        predecessors: Dict[int, Tuple[int, int]] = {}
        heap: List[Tuple[float, str, int]] = [(0.0, node_ids[source], source)]
        while heap:
            if budget is not None:
                budget.tick("shortest-path")
            dist, _, node = heapq.heappop(heap)
            if dist > distances.get(node, INF):
                continue
            if node == target:
                return self._tree_from_indexes(
                    self._path_edges(predecessors, target), terminals
                )
            for neighbor, edge_idx, cost in adjacency[node]:
                if edge_idx in excluded:
                    continue
                candidate = dist + cost
                if candidate < distances.get(neighbor, INF):
                    distances[neighbor] = candidate
                    predecessors[neighbor] = (node, edge_idx)
                    heapq.heappush(heap, (candidate, node_ids[neighbor], neighbor))
        raise DisconnectedTerminalsError(
            f"terminals {terminals[0]!r} and {terminals[1]!r} are not connected"
        )

    # ------------------------------------------------------------------
    # Exact solver (Dreyfus–Wagner DP)
    # ------------------------------------------------------------------
    def exact_tree(
        self,
        terminals: Sequence[str],
        excluded: AbstractSet[int] = _EMPTY,
        max_terminals: int = 8,
        budget: "Optional[Budget]" = None,
    ) -> SteinerTree:
        """Minimum-cost Steiner tree over ``terminals``, skipping ``excluded`` edges.

        Same algorithm (and the same tie-breaking) as the seed
        ``exact_steiner_tree``, minus the per-call graph copies and cost
        recomputation.  Two-terminal queries — the dominant case for keyword
        pairs — short-circuit to a single early-exit shortest-path search.
        With a ``budget``, the inner loops poll it and abort the solve with
        :class:`~repro.exceptions.DeadlineExceededError` once it expires —
        a partially run DP yields no usable tree, so there is no partial
        return at this level.
        """
        terminals = validate_terminals(self.graph, terminals)
        if len(terminals) > max_terminals:
            raise SteinerError(
                f"exact Steiner tree limited to {max_terminals} terminals; got {len(terminals)}"
            )
        if len(terminals) == 1:
            return SteinerTree(frozenset(), frozenset(terminals), 0.0)
        if len(terminals) == 2:
            return self._shortest_path_tree(terminals, excluded, budget=budget)

        node_ids = self.node_ids
        node_count = len(node_ids)
        adjacency = self.adjacency
        INF = float("inf")

        terminal_list = [self.node_index[t] for t in terminals]
        full_mask = (1 << len(terminal_list)) - 1

        # dp[mask] maps node -> (cost, edge index set) of the cheapest tree
        # spanning the terminal subset ``mask`` plus that node.
        dp_cost: List[Dict[int, float]] = [dict() for _ in range(full_mask + 1)]
        dp_edges: List[Dict[int, FrozenSet[int]]] = [dict() for _ in range(full_mask + 1)]

        # Base cases: singleton subsets = shortest path from the terminal.
        for position, terminal in enumerate(terminal_list):
            mask = 1 << position
            distances, predecessors = self._dijkstra(terminal, excluded, budget=budget)
            paths = self._all_path_edge_sets(predecessors)
            costs = dp_cost[mask]
            edges = dp_edges[mask]
            for v, dist in distances.items():
                costs[v] = dist
                edges[v] = paths.get(v, _EMPTY)

        subsets = sorted(range(1, full_mask + 1), key=lambda m: bin(m).count("1"))
        for subset in subsets:
            if bin(subset).count("1") < 2:
                continue
            if budget is not None:
                budget.check("dreyfus-wagner")
            costs = dp_cost[subset]
            edges = dp_edges[subset]
            # Merge step: combine two disjoint terminal subsets at a node.
            for v in range(node_count):
                best_cost = costs.get(v, INF)
                best_edges = edges.get(v)
                sub = (subset - 1) & subset
                while sub > 0:
                    other = subset ^ sub
                    if sub < other:  # consider each unordered split once
                        cost_a = dp_cost[sub].get(v, INF)
                        cost_b = dp_cost[other].get(v, INF)
                        if cost_a + cost_b < best_cost:
                            best_cost = cost_a + cost_b
                            best_edges = dp_edges[sub][v] | dp_edges[other][v]
                    sub = (sub - 1) & subset
                if best_edges is not None and best_cost < INF:
                    costs[v] = best_cost
                    edges[v] = frozenset(best_edges)

            # Grow step: extend the merged trees along shortest paths, as a
            # Dijkstra seeded with the current dp values.
            heap: List[Tuple[float, str, int]] = []
            current: Dict[int, float] = {}
            origin: Dict[int, int] = {}
            for v in range(node_count):
                cost = costs.get(v, INF)
                if cost < INF:
                    current[v] = cost
                    origin[v] = v
                    heapq.heappush(heap, (cost, node_ids[v], v))
            predecessors: Dict[int, Tuple[int, int]] = {}
            while heap:
                if budget is not None:
                    budget.tick("dreyfus-wagner-grow")
                dist, _, node = heapq.heappop(heap)
                if dist > current.get(node, INF):
                    continue
                for neighbor, edge_idx, cost in adjacency[node]:
                    if edge_idx in excluded:
                        continue
                    candidate = dist + cost
                    if candidate < current.get(neighbor, INF):
                        current[neighbor] = candidate
                        origin[neighbor] = origin[node]
                        predecessors[neighbor] = (node, edge_idx)
                        heapq.heappush(heap, (candidate, node_ids[neighbor], neighbor))
            paths = self._all_path_edge_sets(predecessors)
            for node, cost in current.items():
                if cost < costs.get(node, INF):
                    root = origin[node]
                    costs[node] = cost
                    edges[node] = edges[root] | paths.get(node, _EMPTY)

        root = terminal_list[0]
        if root not in dp_cost[full_mask]:
            raise DisconnectedTerminalsError()
        return self._tree_from_indexes(dp_edges[full_mask][root], terminals)

    # ------------------------------------------------------------------
    # Approximate solver (Kou–Markowsky–Berman distance network)
    # ------------------------------------------------------------------
    def approximate_tree(
        self,
        terminals: Sequence[str],
        excluded: AbstractSet[int] = _EMPTY,
        budget: "Optional[Budget]" = None,
    ) -> SteinerTree:
        """2-approximate Steiner tree, skipping ``excluded`` edges."""
        terminals = validate_terminals(self.graph, terminals)
        if len(terminals) == 1:
            return SteinerTree(frozenset(), frozenset(terminals), 0.0)

        shortest: Dict[str, Tuple[Dict[int, float], Dict[int, Tuple[int, int]]]] = {}
        for terminal in terminals:
            shortest[terminal] = self._dijkstra(
                self.node_index[terminal], excluded, budget=budget
            )

        # Terminal distance network (and the connectivity check).
        pairs: List[Tuple[float, str, str]] = []
        for i, a in enumerate(terminals):
            distances_a = shortest[a][0]
            for b in terminals[i + 1 :]:
                b_idx = self.node_index[b]
                if b_idx not in distances_a:
                    raise DisconnectedTerminalsError(
                        f"terminals {a!r} and {b!r} are not connected"
                    )
                pairs.append((distances_a[b_idx], a, b))

        # Kruskal MST over the distance network.
        pairs.sort()
        parent: Dict[str, str] = {t: t for t in terminals}

        def find(node: str) -> str:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        expanded_edges: Set[str] = set()
        for _, a, b in pairs:
            root_a, root_b = find(a), find(b)
            if root_a == root_b:
                continue
            parent[root_a] = root_b
            path = self._path_edges(shortest[a][1], self.node_index[b])
            expanded_edges |= {self.edge_ids[i] for i in path}

        pruned = prune_to_tree(self.graph, expanded_edges, terminals)
        return SteinerTree.from_edges(self.graph, pruned, terminals)

    # ------------------------------------------------------------------
    # Default dispatch (exact at small terminal counts, else approximate)
    # ------------------------------------------------------------------
    def default_tree(
        self,
        terminals: Sequence[str],
        excluded: AbstractSet[int] = _EMPTY,
        exact_terminal_limit: int = 5,
        budget: "Optional[Budget]" = None,
    ) -> SteinerTree:
        """Exact DP for few terminals, distance-network approximation otherwise."""
        if len(set(terminals)) <= exact_terminal_limit:
            try:
                return self.exact_tree(
                    terminals,
                    excluded,
                    max_terminals=exact_terminal_limit,
                    budget=budget,
                )
            except DisconnectedTerminalsError:
                raise
            except SteinerError:
                pass  # solver-capability failure: fall back to the approximation
        return self.approximate_tree(terminals, excluded, budget=budget)


def prune_to_tree(graph: SearchGraph, edge_ids: Set[str], terminals: Sequence[str]) -> Set[str]:
    """Extract a spanning tree of the edge set and prune non-terminal leaves.

    (Unchanged seed logic; operates on edge-id strings so that equal-cost
    tie-breaks in the Kruskal sort match the seed implementation exactly.)
    """
    nodes: Set[str] = set(terminals)
    for edge_id in edge_ids:
        edge = graph.edge(edge_id)
        nodes.add(edge.u)
        nodes.add(edge.v)

    # Minimum spanning forest over the selected edges (Kruskal).
    parent: Dict[str, str] = {node: node for node in nodes}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    selected: Set[str] = set()
    for edge_id in sorted(edge_ids, key=graph.edge_cost_by_id):
        edge = graph.edge(edge_id)
        root_u, root_v = find(edge.u), find(edge.v)
        if root_u != root_v:
            parent[root_u] = root_v
            selected.add(edge_id)

    # Iteratively remove non-terminal leaves.
    terminal_set = set(terminals)
    changed = True
    while changed:
        changed = False
        degree: Dict[str, int] = {}
        incident: Dict[str, List[str]] = {}
        for edge_id in selected:
            edge = graph.edge(edge_id)
            for endpoint in edge.endpoints():
                degree[endpoint] = degree.get(endpoint, 0) + 1
                incident.setdefault(endpoint, []).append(edge_id)
        for node, node_degree in degree.items():
            if node_degree == 1 and node not in terminal_set:
                selected.discard(incident[node][0])
                changed = True
                break
    return selected
