"""Approximate Steiner trees via the distance-network heuristic.

This is the classic Kou–Markowsky–Berman 2-approximation: build the complete
"distance network" over the terminals (edge weight = shortest-path cost),
take its minimum spanning tree, expand each MST edge back into the
underlying shortest path, and prune the result to a tree.  The paper uses an
approximation algorithm of this style at larger scales (Section 2.2,
referencing STAR [21] as another possibility).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import SteinerError
from ..graph.search_graph import SearchGraph
from .tree import SteinerTree, validate_terminals


def _dijkstra(
    graph: SearchGraph, source: str
) -> Tuple[Dict[str, float], Dict[str, Tuple[str, str]]]:
    distances: Dict[str, float] = {source: 0.0}
    predecessors: Dict[str, Tuple[str, str]] = {}
    heap: List[Tuple[float, str]] = [(0.0, source)]
    while heap:
        dist, node = heapq.heappop(heap)
        if dist > distances.get(node, float("inf")):
            continue
        for edge in graph.edges_of(node):
            neighbor = edge.other(node)
            candidate = dist + graph.edge_cost(edge)
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                predecessors[neighbor] = (node, edge.edge_id)
                heapq.heappush(heap, (candidate, neighbor))
    return distances, predecessors


def _path_edges(predecessors: Dict[str, Tuple[str, str]], target: str) -> Set[str]:
    edges: Set[str] = set()
    node = target
    while node in predecessors:
        previous, edge_id = predecessors[node]
        edges.add(edge_id)
        node = previous
    return edges


def _prune_to_tree(graph: SearchGraph, edge_ids: Set[str], terminals: Sequence[str]) -> Set[str]:
    """Extract a spanning tree of the edge set and prune non-terminal leaves."""
    # Build adjacency of the sub-multigraph.
    nodes: Set[str] = set(terminals)
    for edge_id in edge_ids:
        edge = graph.edge(edge_id)
        nodes.add(edge.u)
        nodes.add(edge.v)

    # Minimum spanning forest over the selected edges (Kruskal).
    parent: Dict[str, str] = {node: node for node in nodes}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    selected: Set[str] = set()
    for edge_id in sorted(edge_ids, key=graph.edge_cost_by_id):
        edge = graph.edge(edge_id)
        root_u, root_v = find(edge.u), find(edge.v)
        if root_u != root_v:
            parent[root_u] = root_v
            selected.add(edge_id)

    # Iteratively remove non-terminal leaves.
    terminal_set = set(terminals)
    changed = True
    while changed:
        changed = False
        degree: Dict[str, int] = {}
        incident: Dict[str, List[str]] = {}
        for edge_id in selected:
            edge = graph.edge(edge_id)
            for endpoint in edge.endpoints():
                degree[endpoint] = degree.get(endpoint, 0) + 1
                incident.setdefault(endpoint, []).append(edge_id)
        for node, node_degree in degree.items():
            if node_degree == 1 and node not in terminal_set:
                selected.discard(incident[node][0])
                changed = True
                break
    return selected


def approximate_steiner_tree(graph: SearchGraph, terminals: Sequence[str]) -> SteinerTree:
    """2-approximate minimum Steiner tree over ``terminals``.

    Raises
    ------
    SteinerError
        If the terminals are not all connected to each other in ``graph``.
    """
    terminals = validate_terminals(graph, terminals)
    if len(terminals) == 1:
        return SteinerTree(frozenset(), frozenset(terminals), 0.0)

    shortest: Dict[str, Tuple[Dict[str, float], Dict[str, Tuple[str, str]]]] = {}
    for terminal in terminals:
        shortest[terminal] = _dijkstra(graph, terminal)

    # Check connectivity and build the terminal distance network.
    pairs: List[Tuple[float, str, str]] = []
    for i, a in enumerate(terminals):
        distances_a = shortest[a][0]
        for b in terminals[i + 1 :]:
            if b not in distances_a:
                raise SteinerError(f"terminals {a!r} and {b!r} are not connected")
            pairs.append((distances_a[b], a, b))

    # Prim/Kruskal MST over the distance network.
    pairs.sort()
    parent: Dict[str, str] = {t: t for t in terminals}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    expanded_edges: Set[str] = set()
    for cost, a, b in pairs:
        root_a, root_b = find(a), find(b)
        if root_a == root_b:
            continue
        parent[root_a] = root_b
        expanded_edges |= _path_edges(shortest[a][1], b)

    pruned = _prune_to_tree(graph, expanded_edges, terminals)
    return SteinerTree.from_edges(graph, pruned, terminals)
