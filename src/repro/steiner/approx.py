"""Approximate Steiner trees via the distance-network heuristic.

This is the classic Kou–Markowsky–Berman 2-approximation: build the complete
"distance network" over the terminals (edge weight = shortest-path cost),
take its minimum spanning tree, expand each MST edge back into the
underlying shortest path, and prune the result to a tree.  The paper uses an
approximation algorithm of this style at larger scales (Section 2.2,
referencing STAR [21] as another possibility).

The algorithm lives in :class:`~repro.steiner.network.SteinerNetwork` (see
:mod:`repro.steiner.exact` for the rationale); this module keeps the stable
one-shot functional entry point.
"""

from __future__ import annotations

from typing import Sequence

from ..graph.search_graph import SearchGraph
from .network import SteinerNetwork
from .tree import SteinerTree


def approximate_steiner_tree(graph: SearchGraph, terminals: Sequence[str]) -> SteinerTree:
    """2-approximate minimum Steiner tree over ``terminals``.

    Raises
    ------
    DisconnectedTerminalsError
        If the terminals are not all connected to each other in ``graph``.
    """
    return SteinerNetwork(graph).approximate_tree(terminals)
