"""Top-k Steiner tree enumeration (``KBESTSTEINER`` in Algorithm 4).

The learner and the view maintenance logic both need the ``k`` lowest-cost
Steiner trees for a set of keyword terminals.  We enumerate candidates with
a Lawler-style branching scheme over *edge exclusions*: starting from the
optimal tree, each expansion step forbids one tree edge and re-solves,
yielding alternative trees; candidates are emitted in nondecreasing cost
order and deduplicated by edge set.

The base solver is chosen automatically: the exact Dreyfus–Wagner DP for
small terminal sets, the distance-network approximation otherwise — matching
the paper's "exact algorithm at small scales, approximation at larger
scales".  All re-solves run over one shared
:class:`~repro.steiner.network.SteinerNetwork` snapshot of the graph, so the
branching loop never copies the graph or re-derives edge costs.

Note: with exclusion-only branching the enumeration is exact for ``k = 1``
and a high-quality heuristic for ``k > 1`` (it can, in adversarial graphs,
miss an alternative tree).  This matches the role the top-k list plays in
the paper: a pool of good alternative interpretations for learning and
re-ranking, not an exhaustively verified enumeration.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence, Set, Tuple

from typing import TYPE_CHECKING

from ..exceptions import DeadlineExceededError, SteinerError
from ..graph.search_graph import SearchGraph
from .network import SteinerNetwork
from .tree import SteinerTree, validate_terminals

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.budget import Budget

SolverFn = Callable[[SearchGraph, Sequence[str]], SteinerTree]


def default_solver(graph: SearchGraph, terminals: Sequence[str], exact_terminal_limit: int = 5) -> SteinerTree:
    """Pick the exact DP for few terminals, the approximation otherwise."""
    return SteinerNetwork(graph).default_tree(
        terminals, exact_terminal_limit=exact_terminal_limit
    )


@dataclass
class KBestSteiner:
    """Enumerates the k lowest-cost Steiner trees for a terminal set.

    Parameters
    ----------
    solver:
        Base single-tree solver; when omitted, the default exact/approximate
        dispatch runs directly on a shared graph snapshot (fast path).  A
        custom solver is honoured through the legacy graph-copy protocol.
    max_expansions:
        Upper bound on branching expansions, guarding against blow-up on
        dense graphs.
    network_cache:
        Optional snapshot cache (duck-typed: anything exposing
        ``network(graph) -> SteinerNetwork``, e.g. the engine's
        :class:`~repro.engine.context.SteinerNetworkCache`).  With a cache,
        repeated solves over an unchanged graph reuse one snapshot instead
        of rebuilding it per call; staleness rides on the graph's
        ``(weights.version, structure_version)`` key inside the cache.
    """

    solver: Optional[SolverFn] = None
    max_expansions: int = 200
    network_cache: Optional[object] = None

    def solve(
        self,
        graph: SearchGraph,
        terminals: Sequence[str],
        k: int,
        budget: "Optional[Budget]" = None,
    ) -> List[SteinerTree]:
        """Return up to ``k`` distinct Steiner trees in nondecreasing cost order.

        With a ``budget``, the enumeration is deadline-aware: the budget is
        polled before/inside every base solve and at each branching
        expansion.  Expiry before the *first* tree exists raises
        :class:`~repro.exceptions.DeadlineExceededError`; expiry after that
        stops branching, drains already-solved candidates off the heap (they
        are complete, valid trees), marks the budget truncated, and returns
        the partial list — possibly fewer than ``k`` trees.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        terminals = validate_terminals(graph, terminals)
        network: Optional[SteinerNetwork] = None
        if self.solver is None:
            if self.network_cache is not None:
                network = self.network_cache.network(graph)  # type: ignore[attr-defined]
            else:
                network = SteinerNetwork(graph)

        def base_solve(excluded_edge_ids: FrozenSet[str]) -> SteinerTree:
            if network is not None:
                return network.default_tree(
                    terminals,
                    excluded=network.edge_indexes(excluded_edge_ids),
                    budget=budget,
                )
            reduced = self._graph_without(graph, excluded_edge_ids)
            return self.solver(reduced, terminals)  # type: ignore[misc]

        if budget is not None:
            budget.check("k-best-steiner")
        try:
            best = base_solve(frozenset())
        except SteinerError:  # including DisconnectedTerminalsError
            return []

        results: List[SteinerTree] = []
        seen_trees: Set[FrozenSet[str]] = set()
        counter = itertools.count()
        # Heap entries: (cost, tiebreak, tree, excluded_edge_ids)
        heap: List[Tuple[float, int, SteinerTree, FrozenSet[str]]] = [
            (best.cost, next(counter), best, frozenset())
        ]
        candidate_signatures: Set[FrozenSet[str]] = {best.edge_ids}
        expansions = 0

        while heap and len(results) < k:
            cost, _, tree, excluded = heapq.heappop(heap)
            if tree.edge_ids in seen_trees:
                continue
            seen_trees.add(tree.edge_ids)
            results.append(tree)
            if len(results) >= k:
                break

            # Branch: forbid each edge of the newly accepted tree in turn.
            for edge_id in sorted(tree.edge_ids):
                if expansions >= self.max_expansions:
                    break
                if budget is not None and budget.expired():
                    # Stop branching; the outer loop keeps draining fully
                    # solved candidates already on the heap.
                    budget.mark_truncated("k-best-steiner")
                    break
                expansions += 1
                new_excluded = excluded | {edge_id}
                try:
                    candidate = base_solve(new_excluded)
                except DeadlineExceededError:
                    # Expired mid-re-solve: at least one tree exists, so the
                    # enumeration degrades to a partial result.
                    budget.mark_truncated("k-best-steiner")  # type: ignore[union-attr]
                    break
                except SteinerError:
                    continue
                # Re-cost against the original graph (costs are identical,
                # but the tree object should reference original edge ids).
                candidate = SteinerTree.from_edges(graph, candidate.edge_ids, terminals)
                if candidate.edge_ids in seen_trees or candidate.edge_ids in candidate_signatures:
                    continue
                candidate_signatures.add(candidate.edge_ids)
                heapq.heappush(
                    heap, (candidate.cost, next(counter), candidate, new_excluded)
                )
        return results

    @staticmethod
    def _graph_without(graph: SearchGraph, excluded_edges: FrozenSet[str]) -> SearchGraph:
        reduced = graph.copy(share_weights=True)
        for edge_id in excluded_edges:
            if reduced.has_edge(edge_id):
                reduced.remove_edge(edge_id)
        return reduced


def k_best_steiner_trees(
    graph: SearchGraph, terminals: Sequence[str], k: int, solver: Optional[SolverFn] = None
) -> List[SteinerTree]:
    """Convenience wrapper around :class:`KBestSteiner`."""
    return KBestSteiner(solver=solver).solve(graph, terminals, k)
