"""Top-k Steiner tree enumeration (``KBESTSTEINER`` in Algorithm 4).

The learner and the view maintenance logic both need the ``k`` lowest-cost
Steiner trees for a set of keyword terminals.  We enumerate candidates with
a Lawler-style branching scheme over *edge exclusions*: starting from the
optimal tree, each expansion step forbids one tree edge and re-solves,
yielding alternative trees; candidates are emitted in nondecreasing cost
order and deduplicated by edge set.

The base solver is chosen automatically: the exact Dreyfus–Wagner DP for
small terminal sets, the distance-network approximation otherwise — matching
the paper's "exact algorithm at small scales, approximation at larger
scales".

Note: with exclusion-only branching the enumeration is exact for ``k = 1``
and a high-quality heuristic for ``k > 1`` (it can, in adversarial graphs,
miss an alternative tree).  This matches the role the top-k list plays in
the paper: a pool of good alternative interpretations for learning and
re-ranking, not an exhaustively verified enumeration.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..exceptions import SteinerError
from ..graph.search_graph import SearchGraph
from .approx import approximate_steiner_tree
from .exact import exact_steiner_tree
from .tree import SteinerTree, validate_terminals

SolverFn = Callable[[SearchGraph, Sequence[str]], SteinerTree]


def default_solver(graph: SearchGraph, terminals: Sequence[str], exact_terminal_limit: int = 5) -> SteinerTree:
    """Pick the exact DP for few terminals, the approximation otherwise."""
    if len(set(terminals)) <= exact_terminal_limit:
        try:
            return exact_steiner_tree(graph, terminals, max_terminals=exact_terminal_limit)
        except SteinerError as error:
            if "not connected" in str(error):
                raise
            # Too many terminals for the exact solver: fall through.
    return approximate_steiner_tree(graph, terminals)


@dataclass
class KBestSteiner:
    """Enumerates the k lowest-cost Steiner trees for a terminal set.

    Parameters
    ----------
    solver:
        Base single-tree solver; defaults to :func:`default_solver`.
    max_expansions:
        Upper bound on branching expansions, guarding against blow-up on
        dense graphs.
    """

    solver: Optional[SolverFn] = None
    max_expansions: int = 200

    def solve(self, graph: SearchGraph, terminals: Sequence[str], k: int) -> List[SteinerTree]:
        """Return up to ``k`` distinct Steiner trees in nondecreasing cost order."""
        if k < 1:
            raise ValueError("k must be >= 1")
        terminals = validate_terminals(graph, terminals)
        solver = self.solver or default_solver

        try:
            best = solver(graph, terminals)
        except SteinerError:
            return []

        results: List[SteinerTree] = []
        seen_trees: Set[FrozenSet[str]] = set()
        counter = itertools.count()
        # Heap entries: (cost, tiebreak, tree, excluded_edge_ids)
        heap: List[Tuple[float, int, SteinerTree, FrozenSet[str]]] = [
            (best.cost, next(counter), best, frozenset())
        ]
        candidate_signatures: Set[FrozenSet[str]] = {best.edge_ids}
        expansions = 0

        while heap and len(results) < k:
            cost, _, tree, excluded = heapq.heappop(heap)
            if tree.edge_ids in seen_trees:
                continue
            seen_trees.add(tree.edge_ids)
            results.append(tree)
            if len(results) >= k:
                break

            # Branch: forbid each edge of the newly accepted tree in turn.
            for edge_id in sorted(tree.edge_ids):
                if expansions >= self.max_expansions:
                    break
                expansions += 1
                new_excluded = excluded | {edge_id}
                reduced = self._graph_without(graph, new_excluded)
                try:
                    candidate = solver(reduced, terminals)
                except SteinerError:
                    continue
                # Re-cost against the original graph (costs are identical,
                # but the tree object should reference original edge ids).
                candidate = SteinerTree.from_edges(graph, candidate.edge_ids, terminals)
                if candidate.edge_ids in seen_trees or candidate.edge_ids in candidate_signatures:
                    continue
                candidate_signatures.add(candidate.edge_ids)
                heapq.heappush(
                    heap, (candidate.cost, next(counter), candidate, new_excluded)
                )
        return results

    @staticmethod
    def _graph_without(graph: SearchGraph, excluded_edges: FrozenSet[str]) -> SearchGraph:
        reduced = graph.copy(share_weights=True)
        for edge_id in excluded_edges:
            if reduced.has_edge(edge_id):
                reduced.remove_edge(edge_id)
        return reduced


def k_best_steiner_trees(
    graph: SearchGraph, terminals: Sequence[str], k: int, solver: Optional[SolverFn] = None
) -> List[SteinerTree]:
    """Convenience wrapper around :class:`KBestSteiner`."""
    return KBestSteiner(solver=solver).solve(graph, terminals, k)
