"""Versioned session-snapshot payloads (the durable half of :mod:`repro.persist`).

A *snapshot* is a JSON document capturing everything a
:class:`~repro.api.service.QService` session accumulates beyond its stored
rows: the search graph (nodes, edges with features and **their original edge
ids**), the learned :class:`~repro.graph.features.WeightVector`, the
:class:`~repro.profiling.index.CatalogProfileIndex`, the view registry
(definitions plus lazy-sync state plus each synced view's expanded
query-graph delta), the learner/feedback/registration counters, and the
process-global edge-id counter.  Restoring a snapshot therefore skips every
expensive cold-start step — profiling, matching, alignment — *and* restores
the exact tie-break-relevant identifiers, which is what makes a reopened
session answer queries byte-identically to the session that saved it.

Serialization rules
-------------------
* **Order is data.**  Node, edge and weight insertion order is preserved
  verbatim: dict iteration order feeds equal-cost tie-breaks, constraint
  enumeration and future query-graph expansions, so payload lists mirror the
  live containers exactly.
* **Sets are canonical.**  Set-valued fields (profile value sets, tree edge
  sets) are emitted sorted, so saving, restoring and saving again produces
  an identical document (the fixed-point property tests rely on it).
* **Every stored document is wrapped** in ``{"format_version", "checksum",
  "body"}``; :func:`unwrap_document` raises a typed
  :class:`~repro.exceptions.SnapshotError` on parse failure, checksum
  mismatch (corruption) or an unknown format version.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from ..exceptions import SnapshotError
from ..graph.edges import Edge, EdgeKind
from ..graph.features import FeatureVector, WeightVector
from ..graph.nodes import Node, NodeKind
from ..graph.query_graph import KeywordMatch, QueryGraph
from ..graph.search_graph import GraphConfig, SearchGraph
from ..learning.feedback import FeedbackEvent
from ..steiner.tree import SteinerTree

#: Version of the on-disk snapshot/journal format.  Bumped on any change
#: that an older reader could misinterpret; readers reject other versions
#: with a typed :class:`SnapshotError`.
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Document framing (wrapping, checksums, corruption detection)
# ----------------------------------------------------------------------
def _checksum(body: object) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def wrap_document(body: Dict[str, object]) -> str:
    """Serialize ``body`` with format version and integrity checksum."""
    try:
        checksum = _checksum(body)
        return json.dumps(
            {"format_version": FORMAT_VERSION, "checksum": checksum, "body": body}
        )
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"session state is not serializable: {exc}") from exc


def unwrap_document(text: str, what: str = "snapshot") -> Dict[str, object]:
    """Parse and verify one wrapped document; returns its body.

    Raises
    ------
    SnapshotError
        On malformed JSON, a missing wrapper field, a format version this
        reader does not understand, or a checksum mismatch (corruption).
    """
    try:
        document = json.loads(text)
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"corrupt session {what}: not valid JSON ({exc})") from exc
    if not isinstance(document, dict) or "body" not in document:
        raise SnapshotError(f"corrupt session {what}: missing document wrapper")
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported session {what} format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    body = document["body"]
    if document.get("checksum") != _checksum(body):
        raise SnapshotError(
            f"corrupt session {what}: checksum mismatch (file was truncated or modified)"
        )
    return body


# ----------------------------------------------------------------------
# Graph elements
# ----------------------------------------------------------------------
def node_payload(node: Node) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "id": node.node_id,
        "kind": node.kind.value,
        "label": node.label,
    }
    if node.relation is not None:
        payload["relation"] = node.relation
    if node.attribute is not None:
        payload["attribute"] = node.attribute
    return payload


# Value→member maps: Enum.__call__ is measurably slow on the restore hot
# path (one lookup per node and edge of the whole graph).
_NODE_KINDS = {kind.value: kind for kind in NodeKind}
_EDGE_KINDS = {kind.value: kind for kind in EdgeKind}


def restore_node(payload: Dict[str, object]) -> Node:
    return Node(
        node_id=payload["id"],
        kind=_NODE_KINDS[payload["kind"]],
        label=payload["label"],
        relation=payload.get("relation"),
        attribute=payload.get("attribute"),
    )


def _encode_metadata(metadata: Dict[str, object]) -> Dict[str, object]:
    encoded = dict(metadata)
    if "foreign_key" in encoded:
        encoded["foreign_key"] = list(encoded["foreign_key"])
    return encoded


def _decode_metadata(metadata: Dict[str, object]) -> Dict[str, object]:
    decoded = dict(metadata)
    if "foreign_key" in decoded:
        decoded["foreign_key"] = tuple(decoded["foreign_key"])
    return decoded


def edge_payload(edge: Edge) -> Dict[str, object]:
    """One edge, id included — restored edges keep their original identity."""
    payload: Dict[str, object] = {
        "id": edge.edge_id,
        "u": edge.u,
        "v": edge.v,
        "kind": edge.kind.value,
        "features": dict(edge.features.items()),
    }
    if edge.fixed_cost is not None:
        payload["fixed_cost"] = edge.fixed_cost
    if edge.metadata:
        payload["metadata"] = _encode_metadata(edge.metadata)
    return payload


def restore_edge(payload: Dict[str, object]) -> Edge:
    return Edge(
        edge_id=payload["id"],
        u=payload["u"],
        v=payload["v"],
        kind=_EDGE_KINDS[payload["kind"]],
        features=FeatureVector(payload.get("features") or {}),
        fixed_cost=payload.get("fixed_cost"),
        metadata=_decode_metadata(payload.get("metadata") or {}),
    )


def apply_edge_change(graph: SearchGraph, payload: Dict[str, object]) -> None:
    """Replay a confidence-merge (in-place feature/metadata update) on an edge."""
    edge = graph.edge(payload["id"])
    edge.features = FeatureVector(payload.get("features") or {})
    edge.metadata = _decode_metadata(payload.get("metadata") or {})


# ----------------------------------------------------------------------
# Graph / weights
# ----------------------------------------------------------------------
def graph_payload(graph: SearchGraph) -> Dict[str, object]:
    """Nodes and edges of ``graph`` in insertion order (weights separate)."""
    return {
        "structure_version": graph.structure_version,
        "nodes": [node_payload(node) for node in graph.nodes()],
        "edges": [edge_payload(edge) for edge in graph.edges()],
    }


def restore_graph(
    payload: Dict[str, object],
    config: Optional[GraphConfig] = None,
    weights: Optional[WeightVector] = None,
) -> SearchGraph:
    """Rebuild a graph: same nodes, same edges, same ids, same order.

    ``add_node``/``add_edge`` replay in payload order, which reproduces the
    adjacency lists exactly (they are append-ordered by edge addition).
    The caller installs the definitive ``structure_version`` and weight
    version afterwards — replay bumps both as a side effect.
    """
    graph = SearchGraph(config=config, weights=weights)
    for node_spec in payload.get("nodes", ()):
        graph.add_node(restore_node(node_spec))
    for edge_spec in payload.get("edges", ()):
        graph.add_edge(restore_edge(edge_spec))
    graph.structure_version = payload.get("structure_version", graph.structure_version)
    return graph


def weights_payload(weights: WeightVector) -> Dict[str, object]:
    return {"values": weights.as_dict(), "version": weights.version}


def restore_weights(payload: Dict[str, object]) -> WeightVector:
    weights = WeightVector(payload.get("values") or {})
    weights.version = payload.get("version", 0)
    return weights


def graph_config_payload(config: GraphConfig) -> Dict[str, object]:
    return {
        "default_cost": config.default_cost,
        "foreign_key_cost": config.foreign_key_cost,
        "initial_matcher_weight": config.initial_matcher_weight,
        "association_threshold": config.association_threshold,
        "minimum_edge_cost": config.minimum_edge_cost,
    }


def restore_graph_config(payload: Dict[str, object]) -> GraphConfig:
    return GraphConfig(**payload)


# ----------------------------------------------------------------------
# Trees and feedback events
# ----------------------------------------------------------------------
def tree_payload(tree: SteinerTree) -> Dict[str, object]:
    return {
        "edge_ids": sorted(tree.edge_ids),
        "terminals": sorted(tree.terminals),
        "cost": tree.cost,
    }


def restore_tree(payload: Dict[str, object]) -> SteinerTree:
    return SteinerTree(
        edge_ids=frozenset(payload["edge_ids"]),
        terminals=frozenset(payload["terminals"]),
        cost=payload["cost"],
    )


def event_payload(event: FeedbackEvent) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "terminals": list(event.terminals),
        "target_tree": tree_payload(event.target_tree),
    }
    if event.demoted_tree is not None:
        payload["demoted_tree"] = tree_payload(event.demoted_tree)
    return payload


def restore_event(payload: Dict[str, object]) -> FeedbackEvent:
    demoted = payload.get("demoted_tree")
    return FeedbackEvent(
        terminals=tuple(payload["terminals"]),
        target_tree=restore_tree(payload["target_tree"]),
        demoted_tree=restore_tree(demoted) if demoted is not None else None,
    )


# ----------------------------------------------------------------------
# View query graphs (delta against the base search graph)
# ----------------------------------------------------------------------
def query_graph_delta_payload(
    query_graph: QueryGraph, base_graph: SearchGraph
) -> Dict[str, object]:
    """The keyword/value expansion of a view, as a delta over the base graph.

    Only valid for a view whose query graph was expanded against the
    *current* base-graph structure (the service serializes a delta only for
    views synced to the current ``structure_version``); everything the
    expansion added — keyword nodes, lazily materialized value nodes,
    keyword-match and value-membership edges, with their original ids — is
    recorded so the restored view neither re-expands nor consumes fresh
    edge ids.
    """
    expanded = query_graph.graph
    return {
        "keyword_nodes": dict(query_graph.keyword_nodes),
        "nodes": [
            node_payload(node)
            for node in expanded.nodes()
            if not base_graph.has_node(node.node_id)
        ],
        "edges": [
            edge_payload(edge)
            for edge in expanded.edges()
            if not base_graph.has_edge(edge.edge_id)
        ],
        "matches": [
            {
                "keyword": match.keyword,
                "node_id": match.node_id,
                "similarity": match.similarity,
                "mismatch_cost": match.mismatch_cost,
                "target_kind": match.target_kind.value,
            }
            for match in query_graph.matches
        ],
    }


def restore_query_graph(
    payload: Dict[str, object], base_graph: SearchGraph
) -> QueryGraph:
    """Rebuild a view's expanded query graph from its delta payload."""
    expanded = base_graph.copy(share_weights=True)
    for node_spec in payload.get("nodes", ()):
        expanded.add_node(restore_node(node_spec))
    for edge_spec in payload.get("edges", ()):
        expanded.add_edge(restore_edge(edge_spec))
    return QueryGraph(
        graph=expanded,
        keyword_nodes=dict(payload.get("keyword_nodes") or {}),
        matches=[
            KeywordMatch(
                keyword=spec["keyword"],
                node_id=spec["node_id"],
                similarity=spec["similarity"],
                mismatch_cost=spec["mismatch_cost"],
                target_kind=NodeKind(spec["target_kind"]),
            )
            for spec in payload.get("matches", ())
        ],
    )


def empty_query_graph(base_graph: SearchGraph) -> QueryGraph:
    """Placeholder for a restored view that must rebuild on its first read.

    A view whose sync state is stale against the current graph structure
    would discard its expansion on the next read anyway; restoring it with
    an unexpanded copy reproduces exactly the rebuild a continuing live
    session would perform (consuming the same edge-id sequence).
    """
    return QueryGraph(graph=base_graph.copy(share_weights=True))
