"""repro.persist — durable sessions: snapshot + journal persistence.

The Q system's value compounds over a session's lifetime — registered
sources, alignment edges, learned MIRA weights, materialized views — yet
before this subsystem all of it evaporated on process exit: only the *rows*
survived (on the SQLite backend), and the graph, weights, profiles and views
had to be rebuilt by re-running registration and replaying feedback.  This
package makes the whole session durable:

* :mod:`repro.persist.snapshot` — versioned, checksummed JSON payloads for
  every serializable subsystem: search graph (with original edge ids),
  weight vector, profile index, views (with their expanded query-graph
  deltas), feedback events, and the process-global edge-id counter.
* :mod:`repro.persist.journal` — shadow-diff mutation journal, so saves
  after the first checkpoint are incremental; entries replay deterministic
  state deltas (feedback weight movements, registrations/removals,
  confidence merges) on reopen.
* :mod:`repro.persist.store` — where the bytes live: dedicated
  ``_repro_session_*`` tables inside a SQLite catalog database (one file =
  whole session), or a JSON sidecar + ``.journal`` pair for memory-backed
  catalogs (giving the memory backend durability it never had).
* :mod:`repro.persist.session` — the checkpoint manager behind
  :meth:`QService.save() <repro.api.service.QService.save>` /
  :meth:`QService.open() <repro.api.service.QService.open>` /
  ``autosave=``, including journal compaction.

Restored sessions answer queries **byte-identically** (answers, provenance,
correspondences, k-best order) to the live session that saved them — the
cross-backend parity suite asserts it on the fig6/fig8 replays — and a warm
:meth:`~repro.api.service.QService.open` skips profiling, matching and
alignment entirely (``benchmarks/persist_bench.py`` gates the speedup).
"""

from ..exceptions import SnapshotError
from .session import (
    SaveReport,
    SessionPersistence,
    overlay_payload,
    restore_core,
    service_config_payload,
    snapshot_body,
)
from .snapshot import FORMAT_VERSION, unwrap_document, wrap_document
from .store import (
    FileSessionStore,
    SessionStore,
    SqliteSessionStore,
    sniff_sqlite_file,
)

__all__ = [
    "FORMAT_VERSION",
    "FileSessionStore",
    "SaveReport",
    "SessionPersistence",
    "SessionStore",
    "SnapshotError",
    "SqliteSessionStore",
    "overlay_payload",
    "restore_core",
    "service_config_payload",
    "sniff_sqlite_file",
    "snapshot_body",
    "unwrap_document",
    "wrap_document",
]
