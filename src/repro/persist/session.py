"""Session-level persistence orchestration.

This module glues the payload builders (:mod:`repro.persist.snapshot`), the
diff journal (:mod:`repro.persist.journal`) and the stores
(:mod:`repro.persist.store`) into the checkpoint discipline
:class:`~repro.api.service.QService` exposes as ``save()`` / ``open()``:

* the **first** save writes a full snapshot;
* every later save appends one journal *delta entry* (graph/weight/catalog
  movement since the previous save) plus the current **overlay** — the
  small, always-rewritten tail state: view registry (with per-view
  query-graph deltas), feedback log, learner/registration counters, version
  counters and the process-global edge-id counter;
* once the journal reaches ``compact_after`` entries — or a change lands
  that a delta cannot express, such as rows appended to an existing
  relation of a sidecar-persisted session — the next save *compacts*:
  journal and snapshot fold into one fresh snapshot and the journal
  truncates.

Everything here is duck-typed over the service object (``service.graph``,
``service.catalog``, ``service.profile_index``, ...) so this package never
imports :mod:`repro.api` — the service imports us, not the other way
around.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import fields as dataclass_fields
from typing import Dict, List, Optional, Tuple

from ..datastore.csvio import source_to_dict
from ..graph.edges import edge_id_counter
from ..profiling.index import CatalogProfileIndex
from .journal import StateShadow, apply_delta, build_delta, is_empty_delta
from .snapshot import (
    event_payload,
    graph_config_payload,
    graph_payload,
    query_graph_delta_payload,
    restore_graph,
    restore_weights,
    weights_payload,
)
from .store import SessionStore


# ----------------------------------------------------------------------
# Payload builders (save side)
# ----------------------------------------------------------------------
def service_config_payload(config) -> Dict[str, object]:
    """Flatten a service config so a reopened session inherits its knobs.

    Field names come straight off the dataclass (the restore side reads
    them the same way), so adding a config knob round-trips automatically.
    """
    payload: Dict[str, object] = {
        field.name: getattr(config, field.name)
        for field in dataclass_fields(type(config))
        if field.name != "graph"
    }
    payload["graph"] = graph_config_payload(config.graph)
    return payload


def view_record_payload(record, base_graph) -> Dict[str, object]:
    """One view registry record, with its query-graph delta when reusable.

    The expansion delta is serialized only for views synced to the current
    graph structure — a structurally stale view rebuilds its query graph on
    the next read anyway (live and restored sessions alike, consuming the
    same edge-id sequence), so persisting its stale expansion would be
    wasted bytes.
    """
    view = record.view
    payload: Dict[str, object] = {
        "view_id": record.view_id,
        "name": record.name,
        "keywords": list(view.keywords),
        "k": view.k,
        "created_index": record.created_index,
        "synced_weights_version": record.synced_weights_version,
        "synced_structure_version": record.synced_structure_version,
    }
    if record.synced_structure_version == base_graph.structure_version:
        payload["query_graph"] = query_graph_delta_payload(view.query_graph, base_graph)
    else:
        payload["query_graph"] = None
    return payload


def overlay_payload(service) -> Dict[str, object]:
    """The always-rewritten small tail state of one session."""
    # Duck-typed like everything else here: the tenant registry exists on
    # multi-tenant-capable services; older/simpler session objects without
    # one persist an empty mapping.
    tenants = getattr(service, "tenants", None)
    return {
        "tenants": tenants.export_state() if tenants is not None else {},
        "edge_id_counter": edge_id_counter(),
        "weights_version": service.graph.weights.version,
        "structure_version": service.graph.structure_version,
        "views": {
            "created": service.views.created_count,
            "records": [
                view_record_payload(record, service.graph)
                for record in service.views.records()
            ],
        },
        "learner_steps": service.learner.steps_processed,
        "feedback_events": [event_payload(event) for event in service.feedback_log],
        "registrations": [
            [record.source_name, record.strategy]
            for record in service.registrar.history
        ],
        "refreshes": service._refreshes,
        "refreshes_skipped": service._refreshes_skipped,
        # Idempotency keys of applied mutations (serving-layer writer lane):
        # keys only — results are in-memory conveniences.  Duck-typed so
        # session objects predating the fault-tolerant server persist [].
        "applied_ops": list(getattr(service, "_applied_ops", None) or ()),
    }


def snapshot_body(service, holds_rows: bool, snapshot_version: int) -> Dict[str, object]:
    """The full session snapshot document body."""
    body: Dict[str, object] = {
        "kind": "session",
        "snapshot_version": snapshot_version,
        "config": service_config_payload(service.config),
        "graph": graph_payload(service.graph),
        "weights": weights_payload(service.graph.weights),
        "profiles": service.profile_index.export_state(),
        "overlay": overlay_payload(service),
    }
    if not holds_rows:
        body["catalog"] = {
            "sources": [source_to_dict(source) for source in service.catalog]
        }
    else:
        body["catalog"] = None
    return body


# ----------------------------------------------------------------------
# Restore side
# ----------------------------------------------------------------------
def restore_core(
    body: Dict[str, object],
    entries: List[Dict[str, object]],
    catalog,
    graph_config,
    holds_rows: bool,
) -> Tuple[object, CatalogProfileIndex, Dict[str, object]]:
    """Rebuild graph + profile index from a snapshot and replay the journal.

    Returns ``(graph, profile_index, overlay)`` where ``overlay`` is the
    most recent tail state (from the last journal entry, falling back to
    the snapshot's own).  The caller assembles the service around these and
    then installs the overlay's counters — replay bumps version counters as
    a side effect, so the overlay values are authoritative.
    """
    # Discard journal entries that belong to an older snapshot — possible
    # only if a crash separated a sidecar snapshot replace from its journal
    # truncation (the SQLite store commits both in one transaction).
    snapshot_version = body.get("snapshot_version", 1)
    entries = [
        entry
        for entry in entries
        if entry.get("after_snapshot_version", snapshot_version) == snapshot_version
    ]
    weights = restore_weights(body.get("weights") or {})
    graph = restore_graph(body.get("graph") or {}, config=graph_config, weights=weights)
    profile_index = CatalogProfileIndex.from_state(body.get("profiles") or {})
    for entry in entries:
        apply_delta(entry, catalog, graph, profile_index, holds_rows)
    overlay = entries[-1]["overlay"] if entries else body["overlay"]
    return graph, profile_index, overlay


# ----------------------------------------------------------------------
# The checkpoint manager
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SaveReport:
    """What one :meth:`QService.save` call actually did."""

    #: ``"snapshot"`` (full checkpoint written), ``"append"`` (one journal
    #: entry added) or ``"noop"`` (nothing changed since the last save).
    action: str
    snapshot_version: int
    journal_entries: int
    compacted: bool = False


class SessionPersistence:
    """Owns one session's store, shadow state and checkpoint policy."""

    def __init__(self, store: SessionStore, compact_after: int = 64) -> None:
        self.store = store
        self.compact_after = max(int(compact_after), 1)
        self.snapshot_version = 0
        self._shadow: Optional[StateShadow] = None
        self._last_overlay: Optional[Dict[str, object]] = None

    def attach_restored(
        self, service, snapshot_version: int, overlay: Dict[str, object]
    ) -> None:
        """Adopt a freshly restored session as the new shadow baseline."""
        self.snapshot_version = snapshot_version
        self._shadow = StateShadow(service)
        self._last_overlay = overlay

    def save(self, service, compact: bool = False) -> SaveReport:
        """Checkpoint ``service``: full snapshot, delta append, or no-op."""
        if self.snapshot_version == 0 or self._shadow is None:
            return self._write_snapshot(service, compacted=False)

        # Cheap compaction triggers first — a compacting save never needs
        # the diff it would immediately discard.
        entry_count = self.store.entry_count()
        if compact or entry_count + 1 > self.compact_after:
            return self._write_snapshot(service, compacted=True)
        delta, needs_snapshot = build_delta(
            service, self._shadow, self.store.holds_rows
        )
        if needs_snapshot:
            return self._write_snapshot(service, compacted=True)
        overlay = overlay_payload(service)
        if is_empty_delta(delta) and overlay == self._last_overlay:
            return SaveReport(
                action="noop",
                snapshot_version=self.snapshot_version,
                journal_entries=entry_count,
            )
        delta["overlay"] = overlay
        delta["after_snapshot_version"] = self.snapshot_version
        self.store.append_entry(delta)
        self._rebase(service, overlay)
        return SaveReport(
            action="append",
            snapshot_version=self.snapshot_version,
            journal_entries=entry_count + 1,
        )

    def _write_snapshot(self, service, compacted: bool) -> SaveReport:
        body = snapshot_body(
            service, self.store.holds_rows, snapshot_version=self.snapshot_version + 1
        )
        self.store.write_snapshot(body)
        self.snapshot_version += 1
        self._rebase(service, body["overlay"])
        return SaveReport(
            action="snapshot",
            snapshot_version=self.snapshot_version,
            journal_entries=0,
            compacted=compacted,
        )

    def _rebase(self, service, overlay: Dict[str, object]) -> None:
        if self._shadow is None:
            self._shadow = StateShadow(service)
        else:
            self._shadow.capture(service)
        self._last_overlay = overlay
