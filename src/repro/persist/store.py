"""Session stores: where the snapshot and journal physically live.

Two implementations cover the two storage worlds of the catalog layer:

* :class:`SqliteSessionStore` — the snapshot and journal live in dedicated
  ``_repro_session_snapshot`` / ``_repro_session_journal`` tables **inside
  the catalog's own SQLite database**, so one file holds the whole session:
  rows, schemas, graph, weights, profiles, views.  Because the rows are
  already durable there, snapshots omit them (``holds_rows``).
* :class:`FileSessionStore` — for memory-backed catalogs (which the seed
  could never persist at all): the snapshot is a JSON sidecar file at the
  user-supplied path and the journal is an append-only JSON-lines file next
  to it (``<path>.journal``).  Snapshots include full catalog row data.

Both stores frame every document with the format version and a SHA-256
checksum (see :mod:`repro.persist.snapshot`); loading a truncated, edited or
version-incompatible session raises a typed
:class:`~repro.exceptions.SnapshotError` instead of silently restoring
garbage.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..exceptions import SnapshotError
from .snapshot import unwrap_document, wrap_document

#: Suffix of the sidecar journal next to a file-store snapshot.
JOURNAL_SUFFIX = ".journal"

_SNAPSHOT_TABLE = "_repro_session_snapshot"
_JOURNAL_TABLE = "_repro_session_journal"

#: First bytes of every SQLite database file — used by
#: :func:`sniff_sqlite_file` so ``QService.open(path)`` can tell a whole-
#: session database from a JSON sidecar without the caller saying which.
_SQLITE_MAGIC = b"SQLite format 3\x00"


def sniff_sqlite_file(path) -> bool:
    """Whether ``path`` exists and starts with the SQLite file magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC
    except OSError:
        return False


class SessionStore(ABC):
    """Where one session's snapshot and journal are read and written."""

    #: Whether relation rows are durable in the same place as the snapshot
    #: (the catalog backend).  When ``False``, snapshots and journal entries
    #: must carry row data themselves.
    holds_rows: bool = False

    #: Human-readable location, for error messages and reports.
    description: str = "session store"

    @abstractmethod
    def load(self) -> Optional[Tuple[Dict[str, object], List[Dict[str, object]]]]:
        """The stored ``(snapshot body, journal entry bodies)``, or ``None``."""

    @abstractmethod
    def write_snapshot(self, body: Dict[str, object]) -> None:
        """Replace the snapshot and truncate the journal (a checkpoint)."""

    @abstractmethod
    def append_entry(self, body: Dict[str, object]) -> None:
        """Append one journal entry after the current snapshot."""

    @abstractmethod
    def entry_count(self) -> int:
        """Number of journal entries on top of the stored snapshot."""


class SqliteSessionStore(SessionStore):
    """Snapshot + journal inside the catalog's own SQLite database.

    The ``_repro_session_*`` tables are created lazily on the first *write*:
    merely opening (or failing to open) a catalog database must not mutate
    it.  A snapshot replace and its journal truncation commit in **one**
    transaction, so a crash can never leave a new snapshot paired with the
    previous snapshot's journal entries.
    """

    holds_rows = True

    def __init__(self, backend) -> None:
        if not getattr(backend, "supports_session_store", False):
            raise SnapshotError(
                f"backend {getattr(backend, 'kind', backend)!r} cannot host a "
                "session store; save to a sidecar path instead"
            )
        self.backend = backend
        self.description = f"sqlite database {backend.path!r}"

    def _ensure_tables(self) -> None:
        self.backend.execute_write_batch(
            [
                (
                    f"CREATE TABLE IF NOT EXISTS {_SNAPSHOT_TABLE} "
                    "(id INTEGER PRIMARY KEY CHECK (id = 1), payload TEXT NOT NULL)",
                    (),
                ),
                (
                    f"CREATE TABLE IF NOT EXISTS {_JOURNAL_TABLE} "
                    "(seq INTEGER PRIMARY KEY, payload TEXT NOT NULL)",
                    (),
                ),
            ]
        )

    def _has_tables(self) -> bool:
        rows = self.backend.execute_sql(
            "SELECT COUNT(*) FROM sqlite_master WHERE type = 'table' AND name = ?",
            (_SNAPSHOT_TABLE,),
        )
        return bool(rows[0][0])

    def load(self):
        if not self._has_tables():
            return None
        rows = self.backend.execute_sql(f"SELECT payload FROM {_SNAPSHOT_TABLE} WHERE id = 1")
        if not rows:
            return None
        snapshot = unwrap_document(rows[0][0], "snapshot")
        entries = [
            unwrap_document(payload, "journal entry")
            for (payload,) in self.backend.execute_sql(
                f"SELECT payload FROM {_JOURNAL_TABLE} ORDER BY seq"
            )
        ]
        return snapshot, entries

    def write_snapshot(self, body) -> None:
        self._ensure_tables()
        # One transaction: snapshot replace + journal truncation are atomic.
        self.backend.execute_write_batch(
            [
                (
                    f"INSERT OR REPLACE INTO {_SNAPSHOT_TABLE} (id, payload) VALUES (1, ?)",
                    (wrap_document(body),),
                ),
                (f"DELETE FROM {_JOURNAL_TABLE}", ()),
            ]
        )

    def append_entry(self, body) -> None:
        self._ensure_tables()
        self.backend.execute_write(
            f"INSERT INTO {_JOURNAL_TABLE} (seq, payload) VALUES "
            f"(COALESCE((SELECT MAX(seq) FROM {_JOURNAL_TABLE}), -1) + 1, ?)",
            (wrap_document(body),),
        )

    def entry_count(self) -> int:
        if not self._has_tables():
            return 0
        return self.backend.execute_sql(f"SELECT COUNT(*) FROM {_JOURNAL_TABLE}")[0][0]


class FileSessionStore(SessionStore):
    """Snapshot in a JSON sidecar file, journal in ``<path>.journal`` lines."""

    holds_rows = False

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.journal_path = Path(str(self.path) + JOURNAL_SUFFIX)
        self.description = f"session file {str(self.path)!r}"

    def load(self):
        if not self.path.exists():
            return None
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SnapshotError(f"cannot read {self.description}: {exc}") from exc
        snapshot = unwrap_document(text, "snapshot")
        entries: List[Dict[str, object]] = []
        if self.journal_path.exists():
            for line in self.journal_path.read_text(encoding="utf-8").splitlines():
                if line.strip():
                    entries.append(unwrap_document(line, "journal entry"))
        return snapshot, entries

    def write_snapshot(self, body) -> None:
        document = wrap_document(body)
        tmp = Path(str(self.path) + ".tmp")
        tmp.write_text(document + "\n", encoding="utf-8")
        os.replace(tmp, self.path)
        # Truncate the journal: the snapshot now includes everything.
        self.journal_path.write_text("", encoding="utf-8")

    def append_entry(self, body) -> None:
        if not self.path.exists():
            raise SnapshotError(
                f"cannot append a journal entry: {self.description} has no snapshot"
            )
        with open(self.journal_path, "a", encoding="utf-8") as handle:
            handle.write(wrap_document(body) + "\n")

    def entry_count(self) -> int:
        if not self.journal_path.exists():
            return 0
        return sum(
            1
            for line in self.journal_path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        )
