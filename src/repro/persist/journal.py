"""The mutation journal: incremental deltas between session checkpoints.

After the first snapshot, :meth:`QService.save` does not re-serialize the
session — it appends one *delta entry* describing everything that changed
since the previous save: feedback steps (as weight movements plus the new
feedback-log events), source registrations/removals (graph nodes and edges,
catalog membership, profile-index growth), and association-confidence merges
(in-place edge feature updates).  On reopen the entries replay in order on
top of the snapshot, reproducing the live state exactly.

The delta is computed by *shadow diffing* rather than by instrumenting every
mutation site: :class:`StateShadow` captures cheap references (node/edge/
profile object identities, a weight copy) at each save, and
:func:`build_delta` compares the live session against them.  This makes the
journal robust by construction — mutations that happen outside the service's
methods (a read that rebuilds a view's query graph and seeds fresh
keyword-edge weights, a benchmark growing the catalog directly) are captured
all the same, because the diff sees the state, not the call sites.

Identity, not equality, detects replacement: a source that was removed and
re-registered under the same name yields equal-looking nodes at new dict
positions, and insertion order feeds tie-breaks downstream — object identity
distinguishes the two where value comparison cannot.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..datastore.csvio import source_from_dict, source_to_dict
from ..exceptions import SnapshotError, UnknownRelationError
from .snapshot import (
    apply_edge_change,
    edge_payload,
    node_payload,
    restore_edge,
    restore_node,
)


class StateShadow:
    """Cheap reference copy of the persisted session state at the last save."""

    def __init__(self, service) -> None:
        self.capture(service)

    def capture(self, service) -> None:
        """Record the current state references of ``service``."""
        graph = service.graph
        self.nodes = {node.node_id: node for node in graph.nodes()}
        self.edge_features = {edge.edge_id: edge.features for edge in graph.edges()}
        self.weights = graph.weights.as_dict()
        self.source_names = list(service.catalog.source_names())
        self.profile_refs = {
            relation: service.profile_index.relation_profile(relation)
            for relation in service.profile_index.profiled_relations()
        }
        self.table_versions = {
            table.schema.qualified_name: (table, table.version)
            for table in service.catalog.all_tables()
        }
        self.event_count = len(service.feedback_log)


def build_delta(service, shadow: StateShadow, holds_rows: bool) -> Tuple[Dict[str, object], bool]:
    """Diff ``service`` against ``shadow``; returns ``(delta, needs_snapshot)``.

    ``needs_snapshot`` is ``True`` when the change cannot be expressed as a
    journal entry — rows of an *existing* relation mutated while the session
    store does not hold row data (only a fresh full snapshot captures those),
    or a profile of an existing relation was rebuilt in place.  The caller
    then compacts instead of appending.
    """
    graph = service.graph
    catalog = service.catalog
    index = service.profile_index

    current_nodes = {node.node_id: node for node in graph.nodes()}
    current_edges = {edge.edge_id: edge for edge in graph.edges()}
    current_sources = list(catalog.source_names())

    nodes_removed = [
        node_id
        for node_id, node in shadow.nodes.items()
        if current_nodes.get(node_id) is not node
    ]
    nodes_added = [
        node_payload(node)
        for node_id, node in current_nodes.items()
        if shadow.nodes.get(node_id) is not node
    ]
    edges_removed = [
        edge_id for edge_id in shadow.edge_features if edge_id not in current_edges
    ]
    edges_added = [
        edge_payload(edge)
        for edge_id, edge in current_edges.items()
        if edge_id not in shadow.edge_features
    ]
    edges_changed = [
        edge_payload(edge)
        for edge_id, edge in current_edges.items()
        if edge_id in shadow.edge_features
        and shadow.edge_features[edge_id] is not edge.features
    ]
    weights_set = {
        name: value
        for name, value in graph.weights.items()
        if shadow.weights.get(name) != value
    }

    shadow_set = set(shadow.source_names)
    current_set = set(current_sources)
    sources_removed = [name for name in shadow.source_names if name not in current_set]
    added_names = [name for name in current_sources if name not in shadow_set]
    sources_added = []
    for name in added_names:
        source = catalog.source(name)
        relations = [table.schema.qualified_name for table in source]
        sources_added.append(
            {
                "name": name,
                "source": None if holds_rows else source_to_dict(source),
                "profiles": index.export_state(relations=relations),
            }
        )

    # Changes the journal cannot express: data mutations of relations that
    # survived since the last save (their rows live only in the snapshot
    # when the store holds no row data), and re-profiled existing relations.
    needs_snapshot = False
    added_or_removed = {
        relation
        for name in (set(added_names) | set(sources_removed))
        for relation in _source_relations(catalog, shadow, name)
    }
    if not holds_rows:
        for relation, (table, version) in shadow.table_versions.items():
            if relation in added_or_removed:
                continue
            try:
                live = catalog.relation(relation)
            except UnknownRelationError:
                continue
            if live is not table or live.version != version:
                needs_snapshot = True
                break
    if not needs_snapshot:
        for relation, profile in shadow.profile_refs.items():
            if relation in added_or_removed:
                continue
            live_profile = index.relation_profile(relation)
            if live_profile is not None and live_profile is not profile:
                needs_snapshot = True
                break

    delta = {
        "kind": "delta",
        "nodes_removed": nodes_removed,
        "nodes_added": nodes_added,
        "edges_removed": edges_removed,
        "edges_changed": edges_changed,
        "edges_added": edges_added,
        "weights_set": weights_set,
        "sources_removed": sources_removed,
        "sources_added": sources_added,
        "profile_epoch": index.epoch,
    }
    return delta, needs_snapshot


def _source_relations(catalog, shadow: StateShadow, source_name: str) -> List[str]:
    """Qualified relations of a source, live or from the shadow's bookkeeping."""
    if catalog.has_source(source_name):
        return [table.schema.qualified_name for table in catalog.source(source_name)]
    prefix = f"{source_name}."
    return [rel for rel in shadow.table_versions if rel.startswith(prefix)]


def is_empty_delta(delta: Dict[str, object]) -> bool:
    """Whether the delta records no graph/weight/catalog movement at all."""
    return not any(
        delta[key]
        for key in (
            "nodes_removed",
            "nodes_added",
            "edges_removed",
            "edges_changed",
            "edges_added",
            "weights_set",
            "sources_removed",
            "sources_added",
        )
    )


def apply_delta(delta: Dict[str, object], catalog, graph, profile_index, holds_rows: bool) -> None:
    """Replay one journal entry on top of the partially restored session state.

    Order matters and mirrors how the live mutations layered: retractions
    first (removed sources, edges, then nodes), then catalog growth, then
    graph growth (nodes before the edges that reference them), then
    confidence merges and weight movements.
    """
    for name in delta.get("sources_removed", ()):
        if catalog.has_source(name):
            catalog.remove_source(name)
        profile_index.remove_source(name)
    for edge_id in delta.get("edges_removed", ()):
        if graph.has_edge(edge_id):
            graph.remove_edge(edge_id)
    for node_id in delta.get("nodes_removed", ()):
        if graph.has_node(node_id):
            graph.remove_node(node_id)

    for spec in delta.get("sources_added", ()):
        name = spec["name"]
        if not catalog.has_source(name):
            payload = spec.get("source")
            if payload is None:
                raise SnapshotError(
                    f"journal adds source {name!r} but neither the catalog "
                    "backend nor the entry carries its rows"
                )
            catalog.add_source(source_from_dict(payload))
        profile_index.absorb_state(spec["profiles"])

    for node_spec in delta.get("nodes_added", ()):
        graph.add_node(restore_node(node_spec))
    for edge_spec in delta.get("edges_added", ()):
        graph.add_edge(restore_edge(edge_spec))
    for edge_spec in delta.get("edges_changed", ()):
        apply_edge_change(graph, edge_spec)

    for name, value in (delta.get("weights_set") or {}).items():
        graph.weights.set(name, value)
    if "profile_epoch" in delta:
        profile_index.epoch = delta["profile_epoch"]
