"""Query-graph expansion from keyword queries (paper Section 2.2, Figure 3).

Given a keyword query ``Q = {K1, ..., Km}``, the search graph is expanded
into a *query graph*:

* a keyword node is added for each ``Ki``;
* each keyword is matched against schema labels (relation and attribute
  names) with a keyword-similarity metric (tf-idf by default); matching
  nodes get a ``KEYWORD_MATCH`` edge whose cost is ``w * s`` where ``s`` is
  the mismatch cost and ``w`` an adjustable weight;
* data values matching the keyword are materialized lazily: a value node is
  added per matching cell, linked to its attribute node by a zero-cost
  ``VALUE_MEMBERSHIP`` edge and to the keyword node by a similarity edge.

The expansion returns a :class:`QueryGraph` wrapping the expanded
:class:`~repro.graph.search_graph.SearchGraph` plus the keyword node ids —
exactly what the Steiner-tree machinery needs as terminals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datastore.database import Catalog
from ..datastore.indexes import ValueIndex
from ..similarity.tfidf import TfIdfScorer
from .edges import Edge, EdgeKind
from .features import DEFAULT_FEATURE, FeatureVector, edge_feature
from .nodes import (
    Node,
    NodeKind,
    attribute_node_id,
    make_keyword_node,
    make_value_node,
)
from .search_graph import SearchGraph

# Feature carrying the keyword mismatch cost ``s`` on keyword-match edges.
KEYWORD_MISMATCH_FEATURE = "keyword_mismatch"


@dataclass
class KeywordMatch:
    """One match of a keyword against a schema element or data value."""

    keyword: str
    node_id: str
    similarity: float
    mismatch_cost: float
    target_kind: NodeKind


@dataclass
class QueryGraph:
    """An expanded query graph: base graph + keyword terminals.

    Attributes
    ----------
    graph:
        The expanded :class:`SearchGraph` (a copy of the base search graph
        sharing its weight vector, plus keyword and value nodes).
    keyword_nodes:
        Mapping from keyword text to its node id.
    matches:
        All keyword matches that produced edges, useful for debugging and
        for the examples.
    """

    graph: SearchGraph
    keyword_nodes: Dict[str, str] = field(default_factory=dict)
    matches: List[KeywordMatch] = field(default_factory=list)

    @property
    def terminals(self) -> Tuple[str, ...]:
        """The keyword node ids (the Steiner tree terminals)."""
        return tuple(self.keyword_nodes.values())

    def matches_for(self, keyword: str) -> List[KeywordMatch]:
        """The matches recorded for one keyword."""
        return [m for m in self.matches if m.keyword == keyword]


class QueryGraphBuilder:
    """Expands a search graph into a query graph for a keyword query.

    Parameters
    ----------
    catalog:
        The catalog backing the search graph (used to find matching data
        values).
    value_index:
        Optional pre-built :class:`ValueIndex`; built lazily from the
        catalog when omitted.
    scorer:
        Optional :class:`TfIdfScorer`; built from the catalog's schema
        labels and values when omitted.
    similarity_threshold:
        Minimum keyword similarity for a match edge to be added.
    max_value_matches:
        Cap on the number of value nodes materialized per keyword (the
        "lazy" expansion of the paper).
    keyword_match_weight:
        The starting weight ``w`` that scales the mismatch cost ``s``.
    """

    def __init__(
        self,
        catalog: Catalog,
        value_index: Optional[ValueIndex] = None,
        scorer: Optional[TfIdfScorer] = None,
        similarity_threshold: float = 0.3,
        max_value_matches: int = 25,
        keyword_match_weight: float = 1.0,
    ) -> None:
        self.catalog = catalog
        # Both corpus structures build lazily on first use: a builder handed
        # to restored views (which carry their expanded query graphs in the
        # session snapshot) never pays the full catalog scan unless a view
        # actually rebuilds or a new keyword query is expanded.
        self._value_index = value_index
        self._scorer = scorer
        self.similarity_threshold = similarity_threshold
        self.max_value_matches = max_value_matches
        self.keyword_match_weight = keyword_match_weight

    @property
    def value_index(self) -> ValueIndex:
        """The keyword→cell occurrence index (built from the catalog on demand)."""
        if self._value_index is None:
            self._value_index = ValueIndex.from_catalog(self.catalog)
        return self._value_index

    @property
    def scorer(self) -> TfIdfScorer:
        """The schema-label tf-idf scorer (built from the catalog on demand)."""
        if self._scorer is None:
            self._scorer = self._build_scorer(self.catalog)
        return self._scorer

    @staticmethod
    def _build_scorer(catalog: Catalog) -> TfIdfScorer:
        scorer = TfIdfScorer()
        for source in catalog:
            for table in source:
                scorer.add_document(table.schema.name)
                for attr in table.schema:
                    scorer.add_document(attr.name)
        return scorer

    def add_source(self, source) -> None:
        """Fold a newly registered source into the builder's shared state.

        Incremental counterpart of rebuilding the builder from the grown
        catalog: the value index gains the source's cells and the tf-idf
        scorer gains its schema-label documents, ending in exactly the state
        a from-scratch build over the grown catalog would produce.  Views
        holding this builder see the new source on their next rebuild.
        Structures that have not been built yet are left alone — their
        eventual lazy build over the grown catalog includes the source.
        """
        if self._value_index is not None:
            self._value_index.index_source(source)
        if self._scorer is not None:
            for table in source:
                self._scorer.add_document(table.schema.name)
                for attr in table.schema:
                    self._scorer.add_document(attr.name)

    def remove_source(self, source) -> None:
        """Retract a source admitted via :meth:`add_source` (rollback path).

        The value index retracts exactly; the tf-idf scorer's document
        frequencies are decremented per label so corpus statistics return to
        their pre-registration values.  Unbuilt structures need no retraction
        — their eventual build reads the already-shrunk catalog.
        """
        if self._value_index is not None:
            self._value_index.remove_source(source.name)
        if self._scorer is not None:
            for table in source:
                self._scorer.remove_document(table.schema.name)
                for attr in table.schema:
                    self._scorer.remove_document(attr.name)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def expand(self, base_graph: SearchGraph, keywords: Sequence[str]) -> QueryGraph:
        """Expand ``base_graph`` for ``keywords`` and return the query graph."""
        graph = base_graph.copy(share_weights=True)
        result = QueryGraph(graph=graph)
        for keyword in keywords:
            keyword_node = make_keyword_node(keyword)
            graph.add_node(keyword_node)
            result.keyword_nodes[keyword] = keyword_node.node_id
            self._match_schema_elements(graph, keyword, keyword_node, result)
            self._match_data_values(graph, keyword, keyword_node, result)
        return result

    # ------------------------------------------------------------------
    # Schema-element matching
    # ------------------------------------------------------------------
    def _match_schema_elements(
        self, graph: SearchGraph, keyword: str, keyword_node: Node, result: QueryGraph
    ) -> None:
        for node in graph.nodes():
            if node.kind not in (NodeKind.RELATION, NodeKind.ATTRIBUTE):
                continue
            similarity = self.scorer.similarity(keyword, node.label)
            if similarity < self.similarity_threshold:
                continue
            mismatch = 1.0 - similarity
            self._add_match_edge(graph, keyword_node.node_id, node.node_id, mismatch)
            result.matches.append(
                KeywordMatch(
                    keyword=keyword,
                    node_id=node.node_id,
                    similarity=similarity,
                    mismatch_cost=mismatch,
                    target_kind=node.kind,
                )
            )

    # ------------------------------------------------------------------
    # Lazy value matching
    # ------------------------------------------------------------------
    def _match_data_values(
        self, graph: SearchGraph, keyword: str, keyword_node: Node, result: QueryGraph
    ) -> None:
        occurrences = self.value_index.lookup(keyword)
        if not occurrences:
            occurrences = self.value_index.lookup_substring(
                keyword, limit=self.max_value_matches
            )
        seen_cells: Set[Tuple[str, str, int]] = set()
        added = 0
        for occurrence in occurrences:
            if added >= self.max_value_matches:
                break
            cell = (occurrence.relation, occurrence.attribute, occurrence.row_id)
            if cell in seen_cells:
                continue
            seen_cells.add(cell)
            similarity = self.scorer.similarity(keyword, occurrence.value)
            if similarity < self.similarity_threshold:
                # Exact-substring matches of very short keywords can still
                # score low under tf-idf; fall back to a containment bonus.
                if keyword.lower() in occurrence.value.lower():
                    similarity = max(similarity, 0.5)
                else:
                    continue
            mismatch = 1.0 - similarity
            value_node = make_value_node(
                occurrence.relation, occurrence.attribute, occurrence.row_id, occurrence.value
            )
            graph.add_node(value_node)
            attr_id = attribute_node_id(occurrence.relation, occurrence.attribute)
            if graph.has_node(attr_id) and not graph.find_edges(
                value_node.node_id, attr_id, EdgeKind.VALUE_MEMBERSHIP
            ):
                graph.add_edge(
                    Edge.create(value_node.node_id, attr_id, EdgeKind.VALUE_MEMBERSHIP)
                )
            self._add_match_edge(graph, keyword_node.node_id, value_node.node_id, mismatch)
            result.matches.append(
                KeywordMatch(
                    keyword=keyword,
                    node_id=value_node.node_id,
                    similarity=similarity,
                    mismatch_cost=mismatch,
                    target_kind=NodeKind.VALUE,
                )
            )
            added += 1

    # ------------------------------------------------------------------
    # Edge construction
    # ------------------------------------------------------------------
    def _add_match_edge(
        self, graph: SearchGraph, keyword_node_id: str, target_node_id: str, mismatch: float
    ) -> Edge:
        edge = Edge.create(
            keyword_node_id,
            target_node_id,
            EdgeKind.KEYWORD_MATCH,
            metadata={"mismatch": mismatch},
        )
        edge.features = FeatureVector(
            {
                KEYWORD_MISMATCH_FEATURE: mismatch,
                edge_feature(edge.edge_id): 1.0,
            }
        )
        if KEYWORD_MISMATCH_FEATURE not in graph.weights:
            graph.weights.set(KEYWORD_MISMATCH_FEATURE, self.keyword_match_weight)
        # Ensure keyword-match edges always carry a small positive base cost
        # even for perfect matches, so that Steiner trees prefer fewer hops.
        if edge_feature(edge.edge_id) not in graph.weights:
            graph.weights.set(edge_feature(edge.edge_id), 0.05)
        return graph.add_edge(edge)
