"""α-cost neighborhoods (paper Section 3.3, Figure 5).

``GETCOSTNEIGHBORHOOD(G, C, α, k)`` — all nodes reachable from keyword node
``k`` at cost at most α — is the pruning primitive used by
``VIEWBASEDALIGNER``: a new source can only affect a view's top-k answers if
one of its relations can participate in a Steiner tree of cost ≤ α, and
because edge costs are non-negative any such relation must lie within the α
neighborhood of some keyword node.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, Optional, Set, Tuple

from .nodes import Node, NodeKind
from .search_graph import SearchGraph

#: Per-graph memo of computed relation neighborhoods.  The view-based
#: aligner asks for the same ``(start nodes, α)`` neighborhood once per
#: introduced source while the underlying view graph is unchanged; the memo
#: is keyed on the graph's ``(weights.version, structure_version)`` so any
#: cost or structure movement invalidates it naturally.  Weak keys let the
#: memo die with its graph.
_RELATION_NEIGHBORHOOD_MEMO: "weakref.WeakKeyDictionary[SearchGraph, Dict[Tuple, Set[str]]]" = (
    weakref.WeakKeyDictionary()
)


def cost_neighborhood(
    graph: SearchGraph,
    start_nodes: Iterable[str],
    alpha: float,
) -> Dict[str, float]:
    """All nodes within cost ``alpha`` of any node in ``start_nodes``.

    Returns a mapping from node id to its distance from the nearest start
    node.  Start nodes themselves are included with distance 0.
    """
    start_list = [n for n in start_nodes if graph.has_node(n)]
    if not start_list:
        return {}
    return graph.shortest_path_costs(start_list, max_cost=alpha)


def neighborhood_relations(
    graph: SearchGraph,
    start_nodes: Iterable[str],
    alpha: float,
) -> Set[str]:
    """Qualified relation names whose nodes fall inside the α neighborhood.

    A relation is in the neighborhood if its relation node *or any of its
    attribute nodes* is within cost α of a start node (an alignment against
    any of those attributes could contribute a tree of cost ≤ α).

    Results are memoized per graph, keyed on the start set, α and the
    graph's version counters, so repeated registrations against an
    unchanged view graph pay the Dijkstra once.
    """
    key = (
        tuple(sorted(set(start_nodes))),
        alpha,
        graph.weights.version,
        graph.structure_version,
    )
    memo = _RELATION_NEIGHBORHOOD_MEMO.get(graph)
    if memo is None:
        memo = {}
        _RELATION_NEIGHBORHOOD_MEMO[graph] = memo
    cached = memo.get(key)
    if cached is not None:
        return set(cached)
    distances = cost_neighborhood(graph, key[0], alpha)
    relations: Set[str] = set()
    for node_id in distances:
        node = graph.node(node_id)
        if node.kind in (NodeKind.RELATION, NodeKind.ATTRIBUTE) and node.relation:
            relations.add(node.relation)
    # Evict stale versions for this graph (only the current key is useful).
    for stale in [k for k in memo if k[2:] != key[2:]]:
        del memo[stale]
    memo[key] = frozenset(relations)
    return relations


def neighborhood_attributes(
    graph: SearchGraph,
    start_nodes: Iterable[str],
    alpha: float,
) -> Set[str]:
    """Attribute node ids inside the α neighborhood of the start nodes."""
    distances = cost_neighborhood(graph, start_nodes, alpha)
    return {
        node_id
        for node_id in distances
        if graph.node(node_id).kind is NodeKind.ATTRIBUTE
    }
