"""Search graph, query graph, features and cost model.

Public API
----------
* :class:`SearchGraph`, :class:`GraphConfig` — the graph of relations,
  attributes and associations (paper Section 2.1).
* :class:`Node`, :class:`NodeKind`, :class:`Edge`, :class:`EdgeKind` — graph
  elements.
* :class:`FeatureVector`, :class:`WeightVector` and the feature-name helpers
  — the weighted-feature edge cost model (paper Section 3.4).
* :class:`QueryGraphBuilder`, :class:`QueryGraph` — keyword-query expansion
  (paper Section 2.2).
* :func:`cost_neighborhood`, :func:`neighborhood_relations` — α-cost
  neighborhoods used by the view-based aligner (paper Section 3.3).
"""

from .edges import Edge, EdgeKind, default_association_features
from .features import (
    DEFAULT_FEATURE,
    FeatureVector,
    WeightVector,
    bin_feature,
    edge_feature,
    is_edge_feature,
    is_matcher_feature,
    is_relation_feature,
    matcher_feature,
    relation_feature,
)
from .neighborhood import cost_neighborhood, neighborhood_attributes, neighborhood_relations
from .nodes import (
    Node,
    NodeKind,
    attribute_node_id,
    keyword_node_id,
    make_attribute_node,
    make_keyword_node,
    make_relation_node,
    make_value_node,
    relation_node_id,
    value_node_id,
)
from .query_graph import KEYWORD_MISMATCH_FEATURE, KeywordMatch, QueryGraph, QueryGraphBuilder
from .search_graph import GraphConfig, SearchGraph

__all__ = [
    "DEFAULT_FEATURE",
    "Edge",
    "EdgeKind",
    "FeatureVector",
    "GraphConfig",
    "KEYWORD_MISMATCH_FEATURE",
    "KeywordMatch",
    "Node",
    "NodeKind",
    "QueryGraph",
    "QueryGraphBuilder",
    "SearchGraph",
    "WeightVector",
    "attribute_node_id",
    "bin_feature",
    "cost_neighborhood",
    "default_association_features",
    "edge_feature",
    "is_edge_feature",
    "is_matcher_feature",
    "is_relation_feature",
    "keyword_node_id",
    "make_attribute_node",
    "make_keyword_node",
    "make_relation_node",
    "make_value_node",
    "matcher_feature",
    "neighborhood_attributes",
    "neighborhood_relations",
    "relation_feature",
    "relation_node_id",
    "value_node_id",
]
