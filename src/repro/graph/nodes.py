"""Search-graph and query-graph nodes.

The search graph (paper Section 2.1, Figure 2) contains *relation* nodes and
*attribute* nodes; data values are *virtual* nodes materialized lazily at
query time; keyword queries add *keyword* nodes (Figure 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class NodeKind(enum.Enum):
    """The kind of a graph node."""

    RELATION = "relation"
    ATTRIBUTE = "attribute"
    VALUE = "value"
    KEYWORD = "keyword"


@dataclass(frozen=True)
class Node:
    """A node of the search/query graph.

    Attributes
    ----------
    node_id:
        Globally unique identifier (also the dictionary key inside the
        graph).  The helpers below produce canonical ids so that the same
        schema element always maps to the same node id.
    kind:
        The :class:`NodeKind`.
    label:
        Human-readable label: the relation name, attribute name, data value
        or keyword text.
    relation:
        For attribute and value nodes, the qualified relation name they
        belong to.
    attribute:
        For value nodes, the local attribute name the value appears in.
    """

    node_id: str
    kind: NodeKind
    label: str
    relation: Optional[str] = None
    attribute: Optional[str] = None

    def is_relation(self) -> bool:
        """Whether this is a relation node."""
        return self.kind is NodeKind.RELATION

    def is_attribute(self) -> bool:
        """Whether this is an attribute node."""
        return self.kind is NodeKind.ATTRIBUTE

    def is_value(self) -> bool:
        """Whether this is a (lazily materialized) data-value node."""
        return self.kind is NodeKind.VALUE

    def is_keyword(self) -> bool:
        """Whether this is a keyword node added by a query."""
        return self.kind is NodeKind.KEYWORD


def relation_node_id(qualified_relation: str) -> str:
    """Canonical node id for a relation node."""
    return f"rel:{qualified_relation}"


def attribute_node_id(qualified_relation: str, attribute: str) -> str:
    """Canonical node id for an attribute node."""
    return f"attr:{qualified_relation}.{attribute}"


def value_node_id(qualified_relation: str, attribute: str, row_id: int, value: str) -> str:
    """Canonical node id for a value node (one per cell occurrence)."""
    return f"val:{qualified_relation}.{attribute}#{row_id}={value}"


def keyword_node_id(keyword: str) -> str:
    """Canonical node id for a keyword node."""
    return f"kw:{keyword.lower()}"


def make_relation_node(qualified_relation: str) -> Node:
    """Construct a relation node for ``qualified_relation``."""
    local_name = qualified_relation.split(".")[-1]
    return Node(
        node_id=relation_node_id(qualified_relation),
        kind=NodeKind.RELATION,
        label=local_name,
        relation=qualified_relation,
    )


def make_attribute_node(qualified_relation: str, attribute: str) -> Node:
    """Construct an attribute node for ``qualified_relation.attribute``."""
    return Node(
        node_id=attribute_node_id(qualified_relation, attribute),
        kind=NodeKind.ATTRIBUTE,
        label=attribute,
        relation=qualified_relation,
        attribute=attribute,
    )


def make_value_node(qualified_relation: str, attribute: str, row_id: int, value: str) -> Node:
    """Construct a value node for one cell occurrence."""
    return Node(
        node_id=value_node_id(qualified_relation, attribute, row_id, value),
        kind=NodeKind.VALUE,
        label=value,
        relation=qualified_relation,
        attribute=attribute,
    )


def make_keyword_node(keyword: str) -> Node:
    """Construct a keyword node for ``keyword``."""
    return Node(node_id=keyword_node_id(keyword), kind=NodeKind.KEYWORD, label=keyword)
