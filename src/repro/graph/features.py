"""Feature-based edge costs (paper Section 3.4, Equation 1).

Every edge of the search graph carries a *feature vector* ``f(i, j)``; the
system maintains a single global *weight vector* ``w``; and the edge cost is
the dot product ``C((i, j), w) = w · f(i, j)``.

The standard features attached to an association edge are:

* ``DEFAULT_FEATURE`` — value 1 on every edge; its weight is the uniform
  cost offset that keeps all edge costs positive.
* ``matcher_feature(name)`` — the (possibly binned) confidence score of each
  schema matcher that proposed the edge; its weight encodes how much that
  matcher is trusted.
* ``relation_feature(relation)`` — value 1 for each relation an edge
  touches; its weight is the negated log-authoritativeness of the relation.
* ``edge_feature(edge_id)`` — value 1 only on that edge; its weight is a
  per-edge cost correction, which is what lets feedback suppress one
  specific bad alignment.

Real-valued matcher confidences can optionally be *binned* into indicator
features (see :mod:`repro.learning.binning`), as the paper does to avoid
mixing real-valued and Boolean features in MIRA.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, MutableMapping, Optional, Tuple

DEFAULT_FEATURE = "default"
_MATCHER_PREFIX = "matcher::"
_RELATION_PREFIX = "relation::"
_EDGE_PREFIX = "edge::"
_BIN_PREFIX = "bin::"


def matcher_feature(matcher_name: str) -> str:
    """Feature name carrying the confidence of matcher ``matcher_name``."""
    return f"{_MATCHER_PREFIX}{matcher_name}"


def relation_feature(relation: str) -> str:
    """Feature name for the authoritativeness of ``relation``."""
    return f"{_RELATION_PREFIX}{relation}"


def edge_feature(edge_id: str) -> str:
    """Feature name identifying a single edge."""
    return f"{_EDGE_PREFIX}{edge_id}"


def bin_feature(base_feature: str, bin_index: int) -> str:
    """Indicator feature for ``base_feature`` falling in bin ``bin_index``."""
    return f"{_BIN_PREFIX}{base_feature}::{bin_index}"


def is_matcher_feature(name: str) -> bool:
    """Whether ``name`` is a matcher-confidence feature (possibly binned)."""
    return name.startswith(_MATCHER_PREFIX) or (
        name.startswith(_BIN_PREFIX) and _MATCHER_PREFIX in name
    )


def is_edge_feature(name: str) -> bool:
    """Whether ``name`` is a per-edge identity feature."""
    return name.startswith(_EDGE_PREFIX)


def is_relation_feature(name: str) -> bool:
    """Whether ``name`` is a per-relation authoritativeness feature."""
    return name.startswith(_RELATION_PREFIX)


class FeatureVector:
    """A sparse mapping from feature name to real value.

    Feature vectors are immutable once attached to an edge (the learner
    changes *weights*, never feature values).
    """

    __slots__ = ("_values",)

    def __init__(self, values: Optional[Mapping[str, float]] = None) -> None:
        self._values: Dict[str, float] = dict(values or {})

    def get(self, feature: str, default: float = 0.0) -> float:
        """The value of ``feature`` (0.0 if absent)."""
        return self._values.get(feature, default)

    def items(self) -> Iterable[Tuple[str, float]]:
        """Iterate over (feature, value) pairs."""
        return self._values.items()

    def features(self) -> Tuple[str, ...]:
        """The feature names present in this vector."""
        return tuple(self._values.keys())

    def with_feature(self, feature: str, value: float) -> "FeatureVector":
        """Return a copy of this vector with one feature added/overridden."""
        values = dict(self._values)
        values[feature] = value
        return FeatureVector(values)

    def without_feature(self, feature: str) -> "FeatureVector":
        """Return a copy of this vector with one feature removed."""
        values = dict(self._values)
        values.pop(feature, None)
        return FeatureVector(values)

    def merged(self, other: "FeatureVector") -> "FeatureVector":
        """Union of two vectors; on conflicts the other vector wins."""
        values = dict(self._values)
        values.update(other._values)
        return FeatureVector(values)

    def as_dict(self) -> Dict[str, float]:
        """A copy of the underlying mapping."""
        return dict(self._values)

    def __contains__(self, feature: object) -> bool:
        return feature in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FeatureVector):
            return self._values == other._values
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FeatureVector({self._values!r})"


class WeightVector:
    """The global weight vector ``w`` learned by MIRA.

    Unknown features have weight 0 by default; a *default weight* per
    feature prefix can be installed so that, e.g., every matcher-confidence
    feature starts with a sensible prior weight before any learning.
    """

    def __init__(self, weights: Optional[Mapping[str, float]] = None) -> None:
        self._weights: Dict[str, float] = dict(weights or {})
        #: Monotonically increasing mutation counter.  All edge costs are
        #: functions of this vector, so callers (e.g. the incremental view
        #: refresh) can use the version to detect that *no* cost changed
        #: since their last computation and skip re-solving.
        self.version = 0

    # ------------------------------------------------------------------
    # Access / mutation
    # ------------------------------------------------------------------
    def get(self, feature: str, default: float = 0.0) -> float:
        """Weight of ``feature`` (``default`` if never set)."""
        return self._weights.get(feature, default)

    def set(self, feature: str, weight: float) -> None:
        """Set the weight of one feature."""
        self._weights[feature] = weight
        self.version += 1

    def update(self, deltas: Mapping[str, float]) -> None:
        """Add ``deltas`` to the current weights (creating entries as needed)."""
        for feature, delta in deltas.items():
            self._weights[feature] = self._weights.get(feature, 0.0) + delta
        self.version += 1

    def items(self) -> Iterable[Tuple[str, float]]:
        """Iterate over (feature, weight) pairs that have been set."""
        return self._weights.items()

    def as_dict(self) -> Dict[str, float]:
        """A copy of the underlying mapping."""
        return dict(self._weights)

    def copy(self) -> "WeightVector":
        """An independent copy of this weight vector."""
        return WeightVector(self._weights)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def dot(self, features: FeatureVector) -> float:
        """Dot product ``w · f`` over the features present in ``features``."""
        return sum(self.get(name) * value for name, value in features.items())

    def cost(self, features: FeatureVector) -> float:
        """Alias of :meth:`dot`: the cost of an edge with feature vector ``features``."""
        return self.dot(features)

    def distance_to(self, other: "WeightVector") -> float:
        """Euclidean distance between two weight vectors."""
        names = set(self._weights) | set(other._weights)
        return sum((self.get(n) - other.get(n)) ** 2 for n in names) ** 0.5

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, feature: object) -> bool:
        return feature in self._weights

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightVector({len(self._weights)} features)"
