"""The search graph (paper Section 2.1).

The search graph is the data model queried by Q.  It contains relation and
attribute nodes connected by zero-cost membership edges, foreign-key edges
with a default cost, and association (alignment) edges whose cost is a
weighted sum of features.  Data-value nodes are materialized lazily at query
time (see :mod:`repro.graph.query_graph`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..datastore.database import Catalog, DataSource
from ..datastore.schema import ForeignKey
from ..exceptions import GraphError, UnknownNodeError
from .edges import Edge, EdgeKind, default_association_features
from .features import (
    DEFAULT_FEATURE,
    FeatureVector,
    WeightVector,
    edge_feature,
    matcher_feature,
    relation_feature,
)
from .nodes import (
    Node,
    NodeKind,
    attribute_node_id,
    make_attribute_node,
    make_keyword_node,
    make_relation_node,
    make_value_node,
    relation_node_id,
)


@dataclass
class GraphConfig:
    """Tunable defaults for search-graph construction.

    Attributes
    ----------
    default_cost:
        Initial weight of the shared default feature — the uniform cost
        offset added to every learnable edge.
    foreign_key_cost:
        The paper's default foreign-key cost ``cd``; foreign-key edges start
        with this cost (expressed through their edge-identity feature).
    initial_matcher_weight:
        Initial weight given to each matcher's confidence feature.  Negative
        so that *higher* confidence yields *lower* cost.
    association_threshold:
        Association edges whose confidence is below this value are not added
        to the graph at all (keeps the graph from being flooded by noise).
    minimum_edge_cost:
        Numerical floor applied to learnable edge costs.
    """

    default_cost: float = 1.0
    foreign_key_cost: float = 0.5
    initial_matcher_weight: float = -0.5
    association_threshold: float = 0.0
    minimum_edge_cost: float = 1e-6


class SearchGraph:
    """Undirected multigraph of relations, attributes, values and keywords."""

    def __init__(self, config: Optional[GraphConfig] = None, weights: Optional[WeightVector] = None) -> None:
        self.config = config or GraphConfig()
        self.weights = weights if weights is not None else WeightVector({DEFAULT_FEATURE: self.config.default_cost})
        if DEFAULT_FEATURE not in self.weights:
            self.weights.set(DEFAULT_FEATURE, self.config.default_cost)
        self._nodes: Dict[str, Node] = {}
        self._edges: Dict[str, Edge] = {}
        self._adjacency: Dict[str, List[str]] = {}
        #: Bumped on every node/edge addition or removal; used together with
        #: ``weights.version`` to detect that Steiner-tree computations over
        #: this graph are still valid.
        self.structure_version = 0

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        """Add ``node`` if not already present; returns the stored node."""
        existing = self._nodes.get(node.node_id)
        if existing is not None:
            return existing
        self._nodes[node.node_id] = node
        self._adjacency[node.node_id] = []
        self.structure_version += 1
        return node

    def node(self, node_id: str) -> Node:
        """Return the node with id ``node_id``."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def remove_node(self, node_id: str) -> Node:
        """Remove a node together with every incident edge."""
        try:
            node = self._nodes.pop(node_id)
        except KeyError:
            raise UnknownNodeError(node_id) from None
        for edge_id in list(self._adjacency.get(node_id, ())):
            if edge_id in self._edges:
                self.remove_edge(edge_id)
        self._adjacency.pop(node_id, None)
        self.structure_version += 1
        return node

    def has_node(self, node_id: str) -> bool:
        """Whether ``node_id`` is present."""
        return node_id in self._nodes

    def nodes(self, kind: Optional[NodeKind] = None) -> Tuple[Node, ...]:
        """All nodes, optionally filtered by kind."""
        if kind is None:
            return tuple(self._nodes.values())
        return tuple(n for n in self._nodes.values() if n.kind is kind)

    def relation_nodes(self) -> Tuple[Node, ...]:
        """All relation nodes."""
        return self.nodes(NodeKind.RELATION)

    def attribute_nodes(self) -> Tuple[Node, ...]:
        """All attribute nodes."""
        return self.nodes(NodeKind.ATTRIBUTE)

    def attribute_nodes_of(self, qualified_relation: str) -> Tuple[Node, ...]:
        """Attribute nodes belonging to ``qualified_relation``."""
        return tuple(
            n
            for n in self._nodes.values()
            if n.kind is NodeKind.ATTRIBUTE and n.relation == qualified_relation
        )

    # ------------------------------------------------------------------
    # Edge management
    # ------------------------------------------------------------------
    def add_edge(self, edge: Edge) -> Edge:
        """Add ``edge``; both endpoints must already be nodes."""
        for endpoint in edge.endpoints():
            if endpoint not in self._nodes:
                raise UnknownNodeError(endpoint)
        if edge.edge_id in self._edges:
            raise GraphError(f"duplicate edge id {edge.edge_id!r}")
        self._edges[edge.edge_id] = edge
        self._adjacency[edge.u].append(edge.edge_id)
        if edge.v != edge.u:
            self._adjacency[edge.v].append(edge.edge_id)
        self.structure_version += 1
        return edge

    def remove_edge(self, edge_id: str) -> Edge:
        """Remove and return the edge with id ``edge_id``."""
        try:
            edge = self._edges.pop(edge_id)
        except KeyError:
            raise GraphError(f"unknown edge id {edge_id!r}") from None
        for endpoint in set(edge.endpoints()):
            self._adjacency[endpoint] = [e for e in self._adjacency[endpoint] if e != edge_id]
        self.structure_version += 1
        return edge

    def edge(self, edge_id: str) -> Edge:
        """Return the edge with id ``edge_id``."""
        try:
            return self._edges[edge_id]
        except KeyError:
            raise GraphError(f"unknown edge id {edge_id!r}") from None

    def has_edge(self, edge_id: str) -> bool:
        """Whether the edge id is present."""
        return edge_id in self._edges

    def edges(self, kind: Optional[EdgeKind] = None) -> Tuple[Edge, ...]:
        """All edges, optionally filtered by kind."""
        if kind is None:
            return tuple(self._edges.values())
        return tuple(e for e in self._edges.values() if e.kind is kind)

    def association_edges(self) -> Tuple[Edge, ...]:
        """All association (alignment) edges."""
        return self.edges(EdgeKind.ASSOCIATION)

    def learnable_edges(self) -> Tuple[Edge, ...]:
        """Edges whose cost the learner may change."""
        return tuple(e for e in self._edges.values() if e.is_learnable())

    def edges_of(self, node_id: str) -> Tuple[Edge, ...]:
        """Edges incident to ``node_id``."""
        if node_id not in self._adjacency:
            raise UnknownNodeError(node_id)
        return tuple(self._edges[eid] for eid in self._adjacency[node_id])

    def neighbors(self, node_id: str) -> Tuple[str, ...]:
        """Node ids adjacent to ``node_id``."""
        return tuple(edge.other(node_id) for edge in self.edges_of(node_id))

    def find_edges(self, a: str, b: str, kind: Optional[EdgeKind] = None) -> Tuple[Edge, ...]:
        """All edges between nodes ``a`` and ``b`` (optionally of one kind)."""
        if a not in self._adjacency:
            return ()
        result = []
        for eid in self._adjacency[a]:
            edge = self._edges[eid]
            if edge.connects(a, b) and (kind is None or edge.kind is kind):
                result.append(edge)
        return tuple(result)

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------
    def edge_cost(self, edge: Edge) -> float:
        """Cost of ``edge`` under the graph's current weights."""
        return edge.cost(self.weights, minimum=self.config.minimum_edge_cost)

    def edge_cost_by_id(self, edge_id: str) -> float:
        """Cost of the edge with id ``edge_id``."""
        return self.edge_cost(self.edge(edge_id))

    # ------------------------------------------------------------------
    # Construction from catalogs / sources
    # ------------------------------------------------------------------
    def add_source(self, source: DataSource) -> List[Node]:
        """Add relation/attribute nodes and membership + FK edges for ``source``.

        Returns the list of newly created relation and attribute nodes.
        """
        created: List[Node] = []
        for table in source:
            relation = table.schema.qualified_name
            rel_node = make_relation_node(relation)
            if not self.has_node(rel_node.node_id):
                created.append(self.add_node(rel_node))
            else:
                self.add_node(rel_node)
            for attr in table.schema:
                attr_node = make_attribute_node(relation, attr.name)
                if not self.has_node(attr_node.node_id):
                    created.append(self.add_node(attr_node))
                    self.add_edge(
                        Edge.create(
                            rel_node.node_id,
                            attr_node.node_id,
                            EdgeKind.MEMBERSHIP,
                        )
                    )
        for fk in source.schema.foreign_keys:
            self.add_foreign_key(source.name, fk)
        return created

    def add_catalog(self, catalog: Catalog) -> None:
        """Add every source of ``catalog`` to the graph."""
        for source in catalog:
            self.add_source(source)

    def remove_source(self, source_name: str) -> List[Node]:
        """Remove every node (and incident edge) belonging to ``source_name``.

        The inverse of :meth:`add_source`, used by the registration
        service's failure-rollback path so an aborted registration leaves
        the graph exactly as it was.  Returns the removed nodes.
        """
        prefix = f"{source_name}."
        doomed = [
            node_id
            for node_id, node in self._nodes.items()
            if node.relation is not None and node.relation.startswith(prefix)
        ]
        removed: List[Node] = []
        for node_id in doomed:
            if node_id in self._nodes:
                removed.append(self.remove_node(node_id))
        return removed

    def add_foreign_key(self, source_name: str, fk: ForeignKey) -> Edge:
        """Add a foreign-key edge between the two relation nodes of ``fk``.

        The edge's initial cost is the configured ``foreign_key_cost``,
        realized through its edge-identity feature so that learning can
        later adjust it per edge.
        """
        src_rel = f"{source_name}.{fk.source_relation}" if "." not in fk.source_relation else fk.source_relation
        dst_rel = f"{source_name}.{fk.target_relation}" if "." not in fk.target_relation else fk.target_relation
        u = relation_node_id(src_rel)
        v = relation_node_id(dst_rel)
        for node_id, relation in ((u, src_rel), (v, dst_rel)):
            if not self.has_node(node_id):
                self.add_node(make_relation_node(relation))
        existing = self.find_edges(u, v, EdgeKind.FOREIGN_KEY)
        if existing:
            return existing[0]
        edge = Edge.create(u, v, EdgeKind.FOREIGN_KEY, metadata={"foreign_key": fk.as_tuple()})
        edge.features = FeatureVector({edge_feature(edge.edge_id): 1.0})
        if edge_feature(edge.edge_id) not in self.weights:
            self.weights.set(edge_feature(edge.edge_id), self.config.foreign_key_cost)
        return self.add_edge(edge)

    # ------------------------------------------------------------------
    # Associations (alignments)
    # ------------------------------------------------------------------
    def add_association(
        self,
        relation_a: str,
        attribute_a: str,
        relation_b: str,
        attribute_b: str,
        matcher_confidences: Optional[Mapping[str, float]] = None,
        metadata: Optional[Mapping[str, object]] = None,
    ) -> Edge:
        """Add (or update) an association edge between two attributes.

        If an association between the same attribute pair already exists,
        the new matcher confidences are merged into the existing edge's
        features instead of creating a parallel edge — this is how the
        outputs of multiple matchers are combined on one edge
        (paper Section 3.2.3).
        """
        u = attribute_node_id(relation_a, attribute_a)
        v = attribute_node_id(relation_b, attribute_b)
        for node_id, relation, attribute in ((u, relation_a, attribute_a), (v, relation_b, attribute_b)):
            if not self.has_node(node_id):
                self.add_node(make_attribute_node(relation, attribute))
        confidences = dict(matcher_confidences or {})

        existing = self.find_edges(u, v, EdgeKind.ASSOCIATION)
        if existing:
            # Copy-on-write merge: build a *new* Edge carrying the merged
            # features/metadata and swap it into this graph's edge container
            # under the same id.  Graph copies made before the merge (e.g.
            # published read-snapshots of the serving layer) keep the old
            # Edge object in their own containers, so concurrent readers
            # never observe a half-merged edge.
            edge = existing[0]
            features = edge.features
            merged_meta = dict(edge.metadata)
            merged_meta["matchers"] = dict(merged_meta.get("matchers", {}))  # type: ignore[arg-type]
            for matcher_name, confidence in confidences.items():
                features = features.with_feature(matcher_feature(matcher_name), float(confidence))
                self._ensure_matcher_weight(matcher_name)
                merged_meta["matchers"][matcher_name] = float(confidence)  # type: ignore[index]
            if metadata:
                merged_meta.update(metadata)
            merged = Edge(
                edge_id=edge.edge_id,
                u=edge.u,
                v=edge.v,
                kind=edge.kind,
                features=features,
                fixed_cost=edge.fixed_cost,
                metadata=merged_meta,
            )
            self._edges[edge.edge_id] = merged
            # Merging confidences changes the edge's cost without touching
            # the weight vector; bump the structure version so version-based
            # staleness checks (incremental refresh, lazy pull-based views)
            # see that graph content moved.
            self.structure_version += 1
            return merged

        edge = Edge.create(u, v, EdgeKind.ASSOCIATION, metadata=dict(metadata or {}))
        edge.metadata["matchers"] = dict(confidences)
        edge.features = default_association_features(
            edge.edge_id,
            relations=(relation_a, relation_b),
            matcher_confidences=confidences,
        )
        for matcher_name in confidences:
            self._ensure_matcher_weight(matcher_name)
        return self.add_edge(edge)

    def _ensure_matcher_weight(self, matcher_name: str) -> None:
        name = matcher_feature(matcher_name)
        if name not in self.weights:
            self.weights.set(name, self.config.initial_matcher_weight)

    def association_between(
        self, relation_a: str, attribute_a: str, relation_b: str, attribute_b: str
    ) -> Optional[Edge]:
        """The association edge between two attributes, if present."""
        u = attribute_node_id(relation_a, attribute_a)
        v = attribute_node_id(relation_b, attribute_b)
        edges = self.find_edges(u, v, EdgeKind.ASSOCIATION)
        return edges[0] if edges else None

    # ------------------------------------------------------------------
    # Shortest paths
    # ------------------------------------------------------------------
    def shortest_path_costs(
        self,
        sources: Iterable[str],
        max_cost: Optional[float] = None,
        allowed_nodes: Optional[Set[str]] = None,
    ) -> Dict[str, float]:
        """Multi-source Dijkstra over edge costs.

        Parameters
        ----------
        sources:
            Node ids to start from (all at distance 0).
        max_cost:
            If given, nodes farther than this cost are not expanded or
            reported (used for the α-cost neighborhood).
        allowed_nodes:
            If given, the search is restricted to this node set.
        """
        distances: Dict[str, float] = {}
        heap: List[Tuple[float, str]] = []
        for source in sources:
            if source not in self._nodes:
                raise UnknownNodeError(source)
            distances[source] = 0.0
            heapq.heappush(heap, (0.0, source))
        while heap:
            dist, node_id = heapq.heappop(heap)
            if dist > distances.get(node_id, float("inf")):
                continue
            for edge in self.edges_of(node_id):
                neighbor = edge.other(node_id)
                if allowed_nodes is not None and neighbor not in allowed_nodes:
                    continue
                candidate = dist + self.edge_cost(edge)
                if max_cost is not None and candidate > max_cost:
                    continue
                if candidate < distances.get(neighbor, float("inf")):
                    distances[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
        if max_cost is not None:
            distances = {n: d for n, d in distances.items() if d <= max_cost}
        return distances

    # ------------------------------------------------------------------
    # Copying / stats
    # ------------------------------------------------------------------
    def copy(self, share_weights: bool = True) -> "SearchGraph":
        """A structural copy of the graph.

        Node and edge objects are shared (they are treated as immutable once
        added); the node/edge/adjacency containers are new.  If
        ``share_weights`` is ``True``, the copy uses the *same*
        :class:`WeightVector` object so that learning updates affect both
        graphs — this is what the query-graph expansion wants.
        """
        clone = SearchGraph(
            config=self.config,
            weights=self.weights if share_weights else self.weights.copy(),
        )
        clone._nodes = dict(self._nodes)
        clone._edges = dict(self._edges)
        clone._adjacency = {node: list(edges) for node, edges in self._adjacency.items()}
        clone.structure_version = self.structure_version
        return clone

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def relation_of_node(self, node_id: str) -> Optional[str]:
        """The qualified relation a node belongs to (or is), if any."""
        node = self.node(node_id)
        return node.relation

    def relation_node_of(self, node_id: str) -> Optional[Node]:
        """The relation node that owns ``node_id`` (itself, if already a relation)."""
        node = self.node(node_id)
        if node.kind is NodeKind.RELATION:
            return node
        if node.relation is None:
            return None
        rel_id = relation_node_id(node.relation)
        return self._nodes.get(rel_id)

    def __contains__(self, node_id: object) -> bool:
        return isinstance(node_id, str) and node_id in self._nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SearchGraph(nodes={self.node_count}, edges={self.edge_count})"
