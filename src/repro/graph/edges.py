"""Search-graph and query-graph edges.

Edge kinds mirror the paper's Figure 2 and Figure 3:

* ``MEMBERSHIP`` — attribute ↔ its relation (zero cost, never learned).
* ``FOREIGN_KEY`` — relation ↔ relation along a key/foreign-key link
  (default cost ``cd``, learnable).
* ``ASSOCIATION`` — attribute ↔ attribute alignment produced by hand coding
  or by a schema matcher (cost from weighted features, learnable).
* ``VALUE_MEMBERSHIP`` — value node ↔ its attribute node (zero cost).
* ``KEYWORD_MATCH`` — keyword node ↔ schema/value node with a mismatch cost
  (query-graph only).

Edges are *undirected*: an edge between ``u`` and ``v`` can be traversed in
either direction and is stored once.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .features import DEFAULT_FEATURE, FeatureVector, WeightVector, edge_feature


class EdgeKind(enum.Enum):
    """The kind of a graph edge."""

    MEMBERSHIP = "membership"
    FOREIGN_KEY = "foreign_key"
    ASSOCIATION = "association"
    VALUE_MEMBERSHIP = "value_membership"
    KEYWORD_MATCH = "keyword_match"

    def is_zero_cost(self) -> bool:
        """Whether edges of this kind are constrained to zero cost."""
        return self in (EdgeKind.MEMBERSHIP, EdgeKind.VALUE_MEMBERSHIP)


_edge_counter = itertools.count()
_edge_counter_lock = threading.Lock()


def _next_edge_id(kind: EdgeKind, u: str, v: str) -> str:
    with _edge_counter_lock:
        sequence = next(_edge_counter)
    return f"{kind.value}:{u}|{v}#{sequence}"


def edge_id_counter() -> int:
    """The next sequence number the process-global edge-id counter will emit.

    Edge ids embed this counter, so equal-cost tie-breaks (which sort on
    edge ids) depend on it.  The session snapshot records it and
    :func:`set_edge_id_counter` restores it on reopen, which is what makes a
    restored session allocate the *same* ids a continuing live session
    would.  Peeking is implemented as consume-and-rebind so it also works
    when a test has installed a plain ``itertools.count`` by hand (the
    historical replay-parity hook, which keeps working unchanged).

    The counter is process-global mutable state, so every touch point —
    allocation, peek, restore — serializes on one lock; the concurrent
    serving layer funnels all graph mutation through a single writer, but
    independent :class:`~repro.api.service.QService` instances in one
    process may still allocate ids from different threads.
    """
    with _edge_counter_lock:
        value = next(_edge_counter)
        _rebind_edge_counter(value)
    return value


def set_edge_id_counter(value: int) -> None:
    """Restart the process-global edge-id counter at ``value``."""
    with _edge_counter_lock:
        _rebind_edge_counter(value)


def _rebind_edge_counter(value: int) -> None:
    global _edge_counter
    _edge_counter = itertools.count(value)


@dataclass
class Edge:
    """An undirected, weighted-feature edge of the graph.

    Attributes
    ----------
    edge_id:
        Unique identifier of the edge (also used as a per-edge feature name).
    u, v:
        Node ids of the two endpoints (order is not semantically relevant).
    kind:
        The :class:`EdgeKind`.
    features:
        The feature vector whose weighted sum is the edge cost.
    fixed_cost:
        If not ``None``, the edge cost is this constant and the edge is
        excluded from learning (the set ``A`` of zero-cost constraints in
        Algorithm 4 — used for membership edges).
    metadata:
        Free-form extra information: matcher name(s), raw confidences,
        mismatch scores, provenance of the alignment.
    """

    edge_id: str
    u: str
    v: str
    kind: EdgeKind
    features: FeatureVector = field(default_factory=FeatureVector)
    fixed_cost: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        u: str,
        v: str,
        kind: EdgeKind,
        features: Optional[FeatureVector] = None,
        fixed_cost: Optional[float] = None,
        metadata: Optional[Dict[str, object]] = None,
        edge_id: Optional[str] = None,
    ) -> "Edge":
        """Create an edge with a fresh id (or the id supplied by the caller)."""
        if edge_id is None:
            edge_id = _next_edge_id(kind, u, v)
        if kind.is_zero_cost() and fixed_cost is None:
            fixed_cost = 0.0
        return cls(
            edge_id=edge_id,
            u=u,
            v=v,
            kind=kind,
            features=features or FeatureVector(),
            fixed_cost=fixed_cost,
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------
    def cost(self, weights: WeightVector, minimum: float = 1e-6) -> float:
        """The edge's cost under ``weights``.

        Fixed-cost edges return their constant.  Learnable edges return the
        dot product ``w · f`` clamped below by ``minimum`` so that Steiner
        tree computations stay meaningful even if the learner briefly drives
        a cost negative (Algorithm 4 constrains costs to be positive; the
        clamp is a numerical guard).
        """
        if self.fixed_cost is not None:
            return self.fixed_cost
        return max(weights.dot(self.features), minimum)

    def is_learnable(self) -> bool:
        """Whether the learner may change this edge's cost."""
        return self.fixed_cost is None

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def other(self, node_id: str) -> str:
        """The endpoint opposite to ``node_id``."""
        if node_id == self.u:
            return self.v
        if node_id == self.v:
            return self.u
        raise ValueError(f"node {node_id!r} is not an endpoint of edge {self.edge_id!r}")

    def endpoints(self) -> Tuple[str, str]:
        """The two endpoint node ids."""
        return (self.u, self.v)

    def connects(self, a: str, b: str) -> bool:
        """Whether this edge connects nodes ``a`` and ``b`` (in either order)."""
        return {self.u, self.v} == {a, b}

    def identity_feature(self) -> str:
        """The per-edge feature name for this edge."""
        return edge_feature(self.edge_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Edge({self.kind.value}, {self.u!r} -- {self.v!r})"


def default_association_features(
    edge_id: str,
    relations: Tuple[str, ...],
    matcher_confidences: Optional[Dict[str, float]] = None,
) -> FeatureVector:
    """Build the standard feature vector of an association edge (Section 3.4).

    Parameters
    ----------
    edge_id:
        The id of the edge being created (for the per-edge feature).
    relations:
        The qualified names of the relations the association connects.
    matcher_confidences:
        Mapping from matcher name to its confidence in ``[0, 1]``.
    """
    from .features import matcher_feature, relation_feature

    values: Dict[str, float] = {DEFAULT_FEATURE: 1.0}
    for matcher_name, confidence in (matcher_confidences or {}).items():
        values[matcher_feature(matcher_name)] = float(confidence)
    for relation in relations:
        values[relation_feature(relation)] = 1.0
    values[edge_feature(edge_id)] = 1.0
    return FeatureVector(values)
