"""Loss functions between query trees (paper Section 4, Equation 2).

The MIRA update requires every alternative tree ``T`` to be separated from
the user-preferred target tree ``Tr`` by a margin equal to the loss
``L(Tr, T)``.  The paper uses the symmetric edge-set difference.
"""

from __future__ import annotations

from ..steiner.tree import SteinerTree


def symmetric_edge_loss(target: SteinerTree, other: SteinerTree) -> float:
    """``|E(T) \\ E(T')| + |E(T') \\ E(T)|`` — Equation 2 of the paper."""
    return float(len(target.edge_ids ^ other.edge_ids))


def normalized_edge_loss(target: SteinerTree, other: SteinerTree) -> float:
    """Symmetric edge loss scaled to ``[0, 1]`` by the total number of edges.

    Useful as an ablation: margins no longer grow with tree size, which
    makes the learner less aggressive on large trees.
    """
    union = len(target.edge_ids | other.edge_ids)
    if union == 0:
        return 0.0
    return len(target.edge_ids ^ other.edge_ids) / union


def zero_one_loss(target: SteinerTree, other: SteinerTree) -> float:
    """1.0 if the trees differ at all, else 0.0 (perceptron-style margin)."""
    return 0.0 if target.edge_ids == other.edge_ids else 1.0
