"""MIRA-based online learning of edge costs (paper Section 4, Algorithm 4).

Each feedback event supplies the keyword terminals ``S_r`` and the target
tree ``T_r`` the user favoured.  The learner retrieves the ``k`` lowest-cost
Steiner trees ``B`` under the current weights and solves the margin problem

    minimize   ||w - w_prev||^2
    subject to C(T, w) - C(T_r, w) >= L(T_r, T)    for every T in B
               C(e, w) >= epsilon                  for every learnable edge e
               C(e, w) = fixed                     for every fixed-cost edge e

The equality constraints of the original algorithm (the set ``A`` of
zero-cost edges) are handled *structurally* in this implementation: fixed
cost edges carry no learnable features, so no weight assignment can change
their cost.  The inequality-constrained quadratic program is solved with
Hildreth's cyclic projection method, which needs no external QP solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import LearningError
from ..graph.features import FeatureVector, WeightVector
from ..graph.search_graph import SearchGraph
from ..steiner.topk import KBestSteiner
from ..steiner.tree import SteinerTree
from .feedback import FeedbackEvent
from .loss import symmetric_edge_loss

LossFn = Callable[[SteinerTree, SteinerTree], float]


@dataclass(frozen=True)
class LinearConstraint:
    """A linear inequality ``sum_m coefficients[m] * w[m] >= bound``."""

    coefficients: Mapping[str, float]
    bound: float

    def violation(self, weights: WeightVector) -> float:
        """``bound - a·w``; positive when the constraint is violated."""
        value = sum(weights.get(name) * coeff for name, coeff in self.coefficients.items())
        return self.bound - value

    def squared_norm(self) -> float:
        """``||a||^2`` of the coefficient vector."""
        return sum(coeff * coeff for coeff in self.coefficients.values())


def hildreth_solve(
    weights: WeightVector,
    constraints: Sequence[LinearConstraint],
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> WeightVector:
    """Solve ``min ||w - w0||^2  s.t.  a_i · w >= b_i`` with Hildreth's method.

    The starting point ``weights`` is ``w0``; the returned vector is the
    (approximate) projection of ``w0`` onto the feasible polyhedron.  The
    method maintains one non-negative multiplier per constraint and cycles
    through the constraints applying coordinate-wise dual ascent.
    """
    if not constraints:
        return weights.copy()
    result = weights.copy()
    multipliers = [0.0] * len(constraints)
    norms = [max(c.squared_norm(), 1e-12) for c in constraints]
    for _ in range(max_iterations):
        max_update = 0.0
        for index, constraint in enumerate(constraints):
            violation = constraint.violation(result)
            step = violation / norms[index]
            # Multipliers must stay non-negative.
            step = max(step, -multipliers[index])
            if step == 0.0:
                continue
            multipliers[index] += step
            result.update({name: step * coeff for name, coeff in constraint.coefficients.items()})
            max_update = max(max_update, abs(step))
        if max_update < tolerance:
            break
    return result


def tree_feature_vector(graph: SearchGraph, tree: SteinerTree) -> Tuple[Dict[str, float], float]:
    """Aggregate feature vector and fixed-cost sum of a tree.

    Returns ``(phi, fixed)`` where ``phi[m]`` is the summed value of feature
    ``m`` over the tree's *learnable* edges and ``fixed`` is the summed cost
    of its fixed-cost edges — so that ``C(T, w) = w · phi + fixed``.
    """
    phi: Dict[str, float] = {}
    fixed = 0.0
    for edge_id in tree.edge_ids:
        edge = graph.edge(edge_id)
        if not edge.is_learnable():
            fixed += edge.fixed_cost or 0.0
            continue
        for name, value in edge.features.items():
            phi[name] = phi.get(name, 0.0) + value
    return phi, fixed


@dataclass
class FeedbackStepResult:
    """Diagnostics for one processed feedback event."""

    candidate_trees: List[SteinerTree]
    target_tree: SteinerTree
    constraints: int
    weight_change: float


class OnlineLearner:
    """The ONLINELEARNER of Algorithm 4, operating on a query graph.

    Parameters
    ----------
    graph:
        The (query) graph whose weights are learned.  The graph's
        :class:`~repro.graph.features.WeightVector` is updated in place so
        that views sharing the weight vector see the new costs immediately.
    k:
        Number of candidate trees retrieved per feedback step.
    loss:
        Loss function between trees; defaults to the symmetric edge loss.
    positive_margin:
        Minimum cost enforced for every learnable edge (the strict
        positivity constraint of Algorithm 4, made numerical).
    solver:
        Top-k Steiner solver; a default :class:`KBestSteiner` is used when
        omitted.
    listeners:
        Optional callbacks invoked with the :class:`FeedbackStepResult` after
        every processed event.  The Q system uses this to notify its ranked
        views that edge costs moved (cache-invalidation hook for the
        incremental refresh).
    """

    def __init__(
        self,
        graph: SearchGraph,
        k: int = 5,
        loss: LossFn = symmetric_edge_loss,
        positive_margin: float = 0.01,
        solver: Optional[KBestSteiner] = None,
        max_qp_iterations: int = 200,
        listeners: Optional[Sequence[Callable[["FeedbackStepResult"], None]]] = None,
    ) -> None:
        self.graph = graph
        self.k = k
        self.loss = loss
        self.positive_margin = positive_margin
        self.solver = solver or KBestSteiner()
        self.max_qp_iterations = max_qp_iterations
        self.steps_processed = 0
        self.listeners: List[Callable[["FeedbackStepResult"], None]] = list(listeners or [])

    # ------------------------------------------------------------------
    # Single feedback step
    # ------------------------------------------------------------------
    def process(
        self,
        event: FeedbackEvent,
        graph: Optional[SearchGraph] = None,
        weights: Optional[WeightVector] = None,
    ) -> FeedbackStepResult:
        """Apply one feedback event, updating the graph's weights in place.

        ``graph`` optionally overrides the learner's default graph for this
        event.  A persistent learner (one per :class:`~repro.api.service.QService`
        session) is constructed once against the search graph and handed the
        *query* graph of whichever view produced each event — the feedback
        terminals are keyword nodes that exist only there, while the weight
        vector is shared so every view observes the update.

        ``weights`` optionally overrides the weight vector the step reads
        *and writes* — the multi-tenant overlay path.  The event is then
        solved and applied against a structural clone of ``graph`` priced
        under ``weights`` (typically an
        :class:`~repro.learning.overlays.OverlayWeightVector`), so a
        tenant's feedback personalizes that vector without ever touching
        the graph's shared base weights.
        """
        graph = graph if graph is not None else self.graph
        if weights is not None and weights is not graph.weights:
            from .overlays import graph_with_weights

            graph = graph_with_weights(graph, weights)
        terminals = [t for t in event.terminals if graph.has_node(t)]
        if not terminals:
            raise LearningError("feedback event references no terminals present in the graph")

        candidates = self.solver.solve(graph, terminals, self.k)
        target = event.target_tree.recost(graph)

        constraints: List[LinearConstraint] = []
        target_phi, target_fixed = tree_feature_vector(graph, target)

        comparison_trees = list(candidates)
        if event.demoted_tree is not None:
            comparison_trees.append(event.demoted_tree.recost(graph))

        for tree in comparison_trees:
            if tree.edge_ids == target.edge_ids:
                continue  # L(Tr, Tr) = 0: trivially satisfied.
            margin = self.loss(target, tree)
            phi, fixed = tree_feature_vector(graph, tree)
            coefficients: Dict[str, float] = {}
            for name in set(phi) | set(target_phi):
                coefficients[name] = phi.get(name, 0.0) - target_phi.get(name, 0.0)
            if not coefficients:
                continue
            bound = margin - (fixed - target_fixed)
            constraints.append(LinearConstraint(coefficients, bound))

        # Positivity constraints for every learnable edge of the graph.
        for edge in graph.learnable_edges():
            coefficients = dict(edge.features.items())
            if not coefficients:
                continue
            constraints.append(LinearConstraint(coefficients, self.positive_margin))

        before = graph.weights.copy()
        updated = hildreth_solve(
            graph.weights, constraints, max_iterations=self.max_qp_iterations
        )
        # Install the new weights in place so all sharers observe them.
        for name, value in updated.as_dict().items():
            graph.weights.set(name, value)
        self.steps_processed += 1
        result = FeedbackStepResult(
            candidate_trees=candidates,
            target_tree=target,
            constraints=len(constraints),
            weight_change=before.distance_to(graph.weights),
        )
        for listener in self.listeners:
            listener(result)
        return result

    # ------------------------------------------------------------------
    # Streams of feedback
    # ------------------------------------------------------------------
    def process_stream(
        self,
        events: Iterable[FeedbackEvent],
        graph: Optional[SearchGraph] = None,
        weights: Optional[WeightVector] = None,
    ) -> List[FeedbackStepResult]:
        """Apply a sequence of feedback events in order."""
        return [self.process(event, graph=graph, weights=weights) for event in events]

    def replay(
        self,
        events: Sequence[FeedbackEvent],
        repetitions: int,
        graph: Optional[SearchGraph] = None,
        weights: Optional[WeightVector] = None,
    ) -> List[FeedbackStepResult]:
        """Apply ``events`` ``repetitions`` times in a row (feedback replay).

        The paper replays the feedback log several times to reinforce the
        constraints ("we input the 10 feedback items to the learner four
        times in succession").
        """
        results: List[FeedbackStepResult] = []
        for _ in range(max(repetitions, 0)):
            results.extend(self.process_stream(events, graph=graph, weights=weights))
        return results
