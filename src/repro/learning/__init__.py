"""Learning from user feedback: MIRA weight updates, feedback generalization, binning.

Public API
----------
* :class:`OnlineLearner`, :func:`hildreth_solve`, :class:`LinearConstraint`,
  :func:`tree_feature_vector` — the MIRA-style online learner (Algorithm 4).
* :class:`FeedbackEvent`, :class:`AnswerAnnotation`, :class:`AnnotationKind`,
  :class:`FeedbackGeneralizer`, :class:`FeedbackLog` — feedback over answers
  and its generalization to query trees (Section 4).
* :func:`symmetric_edge_loss`, :func:`normalized_edge_loss`,
  :func:`zero_one_loss` — tree loss functions (Equation 2).
* :class:`FeatureBinner` — binning of real-valued features into indicators.
"""

from .binning import FeatureBinner
from .feedback import (
    AnnotationKind,
    AnswerAnnotation,
    FeedbackEvent,
    FeedbackGeneralizer,
    FeedbackLog,
)
from .loss import normalized_edge_loss, symmetric_edge_loss, zero_one_loss
from .overlays import (
    OverlayWeightVector,
    TenantProfile,
    TenantRegistry,
    graph_with_weights,
)
from .mira import (
    FeedbackStepResult,
    LinearConstraint,
    OnlineLearner,
    hildreth_solve,
    tree_feature_vector,
)

__all__ = [
    "AnnotationKind",
    "AnswerAnnotation",
    "FeatureBinner",
    "FeedbackEvent",
    "FeedbackGeneralizer",
    "FeedbackLog",
    "FeedbackStepResult",
    "LinearConstraint",
    "OnlineLearner",
    "OverlayWeightVector",
    "TenantProfile",
    "TenantRegistry",
    "graph_with_weights",
    "hildreth_solve",
    "normalized_edge_loss",
    "symmetric_edge_loss",
    "tree_feature_vector",
    "zero_one_loss",
]
