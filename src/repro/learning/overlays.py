"""Per-tenant weight overlays for multi-tenant serving.

The paper's Q system learns one global weight vector from user feedback.
When many users share one catalog, their feedback can disagree — one user's
"invalid" join path is another user's preferred one.  The serving layer
(:mod:`repro.service`) resolves this with *overlays*: every tenant ranks
answers under a :class:`OverlayWeightVector` that reads through to the
shared base :class:`~repro.graph.features.WeightVector` but records its own
MIRA updates as a sparse delta (*shadow*) on top.  The base vector is never
mutated by tenant feedback, so tenants personalize ranking without forking
the graph, and registration-time weight seeding remains visible to every
tenant immediately.

Overlays are deliberately storage-free value objects; durability is handled
by :mod:`repro.persist`, which snapshots each tenant's shadow dict alongside
the session overlay.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..graph.features import WeightVector
from ..graph.search_graph import SearchGraph


class OverlayWeightVector(WeightVector):
    """A weight vector layered over a shared, read-only base.

    Reads fall through to ``base`` for any feature the overlay has not
    changed; writes land in the overlay's *shadow* mapping only, never in
    the base.  A shadow entry that is set back to the base's exact value is
    dropped, so the shadow stays a sparse diff — after a tenant's MIRA step
    re-installs hundreds of unchanged flattened weights, only the features
    the step actually moved remain shadowed.

    The effective ``version`` is ``base.version + local_version``: it moves
    when *either* the shared base learns (registration seeding, base-session
    feedback) or the tenant's own overlay learns, so version-pinned caches
    (ranked views, Steiner network caches, read snapshots) invalidate
    correctly for tenants too.

    Implementation note: ``_weights`` holds the *shadow* mapping.  The base
    class accesses ``other._weights`` directly only in
    :meth:`~repro.graph.features.WeightVector.distance_to`, where a missing
    base-only name on one side is always supplied by the flattened other
    side, and lookups go through :meth:`get`, which falls through — so the
    inherited algebra stays correct.
    """

    def __init__(
        self,
        base: WeightVector,
        shadow: Optional[Mapping[str, float]] = None,
        local_version: int = 0,
    ) -> None:
        # Intentionally not calling WeightVector.__init__: it assigns
        # ``self.version = 0``, which would collide with the property below.
        self.base = base
        self._weights: Dict[str, float] = dict(shadow or {})
        self._local_version = int(local_version)

    # ------------------------------------------------------------------
    # Versioning
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:  # type: ignore[override]
        """Effective mutation counter: shared base plus local overlay."""
        return self.base.version + self._local_version

    @version.setter
    def version(self, value: int) -> None:
        self._local_version = int(value) - self.base.version

    @property
    def local_version(self) -> int:
        """Mutations applied to this overlay alone (persisted per tenant)."""
        return self._local_version

    # ------------------------------------------------------------------
    # Access / mutation
    # ------------------------------------------------------------------
    def get(self, feature: str, default: float = 0.0) -> float:
        """Effective weight: the shadow value if set, else the base's."""
        shadowed = self._weights.get(feature)
        if shadowed is not None:
            return shadowed
        return self.base.get(feature, default)

    def set(self, feature: str, weight: float) -> None:
        """Set one feature in the overlay; the base is never touched."""
        self._store(feature, weight)
        self._local_version += 1

    def update(self, deltas: Mapping[str, float]) -> None:
        """Add ``deltas`` to the effective weights, recording shadow entries."""
        for feature, delta in deltas.items():
            self._store(feature, self.get(feature) + delta)
        self._local_version += 1

    def _store(self, feature: str, weight: float) -> None:
        if feature in self.base and self.base.get(feature) == weight:
            # Identical to the shared value: keep the shadow a sparse diff.
            self._weights.pop(feature, None)
        else:
            self._weights[feature] = weight

    # ------------------------------------------------------------------
    # Flattened views
    # ------------------------------------------------------------------
    def items(self) -> Iterable[Tuple[str, float]]:
        """Iterate over effective (feature, weight) pairs."""
        return self.as_dict().items()

    def as_dict(self) -> Dict[str, float]:
        """The effective (base + shadow) mapping, flattened."""
        merged = self.base.as_dict()
        merged.update(self._weights)
        return merged

    def copy(self) -> WeightVector:
        """An independent *flattened* plain :class:`WeightVector`.

        MIRA's Hildreth solver starts from ``weights.copy()`` and mutates
        the copy freely; handing it a detached flat vector keeps the solve
        from ever writing through to the base or the live shadow.
        """
        return WeightVector(self.as_dict())

    def shadow_dict(self) -> Dict[str, float]:
        """A copy of the sparse shadow alone (what persistence stores)."""
        return dict(self._weights)

    def __len__(self) -> int:
        return len(set(self.base.as_dict()) | set(self._weights))

    def __contains__(self, feature: object) -> bool:
        return feature in self._weights or feature in self.base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OverlayWeightVector({len(self._weights)} shadowed over "
            f"{len(self.base)} base features)"
        )


def graph_with_weights(graph: SearchGraph, weights: WeightVector) -> SearchGraph:
    """A structural clone of ``graph`` priced under ``weights``.

    Shares node/edge/adjacency *objects* with the original (they are
    immutable once published) but swaps in a different weight vector — this
    is how one expanded query graph serves many tenants: same topology,
    per-tenant costs.
    """
    clone = graph.copy(share_weights=True)
    clone.weights = weights
    return clone


class TenantProfile:
    """One tenant's personalization state."""

    __slots__ = ("name", "overlay", "events_applied")

    def __init__(self, name: str, overlay: OverlayWeightVector, events_applied: int = 0) -> None:
        self.name = name
        self.overlay = overlay
        self.events_applied = events_applied

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TenantProfile({self.name!r}, {self.overlay!r})"


class TenantRegistry:
    """All tenant overlays of one session, keyed by tenant name.

    Profiles are created on first use (first query or feedback naming the
    tenant).  Creation is locked because reads naming a brand-new tenant can
    arrive concurrently on the serving layer's read pool; everything else on
    a profile is either read-only from readers or funneled through the
    single writer.
    """

    def __init__(self, base_weights: WeightVector) -> None:
        self.base_weights = base_weights
        self._profiles: Dict[str, TenantProfile] = {}
        self._lock = threading.Lock()

    def profile(self, name: str) -> TenantProfile:
        """Get or create the profile for tenant ``name``."""
        profile = self._profiles.get(name)
        if profile is not None:
            return profile
        with self._lock:
            profile = self._profiles.get(name)
            if profile is None:
                profile = TenantProfile(name, OverlayWeightVector(self.base_weights))
                self._profiles[name] = profile
            return profile

    def overlay(self, name: str) -> OverlayWeightVector:
        """The overlay weight vector for tenant ``name`` (created on demand)."""
        return self.profile(name).overlay

    def names(self) -> Tuple[str, ...]:
        """All tenant names, sorted for deterministic persistence."""
        return tuple(sorted(self._profiles))

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, name: object) -> bool:
        return name in self._profiles

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready mapping persisted inside the session overlay."""
        return {
            name: {
                "shadow": self._profiles[name].overlay.shadow_dict(),
                "local_version": self._profiles[name].overlay.local_version,
                "events_applied": self._profiles[name].events_applied,
            }
            for name in self.names()
        }

    def restore(self, state: Mapping[str, Mapping[str, object]]) -> None:
        """Rebuild profiles from :meth:`export_state` output."""
        with self._lock:
            for name, payload in state.items():
                overlay = OverlayWeightVector(
                    self.base_weights,
                    shadow={
                        str(k): float(v)
                        for k, v in dict(payload.get("shadow", {})).items()  # type: ignore[arg-type]
                    },
                    local_version=int(payload.get("local_version", 0)),  # type: ignore[arg-type]
                )
                self._profiles[str(name)] = TenantProfile(
                    str(name),
                    overlay,
                    events_applied=int(payload.get("events_applied", 0)),  # type: ignore[arg-type]
                )
