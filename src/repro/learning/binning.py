"""Binning of real-valued features into indicator features (paper Section 4).

"Using real-valued features directly in the algorithm can cause poor
learning because of the different ranges of different real-valued and binary
features.  Therefore ... we bin the real-valued features into empirically
determined bins; the real-valued features are then replaced by features
indicating bin membership."

The :class:`FeatureBinner` rewrites edge feature vectors in place: each
configured real-valued feature (typically the matcher-confidence features
and the keyword-mismatch feature) is replaced by a one-hot bin indicator,
and the corresponding bin weights are initialized so that the edge costs are
unchanged by the rewrite (weight of bin ``i`` = old weight × bin center).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..graph.edges import Edge
from ..graph.features import FeatureVector, bin_feature, is_matcher_feature
from ..graph.search_graph import SearchGraph


@dataclass
class FeatureBinner:
    """Rewrites selected real-valued features as bin-membership indicators.

    Parameters
    ----------
    num_bins:
        Number of equal-width bins over ``[lower, upper]``.
    lower, upper:
        The value range to bin (confidences and mismatch costs live in
        ``[0, 1]``).
    """

    num_bins: int = 5
    lower: float = 0.0
    upper: float = 1.0

    def __post_init__(self) -> None:
        if self.num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        if self.upper <= self.lower:
            raise ValueError("upper must be greater than lower")

    # ------------------------------------------------------------------
    # Bin arithmetic
    # ------------------------------------------------------------------
    def bin_index(self, value: float) -> int:
        """The bin index of ``value`` (values outside the range are clamped)."""
        if value <= self.lower:
            return 0
        if value >= self.upper:
            return self.num_bins - 1
        width = (self.upper - self.lower) / self.num_bins
        return min(int((value - self.lower) / width), self.num_bins - 1)

    def bin_center(self, index: int) -> float:
        """The center value of bin ``index``."""
        width = (self.upper - self.lower) / self.num_bins
        return self.lower + (index + 0.5) * width

    # ------------------------------------------------------------------
    # Rewriting
    # ------------------------------------------------------------------
    def bin_vector(
        self, features: FeatureVector, features_to_bin: Iterable[str]
    ) -> FeatureVector:
        """Return ``features`` with the selected features replaced by bin indicators."""
        to_bin = set(features_to_bin)
        values: Dict[str, float] = {}
        for name, value in features.items():
            if name in to_bin:
                values[bin_feature(name, self.bin_index(value))] = 1.0
            else:
                values[name] = value
        return FeatureVector(values)

    def apply_to_graph(
        self,
        graph: SearchGraph,
        feature_names: Optional[Sequence[str]] = None,
    ) -> int:
        """Rewrite every learnable edge of ``graph``; returns the number rewritten.

        Parameters
        ----------
        graph:
            The search graph whose edges (and weights) are rewritten.
        feature_names:
            The real-valued features to bin; defaults to every
            matcher-confidence feature found in the graph.
        """
        rewritten = 0
        for edge in graph.learnable_edges():
            if feature_names is None:
                targets = [n for n in edge.features.features() if is_matcher_feature(n)]
            else:
                targets = [n for n in feature_names if n in edge.features]
            if not targets:
                continue
            # Initialize bin weights so that costs are preserved.
            for name in targets:
                value = edge.features.get(name)
                index = self.bin_index(value)
                binned_name = bin_feature(name, index)
                if binned_name not in graph.weights:
                    base_weight = graph.weights.get(name, 0.0)
                    graph.weights.set(binned_name, base_weight * self.bin_center(index))
            edge.features = self.bin_vector(edge.features, targets)
            rewritten += 1
        return rewritten
