"""User feedback over query answers (paper Section 4).

The user annotates individual answers in the view as *valid*, *invalid*, or
as ranking constraints (``tx`` should rank above ``ty``).  Q generalizes
each annotation from the tuple to the *query tree* that produced it (via the
answer's provenance), producing :class:`FeedbackEvent` objects — the
``(S_r, T_r)`` pairs consumed by the online learner of Algorithm 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..datastore.provenance import AnswerTuple
from ..exceptions import FeedbackError
from ..steiner.tree import SteinerTree


class AnnotationKind(enum.Enum):
    """The kind of feedback the user attached to an answer."""

    VALID = "valid"
    INVALID = "invalid"
    PREFERRED_OVER = "preferred_over"


@dataclass(frozen=True)
class AnswerAnnotation:
    """One user annotation on one answer tuple.

    Attributes
    ----------
    answer:
        The annotated answer.
    kind:
        Whether the answer was marked valid, invalid, or preferred over
        another answer.
    other:
        For ``PREFERRED_OVER`` annotations, the answer that should rank
        lower.
    """

    answer: AnswerTuple
    kind: AnnotationKind
    other: Optional[AnswerTuple] = None


@dataclass(frozen=True)
class FeedbackEvent:
    """A generalized feedback item: keyword terminals plus the target tree.

    ``terminals`` is ``S_r`` (the keyword node ids of the view) and
    ``target_tree`` is ``T_r`` (the tree whose answers the user favoured);
    ``demoted_tree`` optionally carries the tree the target should beat
    (from invalid/ranking annotations).
    """

    terminals: Tuple[str, ...]
    target_tree: SteinerTree
    demoted_tree: Optional[SteinerTree] = None


class FeedbackGeneralizer:
    """Maps answer-level annotations to tree-level feedback events.

    Parameters
    ----------
    terminals:
        The keyword node ids of the view the feedback applies to.
    trees_by_query:
        Mapping from query id (as recorded in answer provenance) to the
        Steiner tree that generated the query.
    """

    def __init__(
        self, terminals: Sequence[str], trees_by_query: Dict[str, SteinerTree]
    ) -> None:
        self.terminals = tuple(terminals)
        self.trees_by_query = dict(trees_by_query)

    def _tree_of(self, answer: AnswerTuple) -> SteinerTree:
        if answer.provenance is None:
            raise FeedbackError("answer has no provenance; cannot generalize feedback")
        tree = self.trees_by_query.get(answer.provenance.query_id)
        if tree is None:
            raise FeedbackError(
                f"unknown query id {answer.provenance.query_id!r} in answer provenance"
            )
        return tree

    def generalize(self, annotation: AnswerAnnotation) -> FeedbackEvent:
        """Convert one annotation into a :class:`FeedbackEvent`.

        * a VALID annotation promotes the producing tree;
        * an INVALID annotation demotes the producing tree — the *best other
          known tree* becomes the target (here: any other tree of the view;
          if none exists, the event still records the demoted tree so the
          learner can push its cost up);
        * a PREFERRED_OVER annotation promotes the producing tree of the
          preferred answer and demotes the other answer's tree.
        """
        tree = self._tree_of(annotation.answer)
        if annotation.kind is AnnotationKind.VALID:
            return FeedbackEvent(terminals=self.terminals, target_tree=tree)
        if annotation.kind is AnnotationKind.PREFERRED_OVER:
            if annotation.other is None:
                raise FeedbackError("PREFERRED_OVER annotation requires the other answer")
            other_tree = self._tree_of(annotation.other)
            return FeedbackEvent(
                terminals=self.terminals, target_tree=tree, demoted_tree=other_tree
            )
        # INVALID: favour any alternative tree over the one that produced
        # the bad answer.
        alternative = None
        for candidate in self.trees_by_query.values():
            if candidate.edge_ids != tree.edge_ids:
                alternative = candidate
                break
        if alternative is None:
            raise FeedbackError(
                "cannot generalize INVALID feedback: no alternative query tree is known"
            )
        return FeedbackEvent(
            terminals=self.terminals, target_tree=alternative, demoted_tree=tree
        )


@dataclass
class FeedbackLog:
    """A sliding window of recent feedback events, replayable for reinforcement.

    The paper replays "a log of the most recent feedback steps, recorded as
    a sliding window with a size bound" to make weight updates consistent
    across queries (Section 5.2.2).
    """

    window_size: int = 50
    events: List[FeedbackEvent] = field(default_factory=list)

    def add(self, event: FeedbackEvent) -> None:
        """Append an event, evicting the oldest if the window is full."""
        self.events.append(event)
        if len(self.events) > self.window_size:
            self.events.pop(0)

    def replay_sequence(self, repetitions: int) -> List[FeedbackEvent]:
        """The stored events repeated ``repetitions`` times, in order."""
        if repetitions < 1:
            return []
        return list(self.events) * repetitions

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
