"""MinHash signatures + LSH banding over attribute token sets.

The approximate tier of the profile index's tiered blocking (see
:meth:`~repro.profiling.index.CatalogProfileIndex.tiered_candidates`).
Each attribute's distinct **value tokens** — already computed once at
profiling time — are summarized into a MinHash signature; signatures are
cut into LSH bands, and two attributes become *sketch candidates* when any
band hashes into the same bucket.  Bucket membership is maintained
incrementally alongside the posting lists, so a candidate probe is a
handful of bucket lookups instead of a scan over the catalog.

Determinism is a hard requirement: signatures must be identical across
processes (parallel registration workers) and across save/restore cycles
(the persistence round-trip re-derives sketches from the profiles).  All
hashing therefore goes through ``zlib.crc32``-seeded 61-bit universal
hash permutations with constants drawn from a fixed-seed PRNG — nothing
touches Python's per-process-salted builtin ``hash``.

With the default config (48 permutations, 24 bands of 2 rows) the
probability that a pair of attributes with token-set Jaccard ``j``
collides in at least one band is ``1 - (1 - j^2)^24`` — above 99.9% for
``j >= 0.5``, about 91% at ``j = 0.3``.  The exact tier re-verifies every
sketch survivor against the true distinct-value sets, so false positives
never surface; false negatives are bounded by pairing the sketch tier
with exact rare-token postings (see ``tiered_candidates``).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

#: Mersenne prime 2^61 - 1: modulus of the universal hash permutations.
_MERSENNE = (1 << 61) - 1

#: Fixed seed for the permutation constants — part of the sketch format.
_PERMUTATION_SEED = 0x51C7E5


@dataclass(frozen=True)
class SketchConfig:
    """Shape of the MinHash/LSH sketches.

    Attributes
    ----------
    num_perm:
        Signature length (number of hash permutations).
    bands:
        Number of LSH bands; ``num_perm`` must be divisible by ``bands``.
        Rows per band is ``num_perm // bands`` — fewer rows per band makes
        the tier more permissive (higher recall, more exact-tier work).
    """

    num_perm: int = 48
    bands: int = 24

    def __post_init__(self) -> None:
        if self.num_perm < 1 or self.bands < 1:
            raise ValueError("num_perm and bands must be >= 1")
        if self.num_perm % self.bands != 0:
            raise ValueError(
                f"bands ({self.bands}) must divide num_perm ({self.num_perm})"
            )

    @property
    def rows_per_band(self) -> int:
        return self.num_perm // self.bands

    def payload(self) -> Dict[str, int]:
        """JSON-compatible form (persisted with the profile-index state)."""
        return {"num_perm": self.num_perm, "bands": self.bands}

    @classmethod
    def from_payload(cls, payload: Dict[str, int]) -> "SketchConfig":
        return cls(num_perm=payload["num_perm"], bands=payload["bands"])


#: ``num_perm -> [(a, b), ...]`` permutation constants, derived once per
#: signature length from the fixed seed (identical in every process).
_PERMUTATIONS: Dict[int, List[Tuple[int, int]]] = {}


def _permutations(num_perm: int) -> List[Tuple[int, int]]:
    cached = _PERMUTATIONS.get(num_perm)
    if cached is None:
        rng = random.Random(_PERMUTATION_SEED)
        cached = [
            (rng.randrange(1, _MERSENNE), rng.randrange(0, _MERSENNE))
            for _ in range(num_perm)
        ]
        _PERMUTATIONS[num_perm] = cached
    return cached


def token_hash(token: str) -> int:
    """Stable 61-bit base hash of one token.

    Two independent crc32 passes (plain and salted) are combined into one
    wide value so the universal-hash family sees more than 32 bits of
    entropy per token.
    """
    data = token.encode("utf-8")
    low = zlib.crc32(data)
    high = zlib.crc32(data, 0x9E3779B9)
    return ((high << 32) | low) % _MERSENNE


def minhash_signature(
    tokens: Iterable[str], config: SketchConfig
) -> Tuple[int, ...]:
    """MinHash signature of a token set (empty set → all-max sentinel rows).

    The sentinel keeps empty attributes out of every bucket that a
    non-empty attribute could occupy only by genuinely hashing there.
    """
    perms = _permutations(config.num_perm)
    base_hashes = [token_hash(token) for token in set(tokens)]
    if not base_hashes:
        return tuple([_MERSENNE] * config.num_perm)
    signature: List[int] = []
    for a, b in perms:
        signature.append(min((a * h + b) % _MERSENNE for h in base_hashes))
    return tuple(signature)


def band_keys(
    signature: Tuple[int, ...], config: SketchConfig
) -> Tuple[Tuple[int, int], ...]:
    """LSH bucket keys of a signature: one ``(band, digest)`` pair per band.

    Empty-set sentinel signatures produce no keys at all — an attribute
    with no tokens can never be a sketch candidate (it has no tokens to
    share), so it does not belong in any bucket.
    """
    if signature and signature[0] == _MERSENNE and len(set(signature)) == 1:
        return ()
    rows = config.rows_per_band
    keys: List[Tuple[int, int]] = []
    for band in range(config.bands):
        chunk = signature[band * rows : (band + 1) * rows]
        digest = zlib.crc32(b"|".join(str(v).encode("ascii") for v in chunk))
        keys.append((band, digest))
    return tuple(keys)


def sketch_jaccard(sig_a: Tuple[int, ...], sig_b: Tuple[int, ...]) -> float:
    """Jaccard estimate from two equal-length signatures (diagnostics only)."""
    if not sig_a or len(sig_a) != len(sig_b):
        return 0.0
    matches = sum(1 for a, b in zip(sig_a, sig_b) if a == b)
    return matches / len(sig_a)


def attribute_sketch(
    value_tokens: FrozenSet[str], config: SketchConfig
) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, int], ...]]:
    """Signature + band keys of one attribute's value-token set."""
    signature = minhash_signature(value_tokens, config)
    return signature, band_keys(signature, config)
