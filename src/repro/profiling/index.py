"""The persistent, incrementally maintained catalog profile index.

:class:`CatalogProfileIndex` is the registration-side counterpart of the
query engine's :class:`~repro.engine.context.ExecutionContext`: a shared,
long-lived structure that every matcher and aligner strategy reads instead
of re-deriving per-table state inside nested loops.  It holds

* one :class:`~repro.profiling.profiles.AttributeProfile` per attribute
  (distinct values, value tokens, normalized names, cardinality stats),
* a **distinct-value posting list** (value → attributes containing it) used
  for posting-list-intersection candidate generation (blocking),
* a **token posting list** with document frequencies (token → attributes
  whose values contain it), backing precomputed tf-idf name/content vectors,
* optional **MinHash/LSH sketch buckets** over the per-attribute value-token
  sets — the approximate tier of :meth:`tiered_candidates`,
* a bounded **pair-correspondence memo** where schema-only matchers park
  their per-relation-pair outputs keyed by schema fingerprint.

All posting-list state lives in hash-partitioned shards behind a
:class:`~repro.profiling.shards.ShardRouter` (``shard_count=1`` by
default); the router preserves the flat-dictionary semantics exactly, so
every existing caller — matchers, persistence, aligner strategies — is
unaffected by the shard count.

The index is updated once per registered (or removed) source; the ``epoch``
counter lets dependent caches (candidate maps, tf-idf vectors) validate
themselves cheaply.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datastore.database import Catalog, DataSource
from ..datastore.table import Table
from .profiles import AttrId, AttributeProfile, RelationProfile, profile_table
from .shards import BandKey, ShardRouter
from .sketches import SketchConfig, attribute_sketch

#: Default cap on memoized per-relation-pair matcher outputs (LRU-evicted).
#: Override per index via the ``pair_memo_limit`` constructor knob
#: (:class:`~repro.api.types.ServiceConfig.pair_memo_limit` at the service
#: level) — long-lived sessions with a churning catalog trade hit rate
#: against resident memory here.
_PAIR_CACHE_LIMIT = 4096

#: Default document-frequency ceiling under which a value token counts as
#: *rare* for the exact rare-token tier of :meth:`tiered_candidates`.
_RARE_TOKEN_DF = 16


class CatalogProfileIndex:
    """Shared per-attribute profiles + posting lists over a catalog.

    The index is *incrementally* maintained: :meth:`index_source` profiles a
    new source in one pass over its rows, :meth:`remove_source` retracts a
    source's contribution exactly (used by the registration failure-rollback
    path), and neither ever rebuilds the rest of the catalog's state.

    Parameters
    ----------
    shard_count:
        Number of hash shards the posting lists are split across (see
        :mod:`repro.profiling.shards`).  Identical results for any value;
        ``1`` keeps the seed layout.
    sketch:
        Optional :class:`~repro.profiling.sketches.SketchConfig`.  When
        given, every attribute additionally maintains a MinHash signature
        over its value tokens plus LSH band-bucket membership, enabling the
        sub-linear :meth:`sketch_candidates` / :meth:`tiered_candidates`
        tier.  ``None`` (the default) keeps candidate generation purely
        exact.
    pair_memo_limit:
        LRU cap on the shared pair-correspondence memo.
    rare_token_df:
        Document-frequency ceiling for the rare-token tier of
        :meth:`tiered_candidates`.
    """

    def __init__(
        self,
        shard_count: int = 1,
        sketch: Optional[SketchConfig] = None,
        pair_memo_limit: int = _PAIR_CACHE_LIMIT,
        rare_token_df: int = _RARE_TOKEN_DF,
    ) -> None:
        #: Bumped on every structural change (source/table added or removed);
        #: dependent caches key on it.
        self.epoch = 0
        self.sketch_config = sketch
        self.rare_token_df = rare_token_df
        self.pair_memo_limit = max(int(pair_memo_limit), 1)
        self._attribute_profiles: Dict[AttrId, AttributeProfile] = {}
        self._relation_profiles: Dict[str, RelationProfile] = {}
        #: Table identity + data version at profiling time, so consumers can
        #: detect that a profile is stale relative to a mutated table.
        self._table_versions: Dict[str, Tuple[object, int]] = {}
        #: source name -> qualified relation names it contributed.
        self._source_relations: Dict[str, List[str]] = {}
        #: All posting lists (values, tokens, sketch buckets), hash-sharded.
        self._shards = ShardRouter(shard_count)
        #: per-attribute MinHash signatures and their LSH band keys
        #: (present only when ``sketch`` is configured).
        self._signatures: Dict[AttrId, Tuple[int, ...]] = {}
        self._band_keys: Dict[AttrId, Tuple[BandKey, ...]] = {}
        #: per-attribute candidate maps memo: attr -> (epoch, candidates).
        self._candidate_cache: Dict[AttrId, Tuple[int, Dict[AttrId, int]]] = {}
        #: per-attribute tiered candidate memo (sketch + exact verify).
        self._tiered_cache: Dict[AttrId, Tuple[int, Dict[AttrId, int]]] = {}
        #: per-attribute tf-idf content vectors memo, keyed on epoch.
        self._tfidf_cache: Dict[AttrId, Tuple[int, Dict[str, float]]] = {}
        #: schema-fingerprint-keyed matcher output memo (see pair_memo_*).
        self._pair_cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        self.pair_cache_hits = 0
        self.pair_cache_misses = 0
        #: Tier observability: attribute pairs proposed by the sketch tier
        #: and pairs surviving exact re-verification, cumulative.
        self.sketch_candidates_generated = 0
        self.exact_candidates_kept = 0
        #: Posting laziness.  A freshly built index installs postings
        #: eagerly (``_postings_ready`` stays ``True``); a state restore
        #: (:meth:`absorb_state`) installs profiles only and defers the
        #: posting materialization, so a warm open pays for it only when —
        #: and if — an in-memory posting read actually happens.  While
        #: deferred, posting reads are served by an attached
        #: :class:`~repro.storage.postings.PostingStore` whenever its saved
        #: ``(epoch, attribute_count)`` is current.  ``posting_builds``
        #: counts full from-profile rebuilds (0 across a warm open whose
        #: store stayed current — the bench asserts exactly this).
        self.posting_builds = 0
        self._postings_ready = True
        self._postings_lock = threading.Lock()
        self._posting_store = None

    # ------------------------------------------------------------------
    # Construction / maintenance
    # ------------------------------------------------------------------
    @classmethod
    def from_catalog(cls, catalog: Catalog, **kwargs) -> "CatalogProfileIndex":
        """Profile every source of ``catalog`` (kwargs as for the constructor)."""
        index = cls(**kwargs)
        for source in catalog:
            index.index_source(source)
        return index

    @classmethod
    def from_tables(cls, tables: Iterable[Table], **kwargs) -> "CatalogProfileIndex":
        """Profile a bare iterable of tables (no source bookkeeping)."""
        index = cls(**kwargs)
        for table in tables:
            index.index_table(table)
        return index

    def index_source(self, source: DataSource) -> None:
        """Profile every table of ``source`` (one pass per table)."""
        relations = self._source_relations.setdefault(source.name, [])
        for table in source:
            self.index_table(table)
            qualified = table.schema.qualified_name
            if qualified not in relations:
                relations.append(qualified)

    def index_table(self, table: Table) -> None:
        """Profile ``table``, replacing any existing profile of the relation."""
        relation = table.schema.qualified_name
        if relation in self._relation_profiles:
            self.remove_table(relation)
        relation_profile, attribute_profiles = profile_table(table)
        self._relation_profiles[relation] = relation_profile
        self._table_versions[relation] = (table, table.version)
        for profile in attribute_profiles.values():
            self._install_attribute(profile)
        self.epoch += 1

    def _install_attribute(self, profile: AttributeProfile) -> None:
        """Install one attribute profile (postings too, unless deferred)."""
        self._attribute_profiles[profile.attr_id] = profile
        if self._postings_ready:
            self._install_postings(profile)

    def _install_postings(self, profile: AttributeProfile) -> None:
        """Install one profile's posting entries, and sketches if enabled."""
        attr_id = profile.attr_id
        shards = self._shards
        for value in profile.distinct_values:
            shards.add_value(value, attr_id)
        for token in profile.value_tokens:
            shards.add_token(token, attr_id)
        if self.sketch_config is not None:
            signature, keys = attribute_sketch(profile.value_tokens, self.sketch_config)
            self._signatures[attr_id] = signature
            self._band_keys[attr_id] = keys
            for key in keys:
                shards.add_bucket(key, attr_id)

    # ------------------------------------------------------------------
    # Posting laziness + backend posting store
    # ------------------------------------------------------------------
    def attach_posting_store(self, store) -> None:
        """Attach a backend :class:`~repro.storage.postings.PostingStore`.

        While the in-memory postings are deferred (after a state restore)
        and the store's saved meta matches this index's current
        ``(epoch, attribute_count)``, posting reads are answered by
        indexed SQL against the store's tables instead of rebuilding the
        shard router.  The store never *replaces* the in-memory path — any
        read it cannot serve (sketch tiers, shard diagnostics, a stale
        store) falls back to :meth:`_ensure_postings`.
        """
        self._posting_store = store

    def _current_store(self):
        """The attached posting store iff it reflects this exact index state."""
        store = self._posting_store
        if store is not None and store.is_current(self.epoch, self.attribute_count):
            return store
        return None

    def _ensure_postings(self) -> None:
        """Materialize the in-memory posting lists from the profiles.

        No-op while postings are current.  After a deferring restore this
        is the one place the full rebuild happens — double-checked under a
        lock so concurrent readers build at most once — and
        ``posting_builds`` counts it.
        """
        if self._postings_ready:
            return
        with self._postings_lock:
            if self._postings_ready:
                return
            self._shards = ShardRouter(self._shards.shard_count)
            self._signatures = {}
            self._band_keys = {}
            for profile in self._attribute_profiles.values():
                self._install_postings(profile)
            self.posting_builds += 1
            self._postings_ready = True

    def iter_attribute_profiles(self) -> Iterable[AttributeProfile]:
        """All attribute profiles in installation order (posting-store sync)."""
        return iter(self._attribute_profiles.values())

    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        # Neither the lock nor the backend-bound store survives pickling.
        state["_postings_lock"] = None
        state["_posting_store"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._postings_lock = threading.Lock()
        self._posting_store = None

    def remove_source(self, name: str) -> None:
        """Retract every relation ``name`` contributed (no full rebuild)."""
        for relation in self._source_relations.pop(name, []):
            self.remove_table(relation)

    def remove_table(self, relation: str) -> None:
        """Retract one relation's profiles and posting-list entries."""
        profile = self._relation_profiles.pop(relation, None)
        if profile is None:
            return
        self._table_versions.pop(relation, None)
        shards = self._shards
        for attribute in profile.attribute_names:
            attr_id = (relation, attribute)
            attr_profile = self._attribute_profiles.pop(attr_id, None)
            if attr_profile is None:
                continue
            if self._postings_ready:
                # Deferred postings hold nothing to retract; the eventual
                # rebuild works off the (now reduced) profile set.
                for value in attr_profile.distinct_values:
                    shards.discard_value(value, attr_id)
                for token in attr_profile.value_tokens:
                    shards.discard_token(token, attr_id)
            for key in self._band_keys.pop(attr_id, ()):
                shards.discard_bucket(key, attr_id)
            self._signatures.pop(attr_id, None)
            self._candidate_cache.pop(attr_id, None)
            self._tiered_cache.pop(attr_id, None)
            self._tfidf_cache.pop(attr_id, None)
        self.epoch += 1

    # ------------------------------------------------------------------
    # Profile lookup
    # ------------------------------------------------------------------
    def has_relation(self, relation: str) -> bool:
        """Whether the relation has been profiled."""
        return relation in self._relation_profiles

    def relation_profile(self, relation: str) -> Optional[RelationProfile]:
        """The relation's profile, or ``None`` if not indexed."""
        return self._relation_profiles.get(relation)

    def profiled_relations(self) -> Tuple[str, ...]:
        """Qualified names of all profiled relations, in indexing order."""
        return tuple(self._relation_profiles)

    def profile(self, relation: str, attribute: str) -> Optional[AttributeProfile]:
        """The attribute's profile, or ``None`` if not indexed."""
        return self._attribute_profiles.get((relation, attribute))

    def profiles_of(self, relation: str) -> Tuple[AttributeProfile, ...]:
        """All attribute profiles of ``relation`` in schema order."""
        rel = self._relation_profiles.get(relation)
        if rel is None:
            return ()
        return tuple(
            self._attribute_profiles[(relation, name)] for name in rel.attribute_names
        )

    def is_current(self, table: Table) -> bool:
        """Whether ``table``'s profile reflects its current identity + data version."""
        entry = self._table_versions.get(table.schema.qualified_name)
        return entry is not None and entry[0] is table and entry[1] == table.version

    @property
    def relation_count(self) -> int:
        """Number of profiled relations."""
        return len(self._relation_profiles)

    @property
    def attribute_count(self) -> int:
        """Number of profiled attributes."""
        return len(self._attribute_profiles)

    @property
    def distinct_value_count(self) -> int:
        """Number of distinct canonical values across all posting lists."""
        if not self._postings_ready:
            store = self._current_store()
            if store is not None:
                return store.distinct_value_count()
            self._ensure_postings()
        return self._shards.distinct_value_count

    @property
    def shard_count(self) -> int:
        """Number of posting-list shards."""
        return self._shards.shard_count

    def shard_sizes(self) -> Tuple[int, ...]:
        """Posting keys per shard (balance diagnostic; materializes postings)."""
        self._ensure_postings()
        return self._shards.shard_sizes()

    @property
    def sketch_enabled(self) -> bool:
        """Whether the MinHash/LSH tier is maintained."""
        return self.sketch_config is not None

    # ------------------------------------------------------------------
    # Value overlap (read off the stored distinct sets)
    # ------------------------------------------------------------------
    def overlap(
        self, relation_a: str, attribute_a: str, relation_b: str, attribute_b: str
    ) -> int:
        """Number of shared distinct values between two indexed attributes."""
        profile_a = self._attribute_profiles.get((relation_a, attribute_a))
        profile_b = self._attribute_profiles.get((relation_b, attribute_b))
        if profile_a is None or profile_b is None:
            return 0
        values_a, values_b = profile_a.distinct_values, profile_b.distinct_values
        if len(values_b) < len(values_a):
            values_a, values_b = values_b, values_a
        return len(values_a & values_b)

    # ------------------------------------------------------------------
    # Posting-list candidate generation (the exact/lossless tier)
    # ------------------------------------------------------------------
    def value_candidates(self, relation: str, attribute: str) -> Dict[AttrId, int]:
        """Attributes sharing at least one value, with shared-value counts.

        Computed by walking the posting list of each of the attribute's
        distinct values — cost proportional to the number of actual
        co-occurrences instead of the number of attribute pairs.  Memoized
        per attribute and validated against the index epoch.  While the
        in-memory postings are deferred and a current posting store is
        attached, the walk runs as one indexed self-join inside the
        backend instead (identical counts, no rebuild).
        """
        attr_id = (relation, attribute)
        cached = self._candidate_cache.get(attr_id)
        if cached is not None and cached[0] == self.epoch:
            return cached[1]
        profile = self._attribute_profiles.get(attr_id)
        candidates: Dict[AttrId, int] = {}
        if profile is not None:
            store = None if self._postings_ready else self._current_store()
            if store is not None:
                candidates = store.value_candidates(relation, attribute)
            else:
                self._ensure_postings()
                shards = self._shards
                for value in profile.distinct_values:
                    postings = shards.value_postings(value)
                    if postings is None:
                        continue
                    for other in postings:
                        if other != attr_id:
                            candidates[other] = candidates.get(other, 0) + 1
        self._candidate_cache[attr_id] = (self.epoch, candidates)
        return candidates

    # ------------------------------------------------------------------
    # Sketch candidate generation (the approximate tier)
    # ------------------------------------------------------------------
    def sketch_candidates(self, relation: str, attribute: str) -> Set[AttrId]:
        """Attributes whose MinHash signature collides in ≥ 1 LSH band.

        Raw sketch-tier output: a superset of the high-Jaccard neighbors,
        *not* verified against the true value sets.  Callers should go
        through :meth:`tiered_candidates`, which re-verifies every survivor.
        """
        if self.sketch_config is None:
            return set()
        self._ensure_postings()  # band keys live beside the shard buckets
        attr_id = (relation, attribute)
        keys = self._band_keys.get(attr_id)
        if not keys:
            return set()
        shards = self._shards
        candidates: Set[AttrId] = set()
        for key in keys:
            bucket = shards.bucket(key)
            if bucket:
                candidates.update(bucket)
        candidates.discard(attr_id)
        return candidates

    def tiered_candidates(
        self, relation: str, attribute: str, min_shared_values: int = 1
    ) -> Dict[AttrId, int]:
        """Candidate attributes via the tiered pipeline, with exact shared counts.

        Tier 0 (approximate): LSH band-bucket collisions over the MinHash
        signatures, unioned with the posting lists of the attribute's
        **rare** value tokens (document frequency ≤ ``rare_token_df``) —
        cheap exact evidence that catches low-Jaccard joinable pairs (two
        attributes sharing a handful of identifier-like values) that
        MinHash alone would miss.

        Tier 1 (exact): every tier-0 survivor is re-verified against the
        true distinct-value sets; only pairs with ``shared >=
        min_shared_values`` survive, with their exact shared counts — so a
        surviving candidate carries the same count ``value_candidates``
        would report, and no false positive ever reaches a matcher.

        Falls back to the lossless posting-list walk when no sketch tier is
        configured.  Memoized per attribute against the index epoch (with
        the default ``min_shared_values=1``).
        """
        if self.sketch_config is None:
            exact = self.value_candidates(relation, attribute)
            if min_shared_values <= 1:
                return exact
            return {k: v for k, v in exact.items() if v >= min_shared_values}
        attr_id = (relation, attribute)
        if min_shared_values <= 1:
            cached = self._tiered_cache.get(attr_id)
            if cached is not None and cached[0] == self.epoch:
                return cached[1]
        profile = self._attribute_profiles.get(attr_id)
        kept: Dict[AttrId, int] = {}
        if profile is not None and profile.distinct_values:
            self._ensure_postings()  # rare-token postings need the shards
            survivors = self.sketch_candidates(relation, attribute)
            shards = self._shards
            rare_cap = self.rare_token_df
            for token in profile.value_tokens:
                postings = shards.token_postings(token)
                if postings is not None and len(postings) <= rare_cap:
                    survivors.update(postings)
            survivors.discard(attr_id)
            self.sketch_candidates_generated += len(survivors)
            values = profile.distinct_values
            for other in sorted(survivors):
                other_profile = self._attribute_profiles.get(other)
                if other_profile is None:
                    continue
                other_values = other_profile.distinct_values
                if len(other_values) < len(values):
                    shared = len(other_values & values)
                else:
                    shared = len(values & other_values)
                if shared >= min_shared_values:
                    kept[other] = shared
            self.exact_candidates_kept += len(kept)
        if min_shared_values <= 1:
            self._tiered_cache[attr_id] = (self.epoch, kept)
        return kept

    def candidate_pairs(
        self,
        relation: str,
        other_relation: Optional[str] = None,
        min_shared_values: int = 1,
        tier: str = "exact",
    ) -> List[Tuple[AttrId, AttrId, int]]:
        """Attribute pairs of ``relation`` that could join, by posting lists.

        Returns ``(attr_of_relation, candidate_attr, shared_count)`` triples
        with ``shared_count >= min_shared_values``, restricted to
        ``other_relation`` when given.  Deterministic order: schema order on
        the left side, ``(relation, attribute)`` order on the right.

        ``tier`` selects the candidate source: ``"exact"`` (default — the
        lossless posting-list walk, unchanged semantics), ``"sketch"`` (the
        tiered sketch + rare-token pipeline; requires a sketch config), or
        ``"auto"`` (sketch when configured, exact otherwise).
        """
        if tier not in ("exact", "sketch", "auto"):
            raise ValueError(f"unknown candidate tier {tier!r}")
        use_sketch = tier == "sketch" or (tier == "auto" and self.sketch_enabled)
        rel_profile = self._relation_profiles.get(relation)
        if rel_profile is None:
            return []
        pairs: List[Tuple[AttrId, AttrId, int]] = []
        for name in rel_profile.attribute_names:
            attr_id = (relation, name)
            candidates = (
                self.tiered_candidates(relation, name)
                if use_sketch
                else self.value_candidates(relation, name)
            )
            for other, shared in sorted(candidates.items()):
                if shared < min_shared_values:
                    continue
                if other_relation is not None and other[0] != other_relation:
                    continue
                pairs.append((attr_id, other, shared))
        return pairs

    def comparable_pair_count(
        self, relation_a: str, relation_b: str, min_shared_values: int = 1
    ) -> int:
        """Number of attribute pairs of the two relations sharing enough values.

        The Figure 7 "value overlap filter" count, computed from posting
        lists (the per-attribute candidate maps are memoized) instead of the
        seed's nested loop over every attribute pair.
        """
        profile_a = self._relation_profiles.get(relation_a)
        profile_b = self._relation_profiles.get(relation_b)
        if profile_a is None or profile_b is None:
            return 0
        # Walk candidates from the lower-arity side; the count is symmetric.
        if profile_b.arity < profile_a.arity:
            profile_a, profile_b = profile_b, profile_a
        other_relation = profile_b.relation
        count = 0
        for name in profile_a.attribute_names:
            for other, shared in self.value_candidates(profile_a.relation, name).items():
                if other[0] == other_relation and shared >= min_shared_values:
                    count += 1
        return count

    # ------------------------------------------------------------------
    # Token statistics and tf-idf vectors
    # ------------------------------------------------------------------
    def token_postings(self, token: str) -> Tuple[AttrId, ...]:
        """The attributes whose values contain ``token`` (a posting list)."""
        needle = token.lower()
        if not self._postings_ready:
            store = self._current_store()
            if store is not None:
                return store.token_postings(needle)
            self._ensure_postings()
        postings = self._shards.token_postings(needle)
        return tuple(postings) if postings is not None else ()

    def token_document_frequency(self, token: str) -> int:
        """Number of attributes whose values contain ``token``."""
        needle = token.lower()
        if not self._postings_ready:
            store = self._current_store()
            if store is not None:
                return store.token_document_frequency(needle)
            self._ensure_postings()
        postings = self._shards.token_postings(needle)
        return len(postings) if postings is not None else 0

    def inverse_token_frequency(self, token: str, smoothing: float = 1.0) -> float:
        """Smoothed idf of ``token`` over attribute "documents" (always > 0)."""
        df = self.token_document_frequency(token)
        return math.log(
            (self.attribute_count + smoothing) / (df + smoothing)
        ) + 1.0

    def content_tfidf(self, relation: str, attribute: str) -> Dict[str, float]:
        """Precomputed, L2-normalized tf-idf vector of the attribute's value tokens.

        Each attribute is one "document" whose terms are its distinct value
        tokens; document frequencies come from the token posting lists.
        Memoized per attribute, validated against the index epoch.  A
        current posting store serves as a second-level cache: previously
        computed vectors load back byte-identically (IEEE doubles through
        ``REAL``, token order preserved), and freshly computed ones are
        written through for the next session.
        """
        attr_id = (relation, attribute)
        cached = self._tfidf_cache.get(attr_id)
        if cached is not None and cached[0] == self.epoch:
            return cached[1]
        profile = self._attribute_profiles.get(attr_id)
        vector: Dict[str, float] = {}
        if profile is not None and profile.value_tokens:
            store = self._current_store()
            stored = (
                store.tfidf_vector(relation, attribute) if store is not None else None
            )
            if stored is not None:
                vector = stored
            else:
                # Sorted iteration fixes the float-summation order of the
                # norm, so the vector is identical however the token set
                # was built — scanned live, restored from a snapshot, or
                # (below) priced off the store's batched frequencies.
                tokens = sorted(profile.value_tokens)
                if store is not None and not self._postings_ready:
                    frequencies = store.token_document_frequencies(tokens)
                    count = self.attribute_count
                    for token in tokens:
                        vector[token] = (
                            math.log((count + 1.0) / (frequencies.get(token, 0) + 1.0))
                            + 1.0
                        )
                else:
                    for token in tokens:
                        vector[token] = self.inverse_token_frequency(token)
                norm = math.sqrt(sum(w * w for w in vector.values()))
                if norm > 0.0:
                    vector = {token: w / norm for token, w in vector.items()}
                if store is not None:
                    store.store_tfidf(relation, attribute, vector)
        self._tfidf_cache[attr_id] = (self.epoch, vector)
        return vector

    def content_similarity(
        self, relation_a: str, attribute_a: str, relation_b: str, attribute_b: str
    ) -> float:
        """Cosine similarity of the two attributes' content tf-idf vectors."""
        vec_a = self.content_tfidf(relation_a, attribute_a)
        vec_b = self.content_tfidf(relation_b, attribute_b)
        if not vec_a or not vec_b:
            return 0.0
        if len(vec_b) < len(vec_a):
            vec_a, vec_b = vec_b, vec_a
        return sum(weight * vec_b.get(token, 0.0) for token, weight in vec_a.items())

    # ------------------------------------------------------------------
    # Shared pair-correspondence memo (schema-only matchers)
    # ------------------------------------------------------------------
    def pair_memo_get(self, key: Tuple) -> Optional[Tuple]:
        """Look up a memoized per-relation-pair matcher output."""
        cached = self._pair_cache.get(key)
        if cached is not None:
            self._pair_cache.move_to_end(key)
            self.pair_cache_hits += 1
        else:
            self.pair_cache_misses += 1
        return cached

    def pair_memo_put(self, key: Tuple, value: Tuple) -> None:
        """Store a memoized per-relation-pair matcher output (LRU-bounded)."""
        self._pair_cache[key] = value
        self._pair_cache.move_to_end(key)
        while len(self._pair_cache) > self.pair_memo_limit:
            self._pair_cache.popitem(last=False)

    @property
    def pair_memo_size(self) -> int:
        """Current number of memoized relation-pair outputs."""
        return len(self._pair_cache)

    # ------------------------------------------------------------------
    # Session persistence (see :mod:`repro.persist`)
    # ------------------------------------------------------------------
    def export_state(self, relations: Optional[Iterable[str]] = None) -> Dict[str, object]:
        """JSON-compatible state of the index (optionally one relation subset).

        Set-valued profile fields are emitted sorted so the payload is
        canonical: exporting, restoring and exporting again yields an
        identical document (the round-trip fixed point the persistence
        property tests assert).  Posting lists, sketches and memo caches
        are *not* serialized — they are derived state, rebuilt from the
        profiles on :meth:`absorb_state`.  The structural configuration
        (shard count, sketch shape) *is* serialized so a restored index
        routes and sketches exactly like the one that saved.
        """
        selected = set(relations) if relations is not None else None

        def keep(relation: str) -> bool:
            return selected is None or relation in selected

        return {
            "epoch": self.epoch,
            "shard_count": self._shards.shard_count,
            "sketch": (
                self.sketch_config.payload() if self.sketch_config is not None else None
            ),
            "rare_token_df": self.rare_token_df,
            "relations": [
                {
                    "relation": profile.relation,
                    "attribute_names": list(profile.attribute_names),
                    "name_token_union": sorted(profile.name_token_union),
                    "row_count": profile.row_count,
                }
                for profile in self._relation_profiles.values()
                if keep(profile.relation)
            ],
            "attributes": [
                {
                    "relation": profile.relation,
                    "attribute": profile.attribute,
                    "normalized_name": profile.normalized_name,
                    "name_tokens": sorted(profile.name_tokens),
                    "distinct_values": sorted(profile.distinct_values),
                    "value_tokens": sorted(profile.value_tokens),
                    "row_count": profile.row_count,
                    "non_null_count": profile.non_null_count,
                }
                for profile in self._attribute_profiles.values()
                if keep(profile.relation)
            ],
            "source_relations": [
                [name, list(rels)]
                for name, rels in self._source_relations.items()
                if selected is None or any(rel in selected for rel in rels)
            ],
        }

    def absorb_state(self, payload: Dict[str, object]) -> None:
        """Fold a previously exported state into this index.

        Profiles are installed verbatim (no table scan — the warm-start
        fast path); posting lists and sketches are **deferred**, rebuilt
        from the profiles only when an in-memory posting read first needs
        them (:meth:`_ensure_postings`) — or served without any rebuild by
        an attached, current posting store.  The epoch is taken from the
        payload so dependent caches (and the posting store's currency
        check) re-validate exactly as they would against the original
        index.  Structural configuration keys (``shard_count``,
        ``sketch``) are ignored here — they are fixed at construction;
        :meth:`from_state` applies them when rebuilding from scratch.
        """
        self._postings_ready = False
        for spec in payload.get("relations", ()):
            relation = spec["relation"]
            names = tuple(spec["attribute_names"])
            self._relation_profiles[relation] = RelationProfile(
                relation=relation,
                attribute_names=names,
                name_token_union=frozenset(spec["name_token_union"]),
                fingerprint=(relation, names),
                row_count=spec["row_count"],
            )
        for spec in payload.get("attributes", ()):
            profile = AttributeProfile(
                relation=spec["relation"],
                attribute=spec["attribute"],
                normalized_name=spec["normalized_name"],
                name_tokens=frozenset(spec["name_tokens"]),
                distinct_values=frozenset(spec["distinct_values"]),
                value_tokens=frozenset(spec["value_tokens"]),
                row_count=spec["row_count"],
                non_null_count=spec["non_null_count"],
            )
            self._install_attribute(profile)
        for name, rels in payload.get("source_relations", ()):
            relations = self._source_relations.setdefault(name, [])
            for relation in rels:
                if relation not in relations:
                    relations.append(relation)
        if "epoch" in payload:
            self.epoch = payload["epoch"]

    @classmethod
    def from_state(cls, payload: Dict[str, object]) -> "CatalogProfileIndex":
        """Rebuild an index from :meth:`export_state` output (no data scan).

        The persisted structural configuration — shard count, sketch shape,
        rare-token ceiling — is applied first, so the restored index routes
        postings and generates candidates exactly like the saved one.
        """
        sketch_payload = payload.get("sketch")
        index = cls(
            shard_count=payload.get("shard_count", 1),
            sketch=(
                SketchConfig.from_payload(sketch_payload)
                if sketch_payload is not None
                else None
            ),
            rare_token_df=payload.get("rare_token_df", _RARE_TOKEN_DF),
        )
        index.absorb_state(payload)
        return index

    def rebind_tables(self, catalog: Catalog) -> None:
        """Point the staleness bookkeeping at ``catalog``'s live tables.

        After a restore, profiles describe data that is now served by
        freshly (re)opened :class:`Table` objects; binding their identity
        and current version makes :meth:`is_current` checks behave exactly
        as on the session that wrote the snapshot.
        """
        from ..exceptions import UnknownRelationError

        for relation in self._relation_profiles:
            try:
                table = catalog.relation(relation)
            except UnknownRelationError:
                continue
            self._table_versions[relation] = (table, table.version)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CatalogProfileIndex(relations={self.relation_count}, "
            f"attributes={self.attribute_count}, values={self.distinct_value_count}, "
            f"shards={self.shard_count}, sketch={self.sketch_enabled})"
        )
