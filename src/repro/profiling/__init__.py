"""Profile-indexed source registration (the registration-side fast path).

Architecture
============

The paper's headline contribution (Section 3) is *automatically
incorporating new sources*: when a source is registered, a base matcher
aligns its attributes against the catalog and the aligner strategies decide
which relation pairs are worth the comparison.  The seed implementation ran
this as nested all-pairs loops, re-deriving value sets, token bags and name
normalizations from scratch on every call — the cost measured by the
Figure 6 (runtime) and Figure 7 (attribute comparisons) experiments.

This package makes registration *index-centric* instead:

``profiles``
    :func:`~repro.profiling.profiles.profile_table` computes, in one pass
    per table, an :class:`~repro.profiling.profiles.AttributeProfile` per
    attribute (canonical distinct values, value tokens, tokenized and
    normalized attribute names, cardinality statistics) and a
    :class:`~repro.profiling.profiles.RelationProfile` per relation
    (sibling-name token union, schema fingerprint).

``index``
    :class:`~repro.profiling.index.CatalogProfileIndex` stores those
    profiles persistently and maintains two inverted posting lists —
    distinct value → attributes, value token → attributes (with document
    frequencies feeding precomputed tf-idf content vectors).  The index is
    updated **once per registered source** (``index_source``), supports
    exact retraction (``remove_source``, used by the registration rollback
    path), and exposes:

    * posting-list **candidate generation**
      (:meth:`~repro.profiling.index.CatalogProfileIndex.value_candidates`,
      :meth:`~repro.profiling.index.CatalogProfileIndex.candidate_pairs`):
      the attribute pairs that share at least one value, found by
      intersecting posting lists — cost proportional to actual
      co-occurrences, not to the number of attribute pairs.  This is the
      *blocking* step that replaces the matcher layer's nested loops; the
      exhaustive all-pairs scan survives only as the Figure 7 "no filter"
      baseline (and as the fallback for schema-only evidence, which value
      postings cannot prune losslessly).
    * a shared **pair-correspondence memo** keyed by schema fingerprint,
      which lets schema-only matchers (metadata) replay a relation pair's
      correspondences instead of re-scoring identical schemas across
      strategies and replay trials.

Consumers: :class:`~repro.matching.value_overlap.ValueOverlapFilter` and
:class:`~repro.matching.value_overlap.ValueOverlapMatcher` (blocking),
:class:`~repro.matching.metadata_matcher.MetadataMatcher` (structural
profiles + pair memo), :class:`~repro.matching.ensemble.MatcherEnsemble`
(wires one index into every member),
:class:`~repro.alignment.registration.SourceRegistrar` (incremental
maintenance + rollback) and :meth:`repro.api.service.QService.register_sources`
(batch ingest: profile N sources in one pass, then align).  The
``benchmarks/registration_bench.py`` runner measures the seed pipeline
against this one and emits ``BENCH_registration.json``.
"""

from .index import CatalogProfileIndex
from .profiles import (
    AttrId,
    AttributeProfile,
    RelationProfile,
    SchemaFingerprint,
    profile_table,
    schema_fingerprint,
)
from .shards import BandKey, PostingShard, ShardRouter, stable_shard
from .sketches import (
    SketchConfig,
    attribute_sketch,
    band_keys,
    minhash_signature,
    sketch_jaccard,
    token_hash,
)

__all__ = [
    "AttrId",
    "AttributeProfile",
    "BandKey",
    "CatalogProfileIndex",
    "PostingShard",
    "RelationProfile",
    "SchemaFingerprint",
    "ShardRouter",
    "SketchConfig",
    "attribute_sketch",
    "band_keys",
    "minhash_signature",
    "profile_table",
    "schema_fingerprint",
    "sketch_jaccard",
    "stable_shard",
    "token_hash",
]
