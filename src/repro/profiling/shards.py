"""Hash-sharded posting storage for the catalog profile index.

At web-catalog scale a single flat ``value -> attributes`` dictionary
becomes the profile index's contention and memory hot spot: every
registration touches it for every distinct value of every new attribute,
and persistence exports walk it end to end.  This module splits the
posting-list state of :class:`~repro.profiling.index.CatalogProfileIndex`
into ``N`` independent :class:`PostingShard` buckets behind a thin
:class:`ShardRouter`:

* routing is by a **stable** hash (``zlib.crc32``) of the posting key —
  the distinct value, the value token, or the LSH band bucket — so shard
  assignment is identical across processes, sessions and restores
  (Python's builtin ``hash`` is salted per process and therefore unusable
  here);
* every router operation is a one-shard operation, so shards can be
  maintained, sized and (in future PRs) locked or distributed
  independently;
* the router exposes exactly the lookups the index used to perform on its
  flat dictionaries, which keeps :class:`CatalogProfileIndex`'s public
  API — ``candidate_pairs`` / ``overlap`` / ``token_postings`` — and all
  of its callers (matchers, aligner strategies, persistence) untouched.

``shard_count=1`` degenerates to the old single-dictionary layout with no
routing overhead beyond one modulo, and is the default everywhere.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .profiles import AttrId

#: An LSH band bucket identity: ``(band index, band hash)``.
BandKey = Tuple[int, int]


def stable_shard(key: str, shard_count: int) -> int:
    """Deterministic shard of a string key (identical across processes)."""
    if shard_count <= 1:
        return 0
    return zlib.crc32(key.encode("utf-8")) % shard_count


class PostingShard:
    """One shard's slice of the posting-list state.

    Three independent maps, all ``key -> set of attribute ids``:

    * ``value_postings`` — distinct canonical value → attributes containing
      it (the lossless blocking index);
    * ``token_postings`` — value token → attributes whose values contain it
      (document frequencies / tf-idf);
    * ``sketch_buckets`` — LSH band bucket → attributes whose MinHash
      signature lands in it (the approximate blocking tier).
    """

    __slots__ = ("value_postings", "token_postings", "sketch_buckets")

    def __init__(self) -> None:
        self.value_postings: Dict[str, Set[AttrId]] = {}
        self.token_postings: Dict[str, Set[AttrId]] = {}
        self.sketch_buckets: Dict[BandKey, Set[AttrId]] = {}

    def entry_count(self) -> int:
        """Total posting keys held by this shard (all three maps)."""
        return (
            len(self.value_postings) + len(self.token_postings) + len(self.sketch_buckets)
        )


class ShardRouter:
    """Routes posting-list operations to one of ``shard_count`` shards.

    The router is intentionally dumb: it owns the shard array, picks the
    shard for a key, and performs the add/discard/lookup on it.  All
    aggregate semantics (candidate generation, overlap counting, tf-idf)
    stay in :class:`~repro.profiling.index.CatalogProfileIndex`.
    """

    __slots__ = ("shard_count", "shards")

    def __init__(self, shard_count: int = 1) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count
        self.shards: List[PostingShard] = [PostingShard() for _ in range(shard_count)]

    # ------------------------------------------------------------------
    # Distinct-value postings
    # ------------------------------------------------------------------
    def add_value(self, value: str, attr_id: AttrId) -> None:
        shard = self.shards[stable_shard(value, self.shard_count)]
        shard.value_postings.setdefault(value, set()).add(attr_id)

    def discard_value(self, value: str, attr_id: AttrId) -> None:
        shard = self.shards[stable_shard(value, self.shard_count)]
        postings = shard.value_postings.get(value)
        if postings is not None:
            postings.discard(attr_id)
            if not postings:
                del shard.value_postings[value]

    def value_postings(self, value: str) -> Optional[Set[AttrId]]:
        shard = self.shards[stable_shard(value, self.shard_count)]
        return shard.value_postings.get(value)

    @property
    def distinct_value_count(self) -> int:
        return sum(len(shard.value_postings) for shard in self.shards)

    # ------------------------------------------------------------------
    # Token postings
    # ------------------------------------------------------------------
    def add_token(self, token: str, attr_id: AttrId) -> None:
        shard = self.shards[stable_shard(token, self.shard_count)]
        shard.token_postings.setdefault(token, set()).add(attr_id)

    def discard_token(self, token: str, attr_id: AttrId) -> None:
        shard = self.shards[stable_shard(token, self.shard_count)]
        postings = shard.token_postings.get(token)
        if postings is not None:
            postings.discard(attr_id)
            if not postings:
                del shard.token_postings[token]

    def token_postings(self, token: str) -> Optional[Set[AttrId]]:
        shard = self.shards[stable_shard(token, self.shard_count)]
        return shard.token_postings.get(token)

    # ------------------------------------------------------------------
    # LSH band buckets (the approximate blocking tier)
    # ------------------------------------------------------------------
    def add_bucket(self, key: BandKey, attr_id: AttrId) -> None:
        shard = self.shards[self._bucket_shard(key)]
        shard.sketch_buckets.setdefault(key, set()).add(attr_id)

    def discard_bucket(self, key: BandKey, attr_id: AttrId) -> None:
        shard = self.shards[self._bucket_shard(key)]
        bucket = shard.sketch_buckets.get(key)
        if bucket is not None:
            bucket.discard(attr_id)
            if not bucket:
                del shard.sketch_buckets[key]

    def bucket(self, key: BandKey) -> Optional[Set[AttrId]]:
        shard = self.shards[self._bucket_shard(key)]
        return shard.sketch_buckets.get(key)

    def _bucket_shard(self, key: BandKey) -> int:
        if self.shard_count <= 1:
            return 0
        band, digest = key
        return (band * 1000003 + digest) % self.shard_count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_sizes(self) -> Tuple[int, ...]:
        """Posting keys per shard (balance diagnostic for benches/stats)."""
        return tuple(shard.entry_count() for shard in self.shards)

    def iter_values(self) -> Iterator[Tuple[str, Set[AttrId]]]:
        """All distinct-value posting lists, shard by shard."""
        for shard in self.shards:
            yield from shard.value_postings.items()
