"""Per-attribute and per-relation profiles shared by every matcher.

A *profile* is everything the registration pipeline repeatedly re-derived
from a table in the seed implementation — distinct value sets, value token
bags, tokenized/normalized attribute names, cardinality statistics — frozen
into one object that is computed **once** when a source is registered and
then shared by the value-overlap filter, the value-overlap matcher, the
metadata matcher and the aligner strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..datastore.table import Table
from ..datastore.types import canonicalize
from ..similarity.tokenize import normalize_label, token_set, tokenize

#: Identity of one attribute: ``(qualified relation name, attribute name)``.
AttrId = Tuple[str, str]

#: Hashable fingerprint of a relation schema: the qualified relation name
#: plus the ordered attribute names.  Two tables with equal fingerprints are
#: indistinguishable to any schema-only (metadata) matcher, which is what
#: makes the shared pair-correspondence memo sound across catalog clones.
SchemaFingerprint = Tuple[str, Tuple[str, ...]]


def schema_fingerprint(table: Table) -> SchemaFingerprint:
    """Fingerprint of ``table``'s schema (name + ordered attribute names)."""
    return (table.schema.qualified_name, tuple(table.schema.attribute_names))


@dataclass(frozen=True)
class AttributeProfile:
    """Everything the matchers need to know about one attribute.

    Attributes
    ----------
    relation, attribute:
        The fully qualified identity of the attribute.
    normalized_name:
        :func:`~repro.similarity.tokenize.normalize_label` of the attribute
        name (what the metadata matcher's string measures operate on).
    name_tokens:
        Token set of the attribute name (token-level name evidence).
    distinct_values:
        Canonicalized distinct non-null values (the posting-list keys).
    value_tokens:
        Distinct text tokens appearing in the attribute's values.
    row_count, non_null_count:
        Cardinality statistics; ``distinct_count``/``selectivity`` derive
        from them.
    """

    relation: str
    attribute: str
    normalized_name: str
    name_tokens: FrozenSet[str]
    distinct_values: FrozenSet[str]
    value_tokens: FrozenSet[str]
    row_count: int
    non_null_count: int

    @property
    def attr_id(self) -> AttrId:
        """``(relation, attribute)`` identity tuple."""
        return (self.relation, self.attribute)

    @property
    def distinct_count(self) -> int:
        """Number of distinct canonical values."""
        return len(self.distinct_values)

    @property
    def selectivity(self) -> float:
        """Distinct values per non-null row (1.0 for key-like attributes)."""
        if self.non_null_count == 0:
            return 0.0
        return self.distinct_count / self.non_null_count


@dataclass(frozen=True)
class RelationProfile:
    """Schema-level profile of one relation.

    Carries the precomputed union of sibling attribute-name tokens that the
    metadata matcher's structural similarity reads, and the schema
    fingerprint used to key shared pair-correspondence memos.
    """

    relation: str
    attribute_names: Tuple[str, ...]
    name_token_union: FrozenSet[str]
    fingerprint: SchemaFingerprint
    row_count: int

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attribute_names)


def profile_table(table: Table) -> Tuple[RelationProfile, Dict[str, AttributeProfile]]:
    """Build the relation profile and all attribute profiles of ``table``.

    One backend scan over the stored rows (:meth:`Table.scan` — the storage
    protocol's ordered bulk read, identical under memory and SQLite): every
    cell is canonicalized once, its distinct value recorded, and its tokens
    folded into the attribute's value-token set.
    """
    schema = table.schema
    relation = schema.qualified_name
    names = schema.attribute_names
    arity = len(names)
    distinct: Tuple[set, ...] = tuple(set() for _ in range(arity))
    value_tokens: Tuple[set, ...] = tuple(set() for _ in range(arity))
    non_null = [0] * arity
    for row in table.scan():
        values = row.values
        for idx in range(arity):
            canon = canonicalize(values[idx])
            if canon is None:
                continue
            non_null[idx] += 1
            if canon not in distinct[idx]:
                distinct[idx].add(canon)
                value_tokens[idx].update(tokenize(canon))

    row_count = len(table)
    profiles: Dict[str, AttributeProfile] = {}
    token_union: set = set()
    for idx, name in enumerate(names):
        name_tokens = token_set(name)
        token_union |= name_tokens
        profiles[name] = AttributeProfile(
            relation=relation,
            attribute=name,
            normalized_name=normalize_label(name),
            name_tokens=name_tokens,
            distinct_values=frozenset(distinct[idx]),
            value_tokens=frozenset(value_tokens[idx]),
            row_count=row_count,
            non_null_count=non_null[idx],
        )
    relation_profile = RelationProfile(
        relation=relation,
        attribute_names=tuple(names),
        name_token_union=frozenset(token_union),
        fingerprint=schema_fingerprint(table),
        row_count=row_count,
    )
    return relation_profile, profiles
