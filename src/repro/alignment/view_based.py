"""VIEWBASEDALIGNER (Algorithm 2 of the paper).

Given an existing keyword view with keywords ``K`` and the cost ``α`` of its
k-th best answer, only relations inside the α-cost neighborhood of some
keyword node can possibly contribute a Steiner tree of cost ≤ α — so those
are the only relations the new source is matched against.  Because edge
costs are non-negative this pruning is *lossless*: the view's top-k results
after alignment are identical to what EXHAUSTIVE would produce.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from ..datastore.database import Catalog, DataSource
from ..exceptions import AlignmentError
from ..graph.neighborhood import neighborhood_relations
from ..graph.search_graph import SearchGraph
from ..matching.base import BaseMatcher
from ..matching.value_overlap import ValueOverlapFilter
from .base import BaseAligner


class ViewBasedAligner(BaseAligner):
    """Information-need-driven aligner restricted to the α-cost neighborhood.

    Parameters
    ----------
    matcher, top_y, value_filter, count_only:
        See :class:`~repro.alignment.base.BaseAligner`.
    keyword_nodes:
        Node ids of the view's keyword nodes.  They are looked up in
        ``neighborhood_graph`` when that is given (the usual case: the
        persistent search graph does not contain keyword nodes, the view's
        query graph does), otherwise in the graph being aligned.
    alpha:
        The cost of the view's k-th best answer (the pruning radius).
    neighborhood_graph:
        Optional graph in which the α-cost neighborhood is computed;
        defaults to the graph passed to :meth:`align`.
    """

    strategy_name = "view_based"

    def __init__(
        self,
        matcher: BaseMatcher,
        keyword_nodes: Sequence[str],
        alpha: float,
        top_y: int = 2,
        value_filter: Optional[ValueOverlapFilter] = None,
        count_only: bool = False,
        neighborhood_graph: Optional[SearchGraph] = None,
        profile_index=None,
    ) -> None:
        super().__init__(
            matcher,
            top_y=top_y,
            value_filter=value_filter,
            count_only=count_only,
            profile_index=profile_index,
        )
        if alpha < 0:
            raise AlignmentError("alpha must be non-negative")
        self.keyword_nodes = list(keyword_nodes)
        self.alpha = alpha
        self.neighborhood_graph = neighborhood_graph

    def candidate_relations(
        self, graph: SearchGraph, catalog: Catalog, new_source: DataSource
    ) -> List[str]:
        """Relations whose nodes lie within cost α of any keyword node."""
        neighborhood_source = self.neighborhood_graph or graph
        start_nodes = [n for n in self.keyword_nodes if neighborhood_source.has_node(n)]
        if not start_nodes:
            raise AlignmentError(
                "none of the keyword nodes are present in the graph; "
                "expand the query graph before aligning"
            )
        neighborhood = neighborhood_relations(neighborhood_source, start_nodes, self.alpha)
        new_relations = {t.schema.qualified_name for t in new_source.tables()}
        # Preserve catalog order for determinism.
        candidates: List[str] = []
        for source in catalog:
            for table in source:
                qualified = table.schema.qualified_name
                if qualified in neighborhood and qualified not in new_relations:
                    candidates.append(qualified)
        return candidates
