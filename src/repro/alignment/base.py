"""Shared aligner infrastructure.

An *aligner strategy* decides which existing relations a newly registered
source is matched against (paper Section 3.3).  All strategies share the
same mechanics — run a base matcher over the chosen relation pairs, merge
the correspondences, and install association edges in the search graph —
and differ only in the candidate-selection policy, so the shared pieces live
here.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..datastore.database import Catalog, DataSource
from ..datastore.table import Table
from ..graph.edges import Edge
from ..graph.search_graph import SearchGraph
from ..matching.base import BaseMatcher, Correspondence, merge_correspondences, top_y_per_attribute
from ..matching.value_overlap import ValueOverlapFilter
from ..profiling.index import CatalogProfileIndex
from .parallel import POOL_THREAD, PairTask, score_pairs


@dataclass
class AlignmentResult:
    """Outcome of aligning one new source against the search graph.

    Attributes
    ----------
    strategy:
        Name of the aligner strategy used.
    new_source:
        Name of the registered source.
    correspondences:
        The correspondences retained after top-Y filtering.
    edges_added:
        Association edges installed in the search graph.
    relation_pairs_considered:
        Number of (new relation, existing relation) pairs the base matcher
        was invoked on.
    attribute_comparisons:
        Number of pairwise attribute comparisons (the metric of Figures 7
        and 8); respects the value-overlap filter when one is configured.
    candidate_relations:
        The existing relations the strategy chose to compare against.
    elapsed_seconds:
        Wall-clock time of the alignment (the metric of Figure 6).
    pairs_scored:
        Number of relation pairs the base matcher was actually invoked on
        (pairs surviving the comparison count, i.e. the pool's work items).
    pool_workers:
        Number of pool workers that scored those pairs (1 = serial path).
    """

    strategy: str
    new_source: str
    correspondences: List[Correspondence] = field(default_factory=list)
    edges_added: List[Edge] = field(default_factory=list)
    relation_pairs_considered: int = 0
    attribute_comparisons: int = 0
    candidate_relations: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    pairs_scored: int = 0
    pool_workers: int = 1


class BaseAligner(abc.ABC):
    """Common machinery for the EXHAUSTIVE / VIEWBASED / PREFERENTIAL strategies.

    Parameters
    ----------
    matcher:
        The black-box pairwise matcher (``BASEMATCHER`` in Algorithms 2/3).
    top_y:
        How many candidate alignments to keep per attribute when installing
        association edges.
    value_filter:
        Optional :class:`ValueOverlapFilter`; when present, attribute pairs
        with no shared values are neither counted nor compared (the "Value
        Overlap Filter" configuration of Figure 7).
    count_only:
        If ``True``, the aligner only *counts* comparisons without invoking
        the matcher — used by the Figure 8 scaling experiment, whose
        synthetic relations have no realistic labels to match on.
    profile_index:
        Optional shared :class:`~repro.profiling.index.CatalogProfileIndex`
        (the one the registration service maintains).  It is injected into
        the matcher when the matcher supports one and has none attached, so
        every strategy pulls candidate pairs and table profiles from the
        same incrementally maintained index.

    Parallelism is configured post-construction (``aligner.workers`` /
    ``aligner.pool`` — see :mod:`repro.alignment.parallel`); the defaults
    keep every strategy on the serial path.
    """

    #: Strategy name, overridden by subclasses.
    strategy_name = "base"

    def __init__(
        self,
        matcher: BaseMatcher,
        top_y: int = 2,
        value_filter: Optional[ValueOverlapFilter] = None,
        count_only: bool = False,
        profile_index: Optional[CatalogProfileIndex] = None,
    ) -> None:
        self.matcher = matcher
        self.top_y = top_y
        self.value_filter = value_filter
        self.count_only = count_only
        self.profile_index = profile_index
        #: Matcher-scoring pool size (1 = serial) and pool kind; see
        #: :func:`repro.alignment.parallel.score_pairs`.
        self.workers = 1
        self.pool = POOL_THREAD
        if profile_index is not None and getattr(matcher, "profile_index", "unsupported") is None:
            matcher.profile_index = profile_index

    # ------------------------------------------------------------------
    # Strategy-specific candidate selection
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def candidate_relations(
        self, graph: SearchGraph, catalog: Catalog, new_source: DataSource
    ) -> List[str]:
        """Qualified names of the existing relations to align the new source against."""

    # ------------------------------------------------------------------
    # Shared alignment pipeline
    # ------------------------------------------------------------------
    def align(
        self, graph: SearchGraph, catalog: Catalog, new_source: DataSource
    ) -> AlignmentResult:
        """Align ``new_source`` against the graph and install association edges.

        The new source's relations/attributes are expected to already be
        nodes of ``graph`` (the registration service adds them before
        calling the aligner); the catalog must already contain the source.
        """
        start = time.perf_counter()
        result = AlignmentResult(strategy=self.strategy_name, new_source=new_source.name)
        candidates = self.candidate_relations(graph, catalog, new_source)
        result.candidate_relations = list(candidates)
        new_tables = list(new_source.tables())

        # Comparison counting stays in this thread (race-free Figure 7/8
        # instrumentation); the surviving pairs become the pool's work list,
        # in exactly the order the serial loop would have scored them.
        pair_tasks: List[PairTask] = []
        for qualified_relation in candidates:
            try:
                existing_table = catalog.relation(qualified_relation)
            except Exception:
                continue
            for new_table in new_tables:
                if new_table.schema.qualified_name == qualified_relation:
                    continue
                comparisons = self._count_comparisons(new_table, existing_table)
                if comparisons == 0:
                    continue
                result.relation_pairs_considered += 1
                result.attribute_comparisons += comparisons
                if not self.count_only:
                    pair_tasks.append((new_table, existing_table))

        if not self.count_only:
            correspondences, workers_used = score_pairs(
                self.matcher, pair_tasks, workers=self.workers, pool=self.pool
            )
            result.pairs_scored = len(pair_tasks)
            result.pool_workers = workers_used
            retained = top_y_per_attribute(correspondences, self.top_y)
            result.correspondences = retained
            # Edge installation (and with it edge id allocation) is strictly
            # serial, after the parallel join — a precondition of the
            # byte-identical-to-serial guarantee.
            result.edges_added = install_associations(graph, retained)
        result.elapsed_seconds = time.perf_counter() - start
        return result

    def _count_comparisons(self, table_a: Table, table_b: Table) -> int:
        if self.value_filter is not None:
            return self.value_filter.comparable_pairs(table_a, table_b)
        return len(table_a.schema.attribute_names) * len(table_b.schema.attribute_names)


def install_associations(
    graph: SearchGraph, correspondences: Iterable[Correspondence]
) -> List[Edge]:
    """Install association edges for ``correspondences`` into ``graph``.

    Correspondences for the same attribute pair coming from different
    matchers are merged onto one edge, each contributing its own
    matcher-confidence feature (paper Section 3.2.3 / 3.4).
    """
    merged = merge_correspondences(correspondences)
    refs: Dict[Tuple[str, str], Correspondence] = {}
    for correspondence in correspondences:
        refs.setdefault(correspondence.key(), correspondence)
    edges: List[Edge] = []
    for key, confidences in merged.items():
        correspondence = refs[key]
        edge = graph.add_association(
            correspondence.source.relation,
            correspondence.source.attribute,
            correspondence.target.relation,
            correspondence.target.attribute,
            matcher_confidences=confidences,
            metadata={"origin": "aligner"},
        )
        edges.append(edge)
    return edges
