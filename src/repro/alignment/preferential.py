"""PREFERENTIALALIGNER (Algorithm 3 of the paper).

Candidate relations are ranked by an *alignment prior* ``P`` over the
vertices of the existing search graph — e.g. authoritativeness learned from
feedback, or link-analysis scores — and the new source is compared against
the most-preferred relations first, stopping after a budget.  Unlike
VIEWBASEDALIGNER this is not guaranteed to preserve the exhaustive top-k
results, but it is the cheapest strategy (Figures 6–8).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from ..datastore.database import Catalog, DataSource
from ..exceptions import AlignmentError
from ..graph.features import relation_feature
from ..graph.search_graph import SearchGraph
from ..matching.base import BaseMatcher
from ..matching.value_overlap import ValueOverlapFilter
from .base import BaseAligner

# A vertex prior may be given as a mapping or as a callable on relation names.
VertexPrior = Union[Mapping[str, float], Callable[[str], float]]


def prior_from_weights(graph: SearchGraph) -> Dict[str, float]:
    """Derive a vertex prior from the learned relation-authority feature weights.

    The weight of ``relation::<R>`` is the negated log-authoritativeness of
    relation ``R`` (paper Section 3.4): lower weight means more
    authoritative, so the prior value is the *negated* weight — higher is
    preferred.  Relations with no learned weight default to 0.
    """
    prior: Dict[str, float] = {}
    for node in graph.relation_nodes():
        if node.relation is None:
            continue
        weight = graph.weights.get(relation_feature(node.relation), 0.0)
        prior[node.relation] = -weight
    return prior


class PreferentialAligner(BaseAligner):
    """Aligner that follows a preference ordering over existing relations.

    Parameters
    ----------
    matcher, top_y, value_filter, count_only:
        See :class:`~repro.alignment.base.BaseAligner`.
    prior:
        The vertex cost/preference function ``P``: mapping (or callable)
        from qualified relation name to a preference score, higher = try
        earlier.  When omitted, the prior is derived from the graph's
        learned relation-authority weights at alignment time.
    max_relations:
        Comparison budget: only the ``max_relations`` most-preferred
        relations are matched against (this is what makes the strategy
        cheaper than VIEWBASEDALIGNER; set to ``None`` to rank but not
        truncate).
    """

    strategy_name = "preferential"

    def __init__(
        self,
        matcher: BaseMatcher,
        prior: Optional[VertexPrior] = None,
        max_relations: Optional[int] = 5,
        top_y: int = 2,
        value_filter: Optional[ValueOverlapFilter] = None,
        count_only: bool = False,
        profile_index=None,
    ) -> None:
        super().__init__(
            matcher,
            top_y=top_y,
            value_filter=value_filter,
            count_only=count_only,
            profile_index=profile_index,
        )
        if max_relations is not None and max_relations < 1:
            raise AlignmentError("max_relations must be >= 1 (or None)")
        self.prior = prior
        self.max_relations = max_relations

    def candidate_relations(
        self, graph: SearchGraph, catalog: Catalog, new_source: DataSource
    ) -> List[str]:
        """Existing relations sorted by decreasing prior, truncated to the budget."""
        new_relations = {t.schema.qualified_name for t in new_source.tables()}
        # Resolve the prior once if it needs to be derived from the graph.
        derived = prior_from_weights(graph) if self.prior is None else None
        scored: List[tuple] = []
        for source in catalog:
            for table in source:
                qualified = table.schema.qualified_name
                if qualified in new_relations:
                    continue
                if derived is not None:
                    value = derived.get(qualified, 0.0)
                elif callable(self.prior):
                    value = float(self.prior(qualified))
                else:
                    value = float(self.prior.get(qualified, 0.0))  # type: ignore[union-attr]
                scored.append((-value, qualified))
        scored.sort()
        ordered = [relation for _, relation in scored]
        if self.max_relations is not None:
            ordered = ordered[: self.max_relations]
        return ordered
