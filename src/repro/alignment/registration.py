"""Registration service for new data sources (paper Section 3).

The registration service is the entry point triggered when a user (or a
crawler) registers a new database: the source's relations and attributes are
added to the catalog and the search graph, an aligner strategy proposes
association edges against the existing graph, and any registered callbacks
(e.g. view refresh) are invoked with the alignment result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..datastore.database import Catalog, DataSource
from ..exceptions import RegistrationError
from ..graph.search_graph import SearchGraph
from .base import AlignmentResult, BaseAligner

#: Callback signature invoked after each successful registration.
RegistrationListener = Callable[[DataSource, AlignmentResult], None]


@dataclass
class RegistrationRecord:
    """Book-keeping for one registered source."""

    source_name: str
    strategy: str
    alignment: AlignmentResult


class SourceRegistrar:
    """Adds new sources to the catalog + search graph and runs an aligner.

    Parameters
    ----------
    catalog:
        The system catalog; registered sources are added to it.
    graph:
        The search graph; the new source's schema nodes and the proposed
        association edges are added to it.
    """

    def __init__(self, catalog: Catalog, graph: SearchGraph) -> None:
        self.catalog = catalog
        self.graph = graph
        self.history: List[RegistrationRecord] = []
        self._listeners: List[RegistrationListener] = []

    @property
    def epoch(self) -> int:
        """How many registrations have succeeded (a reporting counter).

        Staleness for the lazy pull-based views is *not* tracked here — it
        rides on the search graph's ``structure_version``, which every
        registration bumps by adding nodes/edges.
        """
        return len(self.history)

    def add_listener(self, listener: RegistrationListener) -> None:
        """Register a callback invoked after each successful registration."""
        self._listeners.append(listener)

    def register(self, source: DataSource, aligner: BaseAligner) -> AlignmentResult:
        """Register ``source``: add it to the catalog/graph, then align it.

        Raises
        ------
        RegistrationError
            If a source with the same name is already registered.
        """
        if self.catalog.has_source(source.name):
            raise RegistrationError(f"source {source.name!r} is already registered")
        self.catalog.add_source(source)
        try:
            self.graph.add_source(source)
            alignment = aligner.align(self.graph, self.catalog, source)
        except Exception:
            # Keep catalog and graph consistent on failure.
            self.catalog.remove_source(source.name)
            raise
        record = RegistrationRecord(
            source_name=source.name, strategy=aligner.strategy_name, alignment=alignment
        )
        self.history.append(record)
        for listener in self._listeners:
            listener(source, alignment)
        return alignment

    def registered_sources(self) -> List[str]:
        """Names of the sources registered through this service, in order."""
        return [record.source_name for record in self.history]
