"""Registration service for new data sources (paper Section 3).

The registration service is the entry point triggered when a user (or a
crawler) registers a new database: the source's relations and attributes are
added to the catalog and the search graph, the maintained indexes (the
shared :class:`~repro.profiling.index.CatalogProfileIndex`, value/token
indexes) are updated incrementally, an aligner strategy proposes association
edges against the existing graph, and any registered callbacks (e.g. view
refresh) are invoked with the alignment result.

Failure atomicity: if the aligner (or index maintenance) raises, the
catalog, the search graph *and* every maintained index are rolled back to
their pre-registration state, so a failed registration is a no-op.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, Union

from ..datastore.database import Catalog, DataSource
from ..exceptions import RegistrationError
from ..graph.search_graph import SearchGraph
from .base import AlignmentResult, BaseAligner

#: Callback signature invoked after each successful registration.
RegistrationListener = Callable[[DataSource, AlignmentResult], None]

#: A batch entry: a ready aligner, or a zero-argument factory resolved only
#: after the whole batch is admitted (so strategies that snapshot state at
#: construction time — e.g. a view's α-neighborhood graph — see the other
#: batch members).
AlignerOrFactory = Union[BaseAligner, Callable[[], BaseAligner]]


@dataclass
class RegistrationRecord:
    """Book-keeping for one registered source."""

    source_name: str
    strategy: str
    alignment: AlignmentResult


class SourceRegistrar:
    """Adds new sources to the catalog + search graph and runs an aligner.

    Parameters
    ----------
    catalog:
        The system catalog; registered sources are added to it.
    graph:
        The search graph; the new source's schema nodes and the proposed
        association edges are added to it.
    indexes:
        Maintained index objects — anything exposing ``index_source`` and
        ``remove_source`` (e.g. a
        :class:`~repro.profiling.index.CatalogProfileIndex`, a
        :class:`~repro.datastore.indexes.ValueIndex`).  They are updated
        incrementally on every registration, *before* the aligner runs (so
        value filters and blocking see the new source), and retracted on
        failure.
    """

    def __init__(
        self,
        catalog: Catalog,
        graph: SearchGraph,
        indexes: Iterable[object] = (),
    ) -> None:
        self.catalog = catalog
        self.graph = graph
        self.indexes: List[object] = list(indexes)
        self.history: List[RegistrationRecord] = []
        self._listeners: List[RegistrationListener] = []

    @property
    def epoch(self) -> int:
        """How many registrations have succeeded (a reporting counter).

        Staleness for the lazy pull-based views is *not* tracked here — it
        rides on the search graph's ``structure_version``, which every
        registration bumps by adding nodes/edges.
        """
        return len(self.history)

    def add_listener(self, listener: RegistrationListener) -> None:
        """Register a callback invoked after each successful registration."""
        self._listeners.append(listener)

    def add_index(self, index: object) -> None:
        """Attach another maintained index (``index_source``/``remove_source``)."""
        self.indexes.append(index)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _admit(self, source: DataSource) -> None:
        """Add ``source`` to catalog, graph and maintained indexes."""
        self.catalog.add_source(source)
        try:
            self.graph.add_source(source)
            for index in self.indexes:
                index.index_source(source)  # type: ignore[attr-defined]
        except Exception:
            self._evict(source.name)
            raise

    def _evict(self, source_name: str) -> None:
        """Best-effort inverse of :meth:`_admit` (used on failure paths)."""
        for index in self.indexes:
            index.remove_source(source_name)  # type: ignore[attr-defined]
        self.graph.remove_source(source_name)
        if self.catalog.has_source(source_name):
            self.catalog.remove_source(source_name)

    def register(self, source: DataSource, aligner: BaseAligner) -> AlignmentResult:
        """Register ``source``: add it to catalog/graph/indexes, then align it.

        Raises
        ------
        RegistrationError
            If a source with the same name is already registered.
        """
        if self.catalog.has_source(source.name):
            raise RegistrationError(f"source {source.name!r} is already registered")
        self._admit(source)
        try:
            alignment = aligner.align(self.graph, self.catalog, source)
        except Exception:
            # Keep catalog, graph and indexes consistent on failure.
            self._evict(source.name)
            raise
        record = RegistrationRecord(
            source_name=source.name, strategy=aligner.strategy_name, alignment=alignment
        )
        self.history.append(record)
        for listener in self._listeners:
            listener(source, alignment)
        return alignment

    def register_batch(
        self,
        sources: Sequence[DataSource],
        aligners: Sequence[AlignerOrFactory],
    ) -> List[AlignmentResult]:
        """Batch ingest: admit (and profile) every source, then align each.

        All sources are added to the catalog, graph and maintained indexes
        in **one pass** before any alignment runs — so the profile index is
        built once for the whole batch, and each source's alignment can also
        discover correspondences against the other batch members.  Entries
        in ``aligners`` may be zero-argument factories; they are invoked
        only after the whole batch is admitted, so aligners that snapshot
        state at construction time (the view-based strategy captures its
        view's query graph and α) are built against the post-admission
        state.  The batch is atomic: if any admission or alignment fails,
        every batch source is rolled back.
        """
        if len(aligners) != len(sources):
            raise RegistrationError(
                f"register_batch got {len(sources)} sources but {len(aligners)} aligners"
            )
        seen = set()
        for source in sources:
            if self.catalog.has_source(source.name):
                raise RegistrationError(f"source {source.name!r} is already registered")
            if source.name in seen:
                raise RegistrationError(f"source {source.name!r} appears twice in the batch")
            seen.add(source.name)

        admitted: List[str] = []
        resolved: List[BaseAligner] = []
        results: List[AlignmentResult] = []
        try:
            # Phase 1: one profiling pass over the whole batch.
            for source in sources:
                self._admit(source)
                admitted.append(source.name)
            # Phase 2: build each aligner (factories see the grown graph)
            # and align its source against it.
            for source, entry in zip(sources, aligners):
                aligner = entry if isinstance(entry, BaseAligner) else entry()
                resolved.append(aligner)
                results.append(aligner.align(self.graph, self.catalog, source))
        except Exception:
            for name in reversed(admitted):
                self._evict(name)
            raise

        for source, aligner, alignment in zip(sources, resolved, results):
            self.history.append(
                RegistrationRecord(
                    source_name=source.name,
                    strategy=aligner.strategy_name,
                    alignment=alignment,
                )
            )
            for listener in self._listeners:
                listener(source, alignment)
        return results

    def registered_sources(self) -> List[str]:
        """Names of the sources registered through this service, in order."""
        return [record.source_name for record in self.history]
