"""Aligner strategies for incorporating new sources (paper Section 3.3).

Public API
----------
* :class:`ExhaustiveAligner` — match a new source against every existing
  relation (the quadratic baseline).
* :class:`ViewBasedAligner` — Algorithm 2: restrict matching to the α-cost
  neighborhood of an existing view's keywords (lossless pruning).
* :class:`PreferentialAligner` — Algorithm 3: follow a preference prior over
  existing relations, within a budget.
* :class:`SourceRegistrar` — the registration service that wires a new
  source into the catalog, search graph and aligner.
* :class:`AlignmentResult`, :func:`install_associations`,
  :func:`prior_from_weights` — shared plumbing.
"""

from .base import AlignmentResult, BaseAligner, install_associations
from .exhaustive import ExhaustiveAligner
from .preferential import PreferentialAligner, prior_from_weights
from .registration import RegistrationRecord, SourceRegistrar
from .view_based import ViewBasedAligner

__all__ = [
    "AlignmentResult",
    "BaseAligner",
    "ExhaustiveAligner",
    "PreferentialAligner",
    "RegistrationRecord",
    "SourceRegistrar",
    "ViewBasedAligner",
    "install_associations",
    "prior_from_weights",
]
