"""Aligner strategies for incorporating new sources (paper Section 3.3).

Public API
----------
* :class:`ExhaustiveAligner` — match a new source against every existing
  relation (the quadratic baseline).
* :class:`ViewBasedAligner` — Algorithm 2: restrict matching to the α-cost
  neighborhood of an existing view's keywords (lossless pruning).
* :class:`PreferentialAligner` — Algorithm 3: follow a preference prior over
  existing relations, within a budget.
* :class:`ProfileBlockedAligner` — index-driven pruning: only relations the
  profile index's (tiered) candidate generation proposes are matched.
* :class:`SourceRegistrar` — the registration service that wires a new
  source into the catalog, search graph and aligner.
* :class:`AlignmentResult`, :func:`install_associations`,
  :func:`prior_from_weights`, :func:`score_pairs` — shared plumbing
  (including the deterministic parallel scoring pool).
"""

from .base import AlignmentResult, BaseAligner, install_associations
from .exhaustive import ExhaustiveAligner
from .parallel import chunk_evenly, clone_matcher, resolve_workers, score_pairs
from .preferential import PreferentialAligner, prior_from_weights
from .profile_blocked import ProfileBlockedAligner
from .registration import RegistrationRecord, SourceRegistrar
from .view_based import ViewBasedAligner

__all__ = [
    "AlignmentResult",
    "BaseAligner",
    "ExhaustiveAligner",
    "PreferentialAligner",
    "ProfileBlockedAligner",
    "RegistrationRecord",
    "SourceRegistrar",
    "ViewBasedAligner",
    "chunk_evenly",
    "clone_matcher",
    "install_associations",
    "prior_from_weights",
    "resolve_workers",
    "score_pairs",
]
