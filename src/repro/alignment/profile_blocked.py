"""PROFILE-BLOCKED alignment strategy (index-driven candidate selection).

The exhaustive strategy iterates every existing relation; the view-based
and preferential strategies prune by *information need*.  This strategy
prunes by *evidence*: the shared
:class:`~repro.profiling.index.CatalogProfileIndex` already knows which
existing attributes share values with the new source's attributes, so the
base matcher is only invoked on relations the index proposes — the
candidate probe is a handful of posting-list (and, when a sketch tier is
configured, LSH bucket) lookups instead of a catalog scan.

With ``tier="auto"`` candidate generation goes through
:meth:`~repro.profiling.index.CatalogProfileIndex.tiered_candidates` when
the index maintains MinHash/LSH sketches, and through the lossless
posting-list walk otherwise.  The tiered pipeline re-verifies every sketch
survivor against the true distinct-value sets, so at the value-overlap
accept threshold the surviving relation set — and hence the accepted
correspondences — is determined by exact shared-value counts, never by a
sketch estimate.

This is the strategy that keeps registration sub-linear at the 10k+
relation scale benchmarked by ``benchmarks/scale_bench.py``.
"""

from __future__ import annotations

from typing import List, Optional

from ..datastore.database import Catalog, DataSource
from ..exceptions import AlignmentError
from ..graph.search_graph import SearchGraph
from ..matching.base import BaseMatcher
from ..matching.value_overlap import ValueOverlapFilter
from .base import BaseAligner


class ProfileBlockedAligner(BaseAligner):
    """Aligns a new source against the relations its profile evidence points at.

    Parameters
    ----------
    matcher, top_y, value_filter, count_only, profile_index:
        See :class:`~repro.alignment.base.BaseAligner`; ``profile_index``
        is **required** here — it is the candidate source.
    min_shared_values:
        Exact-tier acceptance floor: an existing relation becomes a
        candidate only if some attribute pair shares at least this many
        distinct values.  Mirrors the value-overlap matcher's
        ``min_shared_values`` so the pruning stays lossless for it.
    """

    strategy_name = "profile_blocked"

    def __init__(
        self,
        matcher: BaseMatcher,
        top_y: int = 2,
        value_filter: Optional[ValueOverlapFilter] = None,
        count_only: bool = False,
        profile_index=None,
        min_shared_values: int = 1,
    ) -> None:
        super().__init__(
            matcher,
            top_y=top_y,
            value_filter=value_filter,
            count_only=count_only,
            profile_index=profile_index,
        )
        if profile_index is None:
            raise AlignmentError(
                "profile_blocked registration requires a catalog profile index"
            )
        self.min_shared_values = min_shared_values

    def candidate_relations(
        self, graph: SearchGraph, catalog: Catalog, new_source: DataSource
    ) -> List[str]:
        """Existing relations sharing ≥ ``min_shared_values`` values with the source.

        The new source is profiled before alignment (the registrar admits
        it into every maintained index first), so its posting lists and
        sketches are already queryable.  Candidates are returned in catalog
        order for determinism, exactly like the exhaustive strategy.
        """
        index = self.profile_index
        new_relations = {t.schema.qualified_name for t in new_source.tables()}
        hits = set()
        for relation in new_relations:
            if not index.has_relation(relation):
                continue
            for _, other, _ in index.candidate_pairs(
                relation, min_shared_values=self.min_shared_values, tier="auto"
            ):
                hits.add(other[0])
        candidates: List[str] = []
        for source in catalog:
            for table in source:
                qualified = table.schema.qualified_name
                if qualified in hits and qualified not in new_relations:
                    candidates.append(qualified)
        return candidates
