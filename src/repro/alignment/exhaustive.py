"""EXHAUSTIVE alignment strategy (paper Section 3.3).

Upon registration of a new source, iterate over *all* existing relations and
run the base matcher against each.  Simple, guarantees nothing is missed,
and scales quadratically in the number of attributes — the baseline the
information-need-driven strategies are compared against in Figures 6–8.
"""

from __future__ import annotations

from typing import List

from ..datastore.database import Catalog, DataSource
from ..graph.search_graph import SearchGraph
from .base import BaseAligner


class ExhaustiveAligner(BaseAligner):
    """Aligns a new source against every relation already in the catalog."""

    strategy_name = "exhaustive"

    def candidate_relations(
        self, graph: SearchGraph, catalog: Catalog, new_source: DataSource
    ) -> List[str]:
        """All existing relations, excluding those of the new source itself."""
        new_relations = {t.schema.qualified_name for t in new_source.tables()}
        candidates: List[str] = []
        for source in catalog:
            for table in source:
                qualified = table.schema.qualified_name
                if qualified not in new_relations:
                    candidates.append(qualified)
        return candidates
