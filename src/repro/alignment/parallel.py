"""Deterministic parallel scoring of relation-pair matcher work.

Matcher scores are pure functions of the two relations' profiles (paper
Section 3.2 treats matchers as black boxes over a relation pair), so the
per-pair work of an alignment is embarrassingly parallel.  What is *not*
free is determinism: registration must produce byte-identical accepted
correspondences — and therefore identical association edge ids — whether
it ran on one worker or eight.  This module provides that guarantee by
construction:

* the pair list is split into **contiguous chunks**, one per worker, and
  the chunk results are concatenated **in chunk order** — the flattened
  correspondence stream is exactly the serial loop's stream;
* each worker scores its chunk on its **own matcher clone** with a fresh
  :class:`~repro.matching.base.ComparisonCounter`, so the Figure 7/8
  instrumentation never races; clone counters are summed back into the
  caller's matcher after the join;
* edge installation stays in the caller's thread (aligners install edges
  only after :func:`score_pairs` returns), so graph mutation — and with it
  edge id allocation — remains strictly serial.

``pool="thread"`` (the default) shares the profile index across workers:
candidate maps and tf-idf vectors are epoch-memoized pure values, so a
duplicated first computation is wasted work, never wrong work.
``pool="process"`` sidesteps the GIL for CPU-bound matchers but requires
the matcher and both tables of every pair to pickle; live storage-backend
handles usually don't, so the process path probes picklability first and
falls back to threads instead of failing registration.
"""

from __future__ import annotations

import copy
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Sequence, Tuple

from ..datastore.table import Table
from ..matching.base import BaseMatcher, ComparisonCounter, Correspondence

#: One unit of scoring work: (new relation's table, existing relation's table).
PairTask = Tuple[Table, Table]

POOL_THREAD = "thread"
POOL_PROCESS = "process"
_POOLS = (POOL_THREAD, POOL_PROCESS)


def resolve_workers(workers: object) -> int:
    """Normalize a worker-count knob: ``0``/``None``/``"auto"`` → CPU count."""
    if workers in (None, 0, "auto"):
        return max(os.cpu_count() or 1, 1)
    count = int(workers)  # type: ignore[arg-type]
    if count < 1:
        raise ValueError(f"workers must be >= 1 (or 0/'auto'), got {workers!r}")
    return count


def clone_matcher(matcher: BaseMatcher) -> BaseMatcher:
    """A shallow matcher clone with its own comparison counter.

    Shallow is the point: clones share the (read-mostly) profile index and
    configuration, and differ only in the mutable instrumentation, so
    scoring on a clone is observably identical to scoring on the original.
    """
    clone = copy.copy(matcher)
    clone.counter = ComparisonCounter()
    return clone


def _index_free_parity(matcher: BaseMatcher) -> bool:
    """Whether dropping the profile index cannot change the matcher's scores.

    True for matchers whose index is a pure cache (see
    :attr:`~repro.matching.base.BaseMatcher.index_result_dependent`);
    ensembles qualify only when every member does.
    """
    if getattr(matcher, "index_result_dependent", False):
        return False
    members = getattr(matcher, "matchers", None)
    if members:
        return all(not getattr(m, "index_result_dependent", False) for m in members)
    return True


def detach_profile_index(matcher: BaseMatcher) -> BaseMatcher:
    """Clone ``matcher`` without its profile index (members included).

    The process pool pickles each payload, and a shared profile index can
    dwarf the actual work — at 10k relations it is the whole catalog's
    posting lists, shipped once per chunk.  Workers score from the tables
    instead; only call this when :func:`_index_free_parity` holds.
    """
    clone = clone_matcher(matcher)
    if getattr(clone, "profile_index", None) is not None:
        clone.profile_index = None
    members = getattr(clone, "matchers", None)
    if members:
        detached = []
        for member in members:
            member_clone = copy.copy(member)
            if getattr(member_clone, "profile_index", None) is not None:
                member_clone.profile_index = None
            detached.append(member_clone)
        clone.matchers = detached
    return clone


def chunk_evenly(items: Sequence, parts: int) -> List[List]:
    """Split ``items`` into ≤ ``parts`` contiguous chunks of near-equal size.

    Contiguity is what makes the parallel merge order equal the serial
    iteration order; empty chunks are dropped.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    total = len(items)
    chunks: List[List] = []
    base, extra = divmod(total, parts)
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        if size == 0:
            continue
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


def _score_chunk(
    matcher: BaseMatcher, chunk: Sequence[PairTask]
) -> Tuple[List[List[Correspondence]], int, int]:
    """Score one chunk serially; returns per-pair results + counter deltas."""
    per_pair: List[List[Correspondence]] = []
    for new_table, existing_table in chunk:
        per_pair.append(matcher.match_relations(new_table, existing_table))
    return per_pair, matcher.counter.attribute_comparisons, matcher.counter.relation_pairs


def _score_chunk_star(
    payload: Tuple[BaseMatcher, Sequence[PairTask]]
) -> Tuple[List[List[Correspondence]], int, int]:
    """Top-level adapter so :class:`ProcessPoolExecutor` can pickle the call."""
    return _score_chunk(*payload)


def score_pairs(
    matcher: BaseMatcher,
    pairs: Sequence[PairTask],
    workers: int = 1,
    pool: str = POOL_THREAD,
) -> Tuple[List[Correspondence], int]:
    """Score every relation pair, possibly in parallel, in serial order.

    Returns ``(correspondences, workers_used)`` where the correspondence
    list is byte-identical to running ``matcher.match_relations`` over
    ``pairs`` in order on one thread, and ``workers_used`` is the number of
    pool workers that actually ran (1 for the serial path).

    Parameters
    ----------
    matcher:
        The caller's matcher.  On the serial path it scores directly; on
        the parallel paths it only receives the summed counter deltas.
    workers:
        Target pool size (pre-normalized; see :func:`resolve_workers`).
    pool:
        ``"thread"`` or ``"process"``.  The process pool requires the work
        to pickle and silently degrades to threads when it does not.
    """
    if pool not in _POOLS:
        raise ValueError(f"unknown pool kind {pool!r}; expected one of {_POOLS}")
    tasks = list(pairs)
    if workers <= 1 or len(tasks) < 2:
        flat: List[Correspondence] = []
        for new_table, existing_table in tasks:
            flat.extend(matcher.match_relations(new_table, existing_table))
        return flat, 1
    chunks = chunk_evenly(tasks, workers)
    results: List[Tuple[List[List[Correspondence]], int, int]] = []
    if pool == POOL_PROCESS:
        # Ship index-free clones when that provably cannot change scores:
        # the shared profile index is the whole catalog's posting lists,
        # and pickling it once per chunk would dwarf the scoring work.
        process_clone = (
            detach_profile_index if _index_free_parity(matcher) else clone_matcher
        )
        payloads = [(process_clone(matcher), chunk) for chunk in chunks]
        try:
            # Probe before spawning: live tables/backends often hold
            # unpicklable handles, and a late worker crash would be a far
            # worse failure mode than degrading to threads.
            pickle.dumps(payloads[0])
            with ProcessPoolExecutor(max_workers=len(chunks)) as executor:
                results = list(executor.map(_score_chunk_star, payloads))
        except Exception:
            results = []
    if not results:
        # Thread path (or process-pool fallback): clones share the live
        # profile index, which threads read for free.
        payloads = [(clone_matcher(matcher), chunk) for chunk in chunks]
        with ThreadPoolExecutor(max_workers=len(chunks)) as executor:
            results = list(executor.map(_score_chunk_star, payloads))
    flat = []
    for per_pair, comparisons, relation_pairs in results:
        for pair_result in per_pair:
            flat.extend(pair_result)
        matcher.counter.record_comparisons(comparisons)
        matcher.counter.relation_pairs += relation_pairs
    return flat, len(chunks)
