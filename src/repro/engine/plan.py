"""Query planning: selection pushdown and greedy join ordering.

The seed executor joined atoms strictly in the order they appeared in the
query, filtering each atom's table by re-evaluating raw predicates per row.
The planner turns a :class:`~repro.datastore.query.ConjunctiveQuery` into an
explicit :class:`QueryPlan` instead:

* selections are compiled once (:mod:`repro.engine.predicates`) and pushed
  down into the scan of their atom, where ``equals`` predicates can be
  answered straight from a value index;
* the join order is chosen greedily by estimated cardinality — start from
  the smallest filtered atom, then repeatedly attach the smallest atom
  reachable through a join predicate (falling back to a cross product only
  when the query's join graph is disconnected);
* each step records the equi-join predicates linking it to already-planned
  aliases, which the executor turns into one composite-key hash join backed
  by a cached join index.

Plans are pure descriptions — building one performs no data access beyond
the (cached) scans used for cardinality estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..datastore.query import ConjunctiveQuery, JoinPredicate
from .context import ExecutionContext
from .predicates import CompiledPredicate, compile_predicates


@dataclass(frozen=True)
class PlannedJoin:
    """One equi-join condition of a plan step.

    ``left`` refers to an alias bound by an earlier step; ``right_attribute``
    lives on the step's own alias.
    """

    left_alias: str
    left_attribute: str
    right_attribute: str


@dataclass
class PlanStep:
    """Scan one atom and hash-join it against the partial results so far."""

    alias: str
    relation: str
    predicates: List[CompiledPredicate] = field(default_factory=list)
    joins: List[PlannedJoin] = field(default_factory=list)
    estimated_rows: int = 0

    @property
    def is_cross_product(self) -> bool:
        """Whether this step has no join linking it to earlier steps."""
        return not self.joins

    def join_key_attributes(self) -> Tuple[str, ...]:
        """The step-side attributes of the composite join key, in join order."""
        return tuple(join.right_attribute for join in self.joins)


@dataclass
class QueryPlan:
    """An ordered sequence of scan+join steps for one conjunctive query."""

    query: ConjunctiveQuery
    steps: List[PlanStep]

    def explain(self) -> str:
        """Human-readable plan, one line per step (for tests and debugging)."""
        lines = []
        for i, step in enumerate(self.steps):
            op = "scan" if i == 0 else ("cross" if step.is_cross_product else "hash_join")
            conds = ", ".join(
                f"{j.left_alias}.{j.left_attribute}={step.alias}.{j.right_attribute}"
                for j in step.joins
            )
            sels = ", ".join(f"{p.attribute} {p.mode} {p.value!r}" for p in step.predicates)
            parts = [part for part in (conds, f"select[{sels}]" if sels else "") if part]
            detail = "; ".join(parts)
            lines.append(f"{op} {step.relation} AS {step.alias} (~{step.estimated_rows} rows)"
                         + (f" [{detail}]" if detail else ""))
        return "\n".join(lines)


class QueryPlanner:
    """Compiles conjunctive queries into :class:`QueryPlan` objects."""

    def __init__(self, context: ExecutionContext) -> None:
        self.context = context

    def plan(self, query: ConjunctiveQuery) -> QueryPlan:
        """Choose a join order for ``query`` by greedy cardinality."""
        query.validate()
        compiled = compile_predicates(query.selections)
        predicates_by_alias: Dict[str, List[CompiledPredicate]] = {}
        for predicate in compiled:
            predicates_by_alias.setdefault(predicate.alias, []).append(predicate)

        # Exact filtered cardinalities; scans are cached so this work is
        # reused by the executor.
        cardinality: Dict[str, int] = {}
        relation_of: Dict[str, str] = {}
        for atom in query.atoms:
            relation_of[atom.alias] = atom.relation
            cardinality[atom.alias] = self.context.estimated_cardinality(
                atom.relation, predicates_by_alias.get(atom.alias, ())
            )

        # Self-joins on a single alias are never applied by the executor
        # (the seed executor had the same semantics); drop them here.
        joins = [j for j in query.joins if j.left_alias != j.right_alias]
        atom_order = {atom.alias: i for i, atom in enumerate(query.atoms)}

        remaining: List[str] = [atom.alias for atom in query.atoms]
        bound: Set[str] = set()
        steps: List[PlanStep] = []
        while remaining:
            connected = [
                alias
                for alias in remaining
                if any(
                    (j.left_alias == alias and j.right_alias in bound)
                    or (j.right_alias == alias and j.left_alias in bound)
                    for j in joins
                )
            ]
            pool = connected if connected else remaining
            # Greedy: smallest filtered cardinality first; ties break on the
            # query's original atom order for determinism.
            alias = min(pool, key=lambda a: (cardinality[a], atom_order[a]))
            steps.append(
                PlanStep(
                    alias=alias,
                    relation=relation_of[alias],
                    predicates=predicates_by_alias.get(alias, []),
                    joins=self._joins_for(alias, bound, joins),
                    estimated_rows=cardinality[alias],
                )
            )
            bound.add(alias)
            remaining.remove(alias)
        return QueryPlan(query=query, steps=steps)

    @staticmethod
    def _joins_for(alias: str, bound: Set[str], joins: Sequence[JoinPredicate]) -> List[PlannedJoin]:
        """Every join predicate linking ``alias`` to an already-bound alias.

        Duplicated join predicates are kept (they and-together exactly as in
        the seed executor); orientation is normalized so the bound side is
        on the left.
        """
        planned: List[PlannedJoin] = []
        for join in joins:
            if join.left_alias == alias and join.right_alias in bound:
                planned.append(
                    PlannedJoin(join.right_alias, join.right_attribute, join.left_attribute)
                )
            elif join.right_alias == alias and join.left_alias in bound:
                planned.append(
                    PlannedJoin(join.left_alias, join.left_attribute, join.right_attribute)
                )
        return planned
