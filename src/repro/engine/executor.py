"""Plan execution: indexed hash joins and the ranked disjoint union.

:class:`PlanExecutor` is the operator layer of the engine.  It executes the
:class:`~repro.engine.plan.QueryPlan` produced by the planner with composite
-key hash joins whose build sides come from the shared
:class:`~repro.engine.context.ExecutionContext` (built once, replayed across
the k queries of a view refresh), and combines per-query outputs with the
same ranked disjoint-union semantics as the seed executor.

Parity guarantee
----------------
For any query, :meth:`PlanExecutor.execute` returns exactly the answers the
seed executor returns — same values (and value order within each answer),
same costs, same provenance, and same *list order*: answers are emitted in
ascending base-tuple ``row_id`` order following the query's atom list, which
is precisely the order the seed's left-to-right nested iteration produces.
Join reordering therefore never leaks into observable output.

One carve-out: the 100 000-partial safety valve (active only when a
``limit`` is given *and* an intermediate join explodes past the cap)
truncates in the engine's join order, so in that pathological regime the
surviving subset may differ from the seed's — both are arbitrary
truncations of a cross-product blow-up.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..datastore.database import Catalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.budget import Budget
from ..datastore.provenance import AnswerTuple, TupleProvenance
from ..datastore.query import ConjunctiveQuery
from ..datastore.table import Row
from ..datastore.types import canonicalize
from ..obs.tracing import active_trace
from .context import ExecutionContext
from .plan import PlanStep, QueryPlan, QueryPlanner

#: Same pathological-cross-product valve as the seed executor.
PARTIAL_RESULT_CAP = 100000


def default_column_compatibility(label_a: str, label_b: str) -> bool:
    """Default label compatibility: trailing attribute names match exactly."""
    return label_a.split(".")[-1] == label_b.split(".")[-1]


class PlanExecutor:
    """Executes conjunctive queries through the planner + operator engine."""

    def __init__(self, catalog: Catalog, context: Optional[ExecutionContext] = None) -> None:
        self.catalog = catalog
        self.context = context if context is not None else ExecutionContext(catalog)
        if self.context.catalog is not catalog:
            raise ValueError("execution context is bound to a different catalog")
        self.planner = QueryPlanner(self.context)

    # ------------------------------------------------------------------
    # Single-query execution
    # ------------------------------------------------------------------
    def execute(
        self,
        query: ConjunctiveQuery,
        limit: Optional[int] = None,
        budget: "Optional[Budget]" = None,
    ) -> List[AnswerTuple]:
        """Execute one conjunctive query; answers carry provenance.

        When the catalog's storage backend supports SQL pushdown and every
        relation of the query lives on it, the whole query runs inside the
        backend (same answers, costs, provenance and order — see
        :mod:`repro.storage.pushdown`); otherwise the planned Python join
        engine below executes it, with per-relation scan pushdown still
        applying where the backend offers it.

        With a ``budget``, the plan loop checks it per step and raises
        :class:`~repro.exceptions.DeadlineExceededError` on expiry; a query
        has no meaningful partial result, so callers (the view's streaming
        union) decide whether already-executed *sibling* queries constitute
        a degraded answer set.
        """
        if budget is not None:
            budget.check("executor")
        trace = active_trace()
        pushed = self.context.try_pushdown_query(query, limit)
        if pushed is not None:
            trace.tally("queries_pushdown")
            return pushed
        trace.tally("queries_python")
        plan = self.planner.plan(query)
        partials = self._run_plan(plan, limit, budget=budget)
        if not partials:
            return []
        # Canonical output order: ascending row ids along the query's atom
        # list.  This both makes execution order-independent of the chosen
        # join order and reproduces the seed executor's emission order.
        position = {step.alias: i for i, step in enumerate(plan.steps)}
        atom_positions = [position[atom.alias] for atom in query.atoms]
        partials.sort(key=lambda rows: tuple(rows[i].row_id for i in atom_positions))
        answers = [self._to_answer(query, position, partial) for partial in partials]
        if limit is not None:
            answers = answers[:limit]
        return answers

    def _run_plan(
        self,
        plan: QueryPlan,
        limit: Optional[int],
        budget: "Optional[Budget]" = None,
    ) -> List[Tuple[Row, ...]]:
        """Run the plan's steps; partials are row tuples in step order."""
        context = self.context
        position = {step.alias: i for i, step in enumerate(plan.steps)}
        partials: List[Tuple[Row, ...]] = [()]
        for step in plan.steps:
            if budget is not None:
                budget.check("executor")
            if not partials:
                return []
            if step.is_cross_product:
                rows = context.scan(step.relation, step.predicates)
                partials = [partial + (row,) for partial in partials for row in rows]
            else:
                partials = self._hash_join(step, position, partials)
            if limit is not None and len(partials) > PARTIAL_RESULT_CAP:
                partials = partials[:PARTIAL_RESULT_CAP]
        return partials

    def _hash_join(
        self,
        step: PlanStep,
        position: Dict[str, int],
        partials: List[Tuple[Row, ...]],
    ) -> List[Tuple[Row, ...]]:
        index = self.context.join_index(
            step.relation, step.predicates, step.join_key_attributes()
        )
        probe_slots = [(position[j.left_alias], j.left_attribute) for j in step.joins]
        result: List[Tuple[Row, ...]] = []
        for partial in partials:
            key_parts = []
            valid = True
            for slot, attribute in probe_slots:
                canon = canonicalize(partial[slot][attribute])
                if canon is None:
                    valid = False
                    break
                key_parts.append(canon)
            if not valid:
                continue
            for row in index.get(tuple(key_parts), ()):
                result.append(partial + (row,))
        return result

    def _to_answer(
        self, query: ConjunctiveQuery, position: Dict[str, int], partial: Tuple[Row, ...]
    ) -> AnswerTuple:
        outputs = query.outputs
        if not outputs:
            values: Dict[str, Optional[object]] = {}
            for atom in query.atoms:
                row = partial[position[atom.alias]]
                for attr, value in zip(row.schema.attribute_names, row.values):
                    values[f"{atom.alias}.{attr}"] = value
        else:
            values = {}
            for column in outputs:
                row = partial[position[column.alias]]
                values[column.label] = row[column.attribute]
        base_tuples = frozenset(
            (atom.relation, partial[position[atom.alias]].row_id) for atom in query.atoms
        )
        provenance = TupleProvenance(
            query_id=query.provenance or "query",
            query_cost=query.cost,
            base_tuples=base_tuples,
        )
        return AnswerTuple(values=values, cost=query.cost, provenance=provenance)

    # ------------------------------------------------------------------
    # Ranked disjoint union
    # ------------------------------------------------------------------
    def execute_union(
        self,
        queries: Sequence[ConjunctiveQuery],
        compatible: Optional[Callable[[str, str], bool]] = None,
        limit: Optional[int] = None,
    ) -> List[AnswerTuple]:
        """Execute and union several queries (seed ``execute_union`` semantics)."""
        pairs = [(query, self.execute(query)) for query in sorted(queries, key=lambda q: q.cost)]
        return ranked_union(pairs, compatible=compatible, limit=limit)


def union_column_plan(
    queries: Sequence[ConjunctiveQuery],
    compatible: Optional[Callable[[str, str], bool]] = None,
) -> Tuple[List[str], List[Dict[str, str]]]:
    """The unified schema of a ranked union, computable *before* execution.

    ``queries`` must be in the union's ranked (ascending-cost) order.
    Returns ``(unified_columns, mappings)`` where ``mappings[i]`` remaps the
    ``i``-th query's output labels onto the unified columns.  Only the
    queries' output labels are consulted, so streaming consumers (the lazy
    :meth:`~repro.core.view.RankedView.stream_answers` path) can pad every
    answer with the full column set without executing later queries first.
    """
    if compatible is None:
        compatible = default_column_compatibility
    unified_columns: List[str] = []
    mappings = [_align_columns(query, unified_columns, compatible) for query in queries]
    return unified_columns, mappings


def project_answer(
    answer: AnswerTuple,
    query: ConjunctiveQuery,
    column_mapping: Dict[str, str],
    unified_columns: Sequence[str],
) -> AnswerTuple:
    """One answer remapped onto the unified schema, padded and re-priced.

    The single implementation of the union's per-answer projection, shared
    by :func:`ranked_union` and the streaming read path
    (:meth:`~repro.core.view.RankedView.stream_answers`) — their answer
    parity depends on the remap / pad / re-price semantics staying
    identical.  The input answer is never mutated.
    """
    values: Dict[str, Optional[object]] = {}
    for label, value in answer.values.items():
        values[column_mapping.get(label, label)] = value
    for column in unified_columns:
        values.setdefault(column, None)
    provenance = answer.provenance
    if provenance is not None and provenance.query_cost != query.cost:
        provenance = replace(provenance, query_cost=query.cost)
    return AnswerTuple(values=values, cost=query.cost, provenance=provenance)


def ranked_union(
    pairs: Sequence[Tuple[ConjunctiveQuery, Sequence[AnswerTuple]]],
    compatible: Optional[Callable[[str, str], bool]] = None,
    limit: Optional[int] = None,
) -> List[AnswerTuple]:
    """Align per-query answers onto a unified schema and rank by cost.

    Takes pre-executed ``(query, answers)`` pairs so callers holding cached
    answers (the incremental view refresh) can re-union without re-executing.
    Input answers are never mutated — fresh :class:`AnswerTuple` objects are
    returned, priced at the query's *current* cost (a cached answer may have
    been executed under an older tree cost; feedback moves costs without
    changing which tuples join, so only the price is re-stamped).

    Ranking is a k-way merge, not a sort: ``ordered`` ascends by query cost
    and :func:`project_answer` prices every answer of a query at exactly
    that query's cost, so each per-query block is a cost-homogeneous sorted
    run and the ascending-cost concatenation of the blocks *is* the merge
    of the k runs — the global ``sort`` this replaced re-derived the same
    order in O(n log n).  Tie order is identical to the former stable
    sort's: equal-cost answers keep query order (stable ``sorted`` over the
    pairs), then per-query emission order.
    """
    ordered = sorted(pairs, key=lambda pair: pair[0].cost)
    unified_columns, mappings = union_column_plan([q for q, _ in ordered], compatible)
    all_answers = [
        project_answer(answer, query, column_mapping, unified_columns)
        for (query, answers), column_mapping in zip(ordered, mappings)
        for answer in answers
    ]
    if limit is not None:
        all_answers = all_answers[:limit]
    return all_answers


def _align_columns(
    query: ConjunctiveQuery,
    unified_columns: List[str],
    compatible: Callable[[str, str], bool],
) -> Dict[str, str]:
    """Label remapping of ``query`` onto the unified schema (seed semantics).

    Mutates ``unified_columns`` in place, appending new columns as needed.
    """
    mapping: Dict[str, str] = {}
    labels = query.output_labels() or ()
    used_unified: Set[str] = set()
    for label in labels:
        target: Optional[str] = None
        if label in unified_columns and label not in used_unified:
            target = label
        else:
            for candidate in unified_columns:
                if candidate in used_unified:
                    continue
                if compatible(label, candidate):
                    target = candidate
                    break
        if target is None:
            unified_columns.append(label)
            target = label
        used_unified.add(target)
        mapping[label] = target
    return mapping
