"""Precompiled selection predicates.

The seed executor's ``_selection_matches`` re-canonicalized and re-tokenized
the predicate *needle* for every row it looked at.  The engine compiles each
:class:`~repro.datastore.query.SelectionPredicate` once per query into a
:class:`CompiledPredicate` that precomputes everything derivable from the
needle alone — the canonical value (``equals`` mode), the lowered substring
(``contains`` mode) and the needle token set (``keyword`` mode) — so that
per-row evaluation touches only the row's cell value.

Compiled predicates are value objects: their :attr:`CompiledPredicate.key`
identifies the predicate independently of the alias it is attached to, which
is what the :class:`~repro.engine.context.ExecutionContext` scan cache keys
on (two queries selecting the same relation with the same predicate share
one cached scan even if their aliases differ).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..datastore.query import SelectionPredicate
from ..datastore.types import canonicalize
from ..similarity.tokenize import tokenize


class CompiledPredicate:
    """One selection predicate with its needle-side work done up front."""

    __slots__ = (
        "alias",
        "attribute",
        "mode",
        "value",
        "canonical_value",
        "needle_lower",
        "needle_tokens",
    )

    def __init__(self, predicate: SelectionPredicate) -> None:
        self.alias = predicate.alias
        self.attribute = predicate.attribute
        self.mode = predicate.mode
        self.value = predicate.value
        self.canonical_value: Optional[str] = None
        self.needle_lower: str = ""
        self.needle_tokens: FrozenSet[str] = frozenset()
        if predicate.mode == "equals":
            self.canonical_value = canonicalize(predicate.value)
        elif predicate.mode == "contains":
            self.needle_lower = str(predicate.value).lower()
        else:  # keyword
            self.needle_tokens = frozenset(tokenize(predicate.value))

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def matches(self, value: object) -> bool:
        """Evaluate the predicate against one cell value.

        Semantics are identical to the seed executor's
        ``_selection_matches``: null-like cells never match, ``equals``
        compares canonical forms, ``contains`` is a case-insensitive
        substring test, ``keyword`` requires every needle token to appear in
        the cell's token set (an empty needle never matches).
        """
        canon = canonicalize(value)
        if canon is None:
            return False
        if self.mode == "equals":
            return canon == self.canonical_value
        if self.mode == "contains":
            return self.needle_lower in canon.lower()
        if not self.needle_tokens:
            return False
        value_tokens = set(tokenize(canon))
        return self.needle_tokens <= value_tokens

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def key(self) -> Tuple[str, str, object]:
        """Alias-independent identity used by scan / join-index caches.

        Built from the *precompiled* needle — the only state
        :meth:`matches` consults per mode — so two predicates share a key
        exactly when they accept the same rows.  (Keying on the raw value
        would collide e.g. ``1.0`` and ``"1.0"`` in equals mode, whose
        canonical forms differ.)
        """
        if self.mode == "equals":
            return (self.attribute, self.mode, self.canonical_value)
        if self.mode == "contains":
            return (self.attribute, self.mode, self.needle_lower)
        return (self.attribute, self.mode, tuple(sorted(self.needle_tokens)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledPredicate({self.alias}.{self.attribute} {self.mode} {self.value!r})"


def compile_predicates(predicates: Sequence[SelectionPredicate]) -> List[CompiledPredicate]:
    """Compile a query's selection predicates, preserving order."""
    return [CompiledPredicate(p) for p in predicates]
