"""Shared execution state: cached scans, join indexes and statistics.

An :class:`ExecutionContext` is the engine's memory between queries.  The k
conjunctive queries of one view refresh (and, when the context is shared by
the :class:`~repro.core.qsystem.QSystem`, all views over one catalog) hit the
same relations with the same selections and join attributes over and over;
the context builds each filtered scan and each per-attribute hash join index
**once** and replays it from cache afterwards.

Staleness is handled structurally rather than by callbacks: cached artifacts
are grouped per relation and tagged with the owning
:class:`~repro.datastore.table.Table`'s ``version`` counter; when a table
mutates, its next access discards that relation's stale group wholesale and
rebuilds (so mutations neither return stale rows nor strand dead entries).
The explicit :meth:`ExecutionContext.invalidate` hook exists for
*structural* events — source registration, graph rebuilds — where callers
want to drop the whole working set at once (and is what the
:class:`~repro.alignment.registration.SourceRegistrar` listener installed by
the Q system calls).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..datastore.database import Catalog
from ..datastore.table import Row, Table
from ..datastore.types import canonicalize
from ..graph.search_graph import SearchGraph
from ..steiner.network import SteinerNetwork
from .predicates import CompiledPredicate

#: Identity of a filtered scan within one relation: sorted predicate keys.
PredicatesKey = Tuple[object, ...]


def window_pushdown_enabled() -> bool:
    """Whether the ``REPRO_WINDOW_PUSHDOWN`` switch permits the windowed path.

    ``off`` / ``0`` / ``false`` / ``no`` disable the windowed ranked-union
    pushdown (reads fall back to the Python :func:`ranked_union` even on a
    window-capable backend); anything else — including unset — enables it.
    The CI backend matrix runs a disabled leg so the fallback path stays
    exercised.
    """
    flag = os.environ.get("REPRO_WINDOW_PUSHDOWN", "").strip().lower()
    return flag not in ("off", "0", "false", "no")


@dataclass
class ContextStatistics:
    """Operational counters, mostly for tests and benchmarks."""

    scans: int = 0
    scan_cache_hits: int = 0
    index_scans: int = 0
    join_indexes_built: int = 0
    join_index_cache_hits: int = 0
    invalidations: int = 0
    #: Filtered scans answered natively by the storage backend (SQL).
    pushdown_scans: int = 0
    #: Whole conjunctive queries answered natively by the storage backend.
    pushdown_queries: int = 0
    #: Whole ranked unions answered by one windowed backend SELECT (each is
    #: a single round trip covering every branch query of a view read).
    pushdown_union_queries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "scans": self.scans,
            "scan_cache_hits": self.scan_cache_hits,
            "index_scans": self.index_scans,
            "join_indexes_built": self.join_indexes_built,
            "join_index_cache_hits": self.join_index_cache_hits,
            "invalidations": self.invalidations,
            "pushdown_scans": self.pushdown_scans,
            "pushdown_queries": self.pushdown_queries,
            "pushdown_union_queries": self.pushdown_union_queries,
        }


class SteinerNetworkCache:
    """Per-graph cache of :class:`~repro.steiner.network.SteinerNetwork` snapshots.

    A snapshot reflects a graph's structure and edge costs at build time, so
    it is valid exactly while ``(weights.version, structure_version)`` is
    unchanged — the same staleness key the lazy view layer uses.  The cache
    holds at most one snapshot per graph, LRU-bounded to ``maxsize`` graphs.
    (A weak-keyed mapping would not work here: the snapshot itself holds a
    strong reference to its graph, so entries could never be collected —
    the explicit bound is what keeps a long-lived session from pinning one
    graph + snapshot per view ever created.)  It lets
    :class:`~repro.steiner.topk.KBestSteiner` and
    :meth:`~repro.core.view.RankedView.refresh` stop rebuilding the network
    on every solve when nothing moved.
    """

    def __init__(self, maxsize: int = 16) -> None:
        self.maxsize = maxsize
        # id(graph) -> (graph, (weights version, structure version), network).
        # The graph object is stored in the entry and compared by identity,
        # so a recycled id() can never alias a dead graph's snapshot.
        self._entries: "OrderedDict[int, Tuple[SearchGraph, Tuple[int, int], SteinerNetwork]]" = (
            OrderedDict()
        )
        # The LRU bookkeeping (move_to_end + popitem) is not safe under the
        # GIL alone; the serving layer shares one cache across its whole
        # read pool, so all lookups serialize on this lock.  Network builds
        # happen inside the critical section too: duplicate concurrent
        # builds of the same (graph, versions) snapshot would waste far more
        # time than the brief exclusion costs.
        self._lock = threading.Lock()
        self.hits = 0
        self.builds = 0
        #: Networks derived from a cached donor's topology instead of built
        #: from scratch (the per-tenant overlay fast path).
        self.rescores = 0

    def network(self, graph: SearchGraph) -> SteinerNetwork:
        """The cached snapshot of ``graph``, rebuilt iff its versions moved."""
        versions = (graph.weights.version, graph.structure_version)
        key = id(graph)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is graph and entry[1] == versions:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[2]
            network = self._rescore_from_donor(graph)
            if network is None:
                network = SteinerNetwork(graph)
                self.builds += 1
            else:
                self.rescores += 1
            self._entries[key] = (graph, versions, network)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            return network

    def _rescore_from_donor(self, graph: SearchGraph) -> Optional[SteinerNetwork]:
        """A snapshot derived from a topology twin already in the cache.

        Applies to graphs priced under an
        :class:`~repro.learning.overlays.OverlayWeightVector` (duck-typed
        via its ``base`` / ``shadow_dict`` surface): when the cache holds a
        current network for a structural twin priced under the overlay's
        *base* vector, the tenant network shares that donor's topology and
        re-prices only the overlay's shadowed features, instead of
        re-indexing every node and re-deriving every edge cost.  Twinhood is
        verified by edge-object identity — the exact sharing
        :func:`~repro.learning.overlays.graph_with_weights` guarantees — so
        a false positive is impossible, merely a missed fast path.
        """
        weights = graph.weights
        base = getattr(weights, "base", None)
        shadow_of = getattr(weights, "shadow_dict", None)
        if base is None or shadow_of is None:
            return None
        target = (base.version, graph.structure_version)
        edges = graph.edges()
        for donor_graph, donor_versions, donor_network in self._entries.values():
            if donor_graph.weights is not base or donor_versions != target:
                continue
            donor_edges = donor_graph.edges()
            if len(donor_edges) != len(edges):
                continue
            if any(a is not b for a, b in zip(edges, donor_edges)):
                continue
            return donor_network.rescored(
                graph, changed_features=frozenset(shadow_of())
            )
        return None

    def __len__(self) -> int:
        return len(self._entries)


class _RelationCaches:
    """Everything cached for one relation at one table (object + version)."""

    __slots__ = ("table", "version", "scans", "join_indexes", "attribute_indexes")

    def __init__(self, table: Table) -> None:
        # Both the identity and the version are part of validity: a source
        # re-registered under the same name yields a *different* Table whose
        # version counter may coincide with the old one's.
        self.table = table
        self.version = table.version
        self.scans: Dict[PredicatesKey, List[Row]] = {}
        self.join_indexes: Dict[Tuple[PredicatesKey, Tuple[str, ...]], Dict[Tuple, List[Row]]] = {}
        self.attribute_indexes: Dict[str, Dict[str, List[int]]] = {}


class ExecutionContext:
    """Caches shared across the queries executed against one catalog.

    Selection pushdown: ``equals``-mode predicates are answered from
    per-attribute inverted value indexes (value → row ids) built lazily per
    relation — the engine-local analogue of the system-wide
    :class:`~repro.datastore.indexes.ValueIndex`, rebuilt automatically when
    the table's data version moves so it can never serve stale rows.
    """

    def __init__(
        self,
        catalog: Catalog,
        statistics: Optional[ContextStatistics] = None,
        steiner_cache: Optional[SteinerNetworkCache] = None,
    ) -> None:
        self.catalog = catalog
        #: ``statistics`` / ``steiner_cache`` may be handed in to share one
        #: counter sheet (and one network cache) across several contexts —
        #: the serving layer's snapshot contexts accumulate into the live
        #: session's, so the metrics registry sees every lane's pushdowns.
        self.statistics = statistics if statistics is not None else ContextStatistics()
        #: Generation counter; bumped by :meth:`invalidate` so borrowers
        #: (e.g. a view's per-signature answer cache) can cheaply detect
        #: that a structural invalidation happened.
        self.generation = 0
        self._relations: Dict[str, _RelationCaches] = {}
        #: Shared Steiner-network snapshot cache (version-keyed, so it needs
        #: no explicit invalidation — see :class:`SteinerNetworkCache`).
        self.steiner_cache = (
            steiner_cache if steiner_cache is not None else SteinerNetworkCache()
        )
        #: Whole-query SQL pushdown handle, present iff the catalog's
        #: storage backend supports it (see :mod:`repro.storage.pushdown`).
        self.pushdown = None
        #: Windowed ranked-union pushdown handle, present iff the backend
        #: additionally supports window functions and the
        #: ``REPRO_WINDOW_PUSHDOWN`` switch is not off
        #: (see :mod:`repro.storage.windowed`).
        self.window_pushdown = None
        #: Why the windowed path is unavailable on this context (``None``
        #: when :attr:`window_pushdown` is set).  Recorded once at
        #: construction so the explain layer reports the *actual* decision,
        #: not a reconstruction.
        self.window_unavailable_reason: Optional[str] = None
        backend = getattr(catalog, "backend", None)
        if backend is not None and backend.supports_sql_pushdown:
            from ..storage.pushdown import SqlPushdown

            self.pushdown = SqlPushdown(backend)
            if not getattr(backend, "supports_window_pushdown", False):
                self.window_unavailable_reason = (
                    "backend does not support window functions"
                )
            elif not window_pushdown_enabled():
                self.window_unavailable_reason = (
                    "window pushdown disabled via REPRO_WINDOW_PUSHDOWN"
                )
            else:
                from ..storage.windowed import WindowedUnionPushdown

                self.window_pushdown = WindowedUnionPushdown(backend)
        else:
            self.window_unavailable_reason = (
                "backend has no SQL pushdown (Python join engine)"
            )

    # ------------------------------------------------------------------
    # SQL pushdown
    # ------------------------------------------------------------------
    def try_pushdown_query(self, query, limit: Optional[int]):
        """Answers of a whole conjunctive query from the backend, or ``None``.

        Returns a fully built answer list when every relation of the query
        lives on the catalog's pushdown-capable backend (and no ``limit``
        is in play — see :meth:`SqlPushdown.can_execute`); the caller falls
        back to the Python join engine otherwise.
        """
        if self.pushdown is None or not self.pushdown.can_execute(
            self.catalog, query, limit
        ):
            return None
        answers = self.pushdown.execute(self.catalog, query)
        self.statistics.pushdown_queries += 1
        return answers

    def union_fallback_reason(self, queries) -> Optional[str]:
        """Why a windowed union over ``queries`` would fall back, or ``None``.

        The explain layer's decision probe: a context-level unavailability
        (no backend pushdown, no window functions, the
        ``REPRO_WINDOW_PUSHDOWN`` gate) or a batch-level ineligibility from
        :meth:`~repro.storage.windowed.WindowedUnionPushdown.ineligibility`.
        ``None`` means a windowed round trip would run.
        """
        if self.window_pushdown is None:
            return self.window_unavailable_reason or "window pushdown unavailable"
        return self.window_pushdown.ineligibility(self.catalog, queries)

    def try_pushdown_union_raw(self, queries):
        """Raw per-query answers of a whole union batch, or ``None``.

        One windowed backend round trip covering every query; ``result[i]``
        is byte-identical to executing ``queries[i]`` alone.  The ranked
        view uses this to prime its per-signature answer cache on a cold
        refresh.  Returns ``None`` (caller falls back to per-query
        execution) when the windowed pushdown is unavailable or ineligible.
        """
        if self.window_pushdown is None or not self.window_pushdown.can_execute(
            self.catalog, queries
        ):
            return None
        results = self.window_pushdown.fetch_raw(self.catalog, queries)
        self.statistics.pushdown_union_queries += 1
        return results

    def try_pushdown_union_ranked(
        self, queries, unified_columns, mappings, limit=None, offset: int = 0
    ):
        """One ranked, paginated union page from the backend, or ``None``.

        ``queries``/``mappings`` must be in ascending-cost union order (from
        :func:`~repro.engine.executor.union_column_plan`).  The returned
        page is byte-identical to the corresponding slice of the Python
        :func:`~repro.engine.executor.ranked_union`.
        """
        if self.window_pushdown is None or not self.window_pushdown.can_execute(
            self.catalog, queries
        ):
            return None
        answers = self.window_pushdown.execute_ranked(
            self.catalog, queries, unified_columns, mappings, limit=limit, offset=offset
        )
        self.statistics.pushdown_union_queries += 1
        return answers

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every cached scan and join index and bump the generation.

        Wired to structural events: new-source registration and query-graph
        rebuilds.  Plain table mutations do *not* need this — each
        relation's cache group is tagged with the table version and is
        replaced wholesale on the first access after a mutation.
        """
        self._relations.clear()
        self.generation += 1
        self.statistics.invalidations += 1

    def _relation_caches(self, relation: str, table: Table) -> _RelationCaches:
        caches = self._relations.get(relation)
        if caches is None or caches.table is not table or caches.version != table.version:
            caches = _RelationCaches(table)
            self._relations[relation] = caches
        return caches

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    @staticmethod
    def _predicates_key(predicates: Sequence[CompiledPredicate]) -> PredicatesKey:
        return tuple(sorted(p.key for p in predicates))

    def scan(self, relation: str, predicates: Sequence[CompiledPredicate]) -> List[Row]:
        """Rows of ``relation`` passing all ``predicates`` (cached).

        The returned list is owned by the cache — callers must not mutate it.
        """
        table = self.catalog.relation(relation)
        caches = self._relation_caches(relation, table)
        key = self._predicates_key(predicates)
        cached = caches.scans.get(key)
        if cached is not None:
            self.statistics.scan_cache_hits += 1
            return cached
        rows = self._execute_scan(caches, table, predicates)
        caches.scans[key] = rows
        return rows

    def _execute_scan(
        self, caches: _RelationCaches, table: Table, predicates: Sequence[CompiledPredicate]
    ) -> List[Row]:
        if not predicates:
            self.statistics.scans += 1
            return list(table.scan())
        # Backend pushdown: a SQL-capable backend evaluates the selections
        # natively (same semantics — the backend runs the library's own
        # matcher, see repro.storage.sqlite).
        pushed = self._backend_scan_where(table, predicates)
        if pushed is not None:
            self.statistics.pushdown_scans += 1
            return pushed
        # Selection pushdown: seed the scan from a value index when an
        # equals-mode predicate can enumerate candidate rows directly.
        seed_rows = self._index_seed_rows(caches, table, predicates)
        if seed_rows is not None:
            self.statistics.index_scans += 1
            candidates = seed_rows
        else:
            self.statistics.scans += 1
            candidates = table.scan()
        return [
            row
            for row in candidates
            if all(p.matches(row[p.attribute]) for p in predicates)
        ]

    @staticmethod
    def _backend_scan_where(
        table: Table, predicates: Sequence[CompiledPredicate]
    ) -> Optional[List[Row]]:
        backend = table.storage_backend
        if not backend.supports_sql_pushdown:
            return None
        return backend.scan_where(
            table.storage_key, [(p.attribute, p.mode, p.value) for p in predicates]
        )

    def _index_seed_rows(
        self, caches: _RelationCaches, table: Table, predicates: Sequence[CompiledPredicate]
    ) -> Optional[Sequence[Row]]:
        """Candidate rows from an index lookup, or ``None`` for a full scan."""
        best: Optional[List[int]] = None
        for predicate in predicates:
            if predicate.mode != "equals" or predicate.canonical_value is None:
                continue
            index = self._attribute_index(caches, table, predicate.attribute)
            row_ids = index.get(predicate.canonical_value, [])
            if best is None or len(row_ids) < len(best):
                best = row_ids
        if best is None:
            return None
        rows = table.scan()
        return [rows[row_id] for row_id in best]

    def _attribute_index(
        self, caches: _RelationCaches, table: Table, attribute: str
    ) -> Dict[str, List[int]]:
        cached = caches.attribute_indexes.get(attribute)
        if cached is not None:
            return cached
        index: Dict[str, List[int]] = {}
        attr_idx = table.schema.attribute_index(attribute)
        for row in table.scan():
            canon = canonicalize(row.values[attr_idx])
            if canon is None:
                continue
            index.setdefault(canon, []).append(row.row_id)
        caches.attribute_indexes[attribute] = index
        return index

    # ------------------------------------------------------------------
    # Cardinality estimation (used by the planner's greedy join ordering)
    # ------------------------------------------------------------------
    def estimated_cardinality(self, relation: str, predicates: Sequence[CompiledPredicate]) -> int:
        """Exact filtered cardinality of a scan.

        Every atom of a conjunctive query must be scanned during execution
        anyway and scans are cached, so the planner "estimates" by
        materializing the scan — exact numbers at no extra cost.
        """
        return len(self.scan(relation, predicates))

    # ------------------------------------------------------------------
    # Join indexes
    # ------------------------------------------------------------------
    def join_index(
        self,
        relation: str,
        predicates: Sequence[CompiledPredicate],
        key_attributes: Tuple[str, ...],
    ) -> Dict[Tuple, List[Row]]:
        """Hash index of the filtered scan keyed on canonicalized attributes.

        Rows with a null canonical value in any key attribute are omitted
        (null never joins), matching the seed executor's hash-join build.
        The returned dict is owned by the cache — callers must not mutate it.
        """
        table = self.catalog.relation(relation)
        caches = self._relation_caches(relation, table)
        cache_key = (self._predicates_key(predicates), key_attributes)
        cached = caches.join_indexes.get(cache_key)
        if cached is not None:
            self.statistics.join_index_cache_hits += 1
            return cached
        hashed: Dict[Tuple, List[Row]] = {}
        for row in self.scan(relation, predicates):
            key = tuple(canonicalize(row[attr]) for attr in key_attributes)
            if any(part is None for part in key):
                continue
            hashed.setdefault(key, []).append(row)
        caches.join_indexes[cache_key] = hashed
        self.statistics.join_indexes_built += 1
        return hashed
