"""Planned, indexed query execution engine.

This package replaces the seed executor's ad-hoc left-to-right nested joins
with an explicit compile/plan/execute pipeline:

* :mod:`repro.engine.predicates` — selection predicates compiled once per
  query (canonical value, lowered needle, token set precomputed);
* :mod:`repro.engine.plan` — :class:`QueryPlanner` chooses a join order
  greedily by filtered cardinality, with selections pushed into the scans;
* :mod:`repro.engine.context` — :class:`ExecutionContext` caches filtered
  scans and per-attribute hash join indexes across queries, keyed on table
  data versions so mutations invalidate naturally;
* :mod:`repro.engine.executor` — :class:`PlanExecutor` runs plans with
  composite-key hash joins and reproduces the seed executor's output
  exactly (values, costs, provenance and order); :func:`ranked_union`
  aligns pre-executed per-query answers, which is what lets the incremental
  view refresh reuse cached results.

:class:`~repro.datastore.executor.QueryExecutor` remains the stable facade:
it delegates here by default and keeps the seed implementation available as
a reference for parity testing.
"""

from .context import ContextStatistics, ExecutionContext
from .executor import (
    PlanExecutor,
    default_column_compatibility,
    project_answer,
    ranked_union,
    union_column_plan,
)
from .plan import PlannedJoin, PlanStep, QueryPlan, QueryPlanner
from .predicates import CompiledPredicate, compile_predicates

__all__ = [
    "CompiledPredicate",
    "ContextStatistics",
    "ExecutionContext",
    "PlanExecutor",
    "PlanStep",
    "PlannedJoin",
    "QueryPlan",
    "QueryPlanner",
    "compile_predicates",
    "default_column_compatibility",
    "project_answer",
    "ranked_union",
    "union_column_plan",
]
