"""Datasets used by the experiments: InterPro–GO-like, GBCO-like, synthetic growth.

Public API
----------
* :func:`build_interpro_go`, :data:`GOLD_EDGES`,
  :data:`DEFAULT_KEYWORD_QUERIES` — the 8-relation / 28-attribute dataset
  with the Figure 9 gold standard (Section 5.2 experiments).
* :func:`build_gbco`, :data:`GBCO_RELATIONS`, :data:`QUERY_LOG`,
  :class:`QueryLogEntry` — the 18-relation / 187-attribute dataset and its
  query-log trials (Section 5.1 experiments).
* :func:`grow_catalog_and_graph`, :func:`make_two_attribute_source` — the
  synthetic graph-growth construction of Figure 8.
"""

from .gbco import (
    GBCO_RELATIONS,
    GbcoDataset,
    QUERY_LOG,
    QueryLogEntry,
    build_gbco,
    total_attribute_count,
)
from .interpro_go import (
    DEFAULT_KEYWORD_QUERIES,
    GOLD_EDGES,
    InterproGoDataset,
    build_interpro_go,
)
from .synthetic import (
    GrowthResult,
    average_learnable_edge_cost,
    grow_catalog_and_graph,
    make_two_attribute_source,
)

__all__ = [
    "DEFAULT_KEYWORD_QUERIES",
    "GBCO_RELATIONS",
    "GOLD_EDGES",
    "GbcoDataset",
    "GrowthResult",
    "InterproGoDataset",
    "QUERY_LOG",
    "QueryLogEntry",
    "average_learnable_edge_cost",
    "build_gbco",
    "build_interpro_go",
    "grow_catalog_and_graph",
    "make_two_attribute_source",
    "total_attribute_count",
]
