"""Synthetic search-graph growth (paper Section 5.1.2, Figure 8).

"Since it is difficult to find large numbers of interlinked tables in the
wild, for this experiment we generated additional synthetic relations and
associations ... we randomly generated new sources with two attributes, and
then connected them to two random nodes in the search graph.  We set the
edge costs to the average cost in the calibrated original graph."

:func:`grow_catalog_and_graph` reproduces that construction: it starts from
an existing catalog + search graph (the GBCO-like one in the benchmarks) and
keeps adding random two-attribute sources, wiring each to two randomly
chosen existing attribute nodes with association edges whose cost equals the
average cost of the calibrated graph's learnable edges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..datastore.database import Catalog, DataSource
from ..datastore.schema import RelationSchema, SourceSchema
from ..graph.features import edge_feature
from ..graph.nodes import NodeKind
from ..graph.search_graph import SearchGraph


@dataclass
class GrowthResult:
    """Outcome of growing the catalog/graph to a target size."""

    added_sources: List[str]
    target_source_count: int
    average_edge_cost: float


def _alpha(n: int, width: int = 4) -> str:
    """Base-26 letters-only encoding of ``n`` (zero-padded to ``width``).

    Letters-only matters: the similarity tokenizer splits on digit
    boundaries, so a value like ``pool003`` would shatter into high-frequency
    tokens shared across every pool.  An all-letter value stays one token,
    which keeps synthetic value overlap — and hence MinHash sketch overlap —
    exactly where the generator put it.
    """
    chars = []
    for _ in range(width):
        chars.append(chr(ord("a") + n % 26))
        n //= 26
    return "".join(reversed(chars))


def community_value_pool(community: int, pool_size: int = 24) -> List[str]:
    """The shared value pool of one community of synthetic sources.

    Values are letters-only and community-prefixed, so two sources overlap
    exactly when they belong to the same community — the knob that gives
    10k-relation synthetic catalogs realistic *joinability structure*
    (dense overlap inside a community, none across) instead of the legacy
    all-unique values that nothing can align on.
    """
    tag = _alpha(community)
    return [f"{tag}{_alpha(j, width=3)}" for j in range(pool_size)]


def make_community_source(
    name: str,
    community: int,
    seed: int = 0,
    pool_size: int = 24,
    values_per_source: int = 20,
) -> DataSource:
    """A two-attribute synthetic source drawing ``attr_1`` from a community pool.

    ``attr_1`` holds ``values_per_source`` distinct values sampled from the
    community's pool — any two same-community sources therefore share at
    least ``2 * values_per_source - pool_size`` values (16 with the
    defaults, a Jaccard floor of ~0.67, comfortably above the sketch tier's
    collision threshold).  ``attr_2`` holds globally unique single-token
    values (seed-prefixed, letters-only — a shared suffix or the digit-bearing
    source name would tokenize into high-overlap fragments and defeat the
    sketch), so it can never join and only inflates the exhaustive comparison
    count — exactly the attribute a blocking tier should prune.
    """
    rng = random.Random(seed)
    pool = community_value_pool(community, pool_size)
    values = sorted(rng.sample(pool, min(values_per_source, pool_size)))
    schema = SourceSchema(name, description="synthetic community source")
    schema.add_relation(RelationSchema(name, ["attr_1", "attr_2"]))
    source = DataSource(schema)
    table = source.table(name)
    unique_tag = _alpha(seed, width=5)
    for row, value in enumerate(values):
        table.append(
            {"attr_1": value, "attr_2": f"{unique_tag}{_alpha(row, width=3)}"}
        )
    return source


def average_learnable_edge_cost(graph: SearchGraph, default: float = 1.0) -> float:
    """Average cost of the graph's learnable edges (``default`` if there are none)."""
    costs = [graph.edge_cost(edge) for edge in graph.learnable_edges()]
    if not costs:
        return default
    return sum(costs) / len(costs)


def grow_catalog_and_graph(
    catalog: Catalog,
    graph: SearchGraph,
    target_source_count: int,
    seed: int = 3,
    attributes_per_source: int = 2,
    rows_per_source: int = 5,
    value_communities: int = 0,
    community_pool_size: int = 24,
    community_values_per_source: Optional[int] = None,
) -> GrowthResult:
    """Grow ``catalog`` and ``graph`` with synthetic sources until the target size.

    Each synthetic source has ``attributes_per_source`` attributes (two, as
    in the paper); its first two attributes are wired to two randomly chosen
    existing attribute nodes with association edges at the calibrated
    average cost.

    ``value_communities=0`` (the default) keeps the paper's construction:
    every value is unique, so synthetic relations are joinable only through
    the wired association edges.  With ``value_communities=N`` each
    synthetic source additionally draws its first attribute's values from
    one of ``N`` shared community pools (round-robin assignment; see
    :func:`make_community_source`), giving large grown catalogs real value
    overlap for blocking tiers and matchers to work against — the 10k+
    relation configuration of ``benchmarks/scale_bench.py``.

    The function mutates both the catalog and the graph in place and returns
    a :class:`GrowthResult` describing what was added.
    """
    rng = random.Random(seed)
    average_cost = average_learnable_edge_cost(graph)
    added: List[str] = []

    existing_attribute_nodes = [
        node for node in graph.attribute_nodes() if node.relation is not None
    ]
    counter = 0
    while catalog.source_count < target_source_count:
        counter += 1
        name = f"synthetic_{counter:04d}"
        if catalog.has_source(name):
            continue
        attributes = [f"attr_{i}" for i in range(1, attributes_per_source + 1)]
        schema = SourceSchema(name, description="synthetic growth source")
        schema.add_relation(RelationSchema(name, attributes))
        source = DataSource(schema)
        table = source.table(name)
        if value_communities > 0:
            community = counter % value_communities
            pool = community_value_pool(community, community_pool_size)
            take = min(
                community_values_per_source or rows_per_source, community_pool_size
            )
            pooled = sorted(rng.sample(pool, take))
            for row, value in enumerate(pooled):
                record = {attributes[0]: value}
                for attr in attributes[1:]:
                    record[attr] = f"{name}_{attr}_{row}"
                table.append(record)
        else:
            for row in range(rows_per_source):
                table.append({attr: f"{name}_{attr}_{row}" for attr in attributes})
        catalog.add_source(source)
        graph.add_source(source)
        added.append(name)

        # Wire the new source to two random existing attribute nodes.
        if existing_attribute_nodes:
            targets = rng.sample(
                existing_attribute_nodes, k=min(2, len(existing_attribute_nodes))
            )
            for i, target in enumerate(targets):
                local_attr = attributes[i % len(attributes)]
                edge = graph.add_association(
                    f"{name}.{name}",
                    local_attr,
                    target.relation or "",
                    target.attribute or "",
                    matcher_confidences={},
                    metadata={"origin": "synthetic_growth"},
                )
                # Pin the edge cost to the calibrated average via its
                # edge-identity feature (the default feature already
                # contributes the base cost).
                base = graph.weights.get("default", 0.0)
                graph.weights.set(edge_feature(edge.edge_id), average_cost - base)
    return GrowthResult(
        added_sources=added,
        target_source_count=target_source_count,
        average_edge_cost=average_cost,
    )


def make_two_attribute_source(name: str, rows: int = 5, seed: int = 0) -> DataSource:
    """A standalone synthetic two-attribute source (used by tests and benches)."""
    rng = random.Random(seed)
    schema = SourceSchema(name, description="synthetic two-attribute source")
    schema.add_relation(RelationSchema(name, ["attr_1", "attr_2"]))
    source = DataSource(schema)
    table = source.table(name)
    for row in range(rows):
        table.append(
            {"attr_1": f"{name}_a{row}_{rng.randint(0, 9)}", "attr_2": f"{name}_b{row}"}
        )
    return source
