"""Synthetic search-graph growth (paper Section 5.1.2, Figure 8).

"Since it is difficult to find large numbers of interlinked tables in the
wild, for this experiment we generated additional synthetic relations and
associations ... we randomly generated new sources with two attributes, and
then connected them to two random nodes in the search graph.  We set the
edge costs to the average cost in the calibrated original graph."

:func:`grow_catalog_and_graph` reproduces that construction: it starts from
an existing catalog + search graph (the GBCO-like one in the benchmarks) and
keeps adding random two-attribute sources, wiring each to two randomly
chosen existing attribute nodes with association edges whose cost equals the
average cost of the calibrated graph's learnable edges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..datastore.database import Catalog, DataSource
from ..datastore.schema import RelationSchema, SourceSchema
from ..graph.features import edge_feature
from ..graph.nodes import NodeKind
from ..graph.search_graph import SearchGraph


@dataclass
class GrowthResult:
    """Outcome of growing the catalog/graph to a target size."""

    added_sources: List[str]
    target_source_count: int
    average_edge_cost: float


def average_learnable_edge_cost(graph: SearchGraph, default: float = 1.0) -> float:
    """Average cost of the graph's learnable edges (``default`` if there are none)."""
    costs = [graph.edge_cost(edge) for edge in graph.learnable_edges()]
    if not costs:
        return default
    return sum(costs) / len(costs)


def grow_catalog_and_graph(
    catalog: Catalog,
    graph: SearchGraph,
    target_source_count: int,
    seed: int = 3,
    attributes_per_source: int = 2,
    rows_per_source: int = 5,
) -> GrowthResult:
    """Grow ``catalog`` and ``graph`` with synthetic sources until the target size.

    Each synthetic source has ``attributes_per_source`` attributes (two, as
    in the paper); its first two attributes are wired to two randomly chosen
    existing attribute nodes with association edges at the calibrated
    average cost.

    The function mutates both the catalog and the graph in place and returns
    a :class:`GrowthResult` describing what was added.
    """
    rng = random.Random(seed)
    average_cost = average_learnable_edge_cost(graph)
    added: List[str] = []

    existing_attribute_nodes = [
        node for node in graph.attribute_nodes() if node.relation is not None
    ]
    counter = 0
    while catalog.source_count < target_source_count:
        counter += 1
        name = f"synthetic_{counter:04d}"
        if catalog.has_source(name):
            continue
        attributes = [f"attr_{i}" for i in range(1, attributes_per_source + 1)]
        schema = SourceSchema(name, description="synthetic growth source")
        schema.add_relation(RelationSchema(name, attributes))
        source = DataSource(schema)
        table = source.table(name)
        for row in range(rows_per_source):
            table.append({attr: f"{name}_{attr}_{row}" for attr in attributes})
        catalog.add_source(source)
        graph.add_source(source)
        added.append(name)

        # Wire the new source to two random existing attribute nodes.
        if existing_attribute_nodes:
            targets = rng.sample(
                existing_attribute_nodes, k=min(2, len(existing_attribute_nodes))
            )
            for i, target in enumerate(targets):
                local_attr = attributes[i % len(attributes)]
                edge = graph.add_association(
                    f"{name}.{name}",
                    local_attr,
                    target.relation or "",
                    target.attribute or "",
                    matcher_confidences={},
                    metadata={"origin": "synthetic_growth"},
                )
                # Pin the edge cost to the calibrated average via its
                # edge-identity feature (the default feature already
                # contributes the base cost).
                base = graph.weights.get("default", 0.0)
                graph.weights.set(edge_feature(edge.edge_id), average_cost - base)
    return GrowthResult(
        added_sources=added,
        target_source_count=target_source_count,
        average_edge_cost=average_cost,
    )


def make_two_attribute_source(name: str, rows: int = 5, seed: int = 0) -> DataSource:
    """A standalone synthetic two-attribute source (used by tests and benches)."""
    rng = random.Random(seed)
    schema = SourceSchema(name, description="synthetic two-attribute source")
    schema.add_relation(RelationSchema(name, ["attr_1", "attr_2"]))
    source = DataSource(schema)
    table = source.table(name)
    for row in range(rows):
        table.append(
            {"attr_1": f"{name}_a{row}_{rng.randint(0, 9)}", "attr_2": f"{name}_b{row}"}
        )
    return source
