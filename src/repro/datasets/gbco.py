"""Synthetic GBCO-like dataset (paper Section 5.1).

The paper's first experimental dataset is GBCO (the Beta Cell Genomics
resource at betacell.org): 18 relations — each modeled as a separate source —
with 187 attributes in total, plus logs of real SQL queries from which
(base query, expanded query) pairs were mined.  GBCO is not redistributable,
so this module generates a synthetic catalog with the same shape:

* 18 single-relation sources, 187 attributes in total;
* realistic bioinformatics-style identifier domains shared between the
  relations that should join (gene ids, pathway ids, publication ids, ...),
  so that the value-overlap filter and MAD behave as they would on the real
  data;
* a query log of (base relations, newly needed relations, keyword query)
  trials mirroring how the paper derives its Figure 6/7 workload: 16 trials
  that introduce 40 "new" sources in total.

Only the *shape* of the workload matters for Figures 6–8 (they measure
alignment cost, not alignment quality); see DESIGN.md, "Substitutions".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..datastore.database import Catalog, DataSource
from ..datastore.schema import RelationSchema, SourceSchema

# ----------------------------------------------------------------------
# Schema: 18 relations, 187 attributes
# ----------------------------------------------------------------------
#: Relation name -> attribute list.  7 relations have 11 attributes and 11
#: relations have 10, for a total of 7*11 + 11*10 = 187.
GBCO_RELATIONS: Dict[str, List[str]] = {
    "gene": [
        "gene_id", "symbol", "name", "chromosome", "start_pos", "end_pos",
        "strand", "biotype", "species", "description", "ensembl_id",
    ],
    "transcript": [
        "transcript_id", "gene_id", "name", "length", "exon_count", "biotype",
        "tss_position", "is_canonical", "refseq_id", "description", "species",
    ],
    "protein": [
        "protein_id", "transcript_id", "name", "length", "mass", "sequence_md5",
        "uniprot_ac", "domain_count", "description", "species", "gene_symbol",
    ],
    "probe": [
        "probe_id", "gene_id", "platform", "sequence", "chromosome", "position",
        "strand", "gc_content", "is_control", "probe_set", "description",
    ],
    "experiment": [
        "experiment_id", "name", "platform", "lab", "date", "tissue_id",
        "sample_count", "design", "pub_id", "description", "species",
    ],
    "sample": [
        "sample_id", "experiment_id", "tissue_id", "donor", "age", "sex",
        "treatment", "replicate", "quality", "description", "collection_date",
    ],
    "tissue": [
        "tissue_id", "name", "organ", "species", "ontology_id", "description",
        "cell_type", "development_stage", "disease_state", "source_lab", "anatomy_code",
    ],
    "pathway": [
        "pathway_id", "name", "source_db", "category", "gene_count", "description",
        "species", "reference", "curation_status", "last_updated",
    ],
    "pathway_member": [
        "pathway_id", "gene_id", "role", "evidence", "rank", "added_by",
        "added_date", "confidence", "notes", "species",
    ],
    "publication": [
        "pub_id", "title", "journal", "year", "volume", "pages",
        "pubmed_id", "doi", "abstract", "first_author",
    ],
    "author": [
        "author_id", "pub_id", "last_name", "first_name", "affiliation",
        "position", "email", "orcid", "country", "is_corresponding",
    ],
    "gene2pathway": [
        "gene_id", "pathway_id", "evidence_code", "source_db", "score",
        "assigned_by", "assigned_date", "qualifier", "notes", "species",
    ],
    "expression": [
        "expression_id", "gene_id", "sample_id", "value", "unit", "probe_id",
        "experiment_id", "log_ratio", "p_value", "call",
    ],
    "annotation": [
        "annotation_id", "gene_id", "go_term", "evidence_code", "aspect",
        "assigned_by", "assigned_date", "qualifier", "reference", "species",
    ],
    "ortholog": [
        "ortholog_id", "gene_id", "other_species_gene", "other_species", "identity",
        "coverage", "method", "is_one_to_one", "source_db", "notes",
    ],
    "variant": [
        "variant_id", "gene_id", "chromosome", "position", "ref_allele", "alt_allele",
        "consequence", "frequency", "clinical_significance", "source_db",
    ],
    "phenotype": [
        "phenotype_id", "name", "ontology_id", "category", "description",
        "species", "severity", "onset", "source_db", "curation_status",
    ],
    "gene2phenotype": [
        "gene_id", "phenotype_id", "evidence", "pub_id", "score",
        "assigned_by", "assigned_date", "model_organism", "notes", "species",
    ],
}


@dataclass(frozen=True)
class QueryLogEntry:
    """One (base query, expanded query) trial mined from the query log.

    Attributes
    ----------
    keywords:
        The keyword query whose Steiner trees cover the base relations.
    base_relations:
        Qualified relation names used by the base SQL query.
    new_relations:
        Qualified relation names that only the expanded query uses — these
        are the "new sources" registered during the trial.
    """

    keywords: Tuple[str, ...]
    base_relations: Tuple[str, ...]
    new_relations: Tuple[str, ...]


#: 16 trials introducing 40 new sources in total (2+3 alternating).
QUERY_LOG: Tuple[QueryLogEntry, ...] = (
    QueryLogEntry(("insulin", "pathway"), ("gene.gene", "pathway.pathway"), ("gene2pathway.gene2pathway", "pathway_member.pathway_member")),
    QueryLogEntry(("insulin", "expression"), ("gene.gene", "experiment.experiment"), ("expression.expression", "sample.sample", "probe.probe")),
    QueryLogEntry(("pancreas", "sample"), ("tissue.tissue", "sample.sample"), ("experiment.experiment", "expression.expression")),
    QueryLogEntry(("diabetes", "publication"), ("phenotype.phenotype", "publication.publication"), ("gene2phenotype.gene2phenotype", "author.author", "gene.gene")),
    QueryLogEntry(("glucose", "transcript"), ("gene.gene", "transcript.transcript"), ("protein.protein", "ortholog.ortholog")),
    QueryLogEntry(("metabolism", "protein"), ("protein.protein", "gene.gene"), ("transcript.transcript", "annotation.annotation", "variant.variant")),
    QueryLogEntry(("islet", "tissue"), ("tissue.tissue", "experiment.experiment"), ("sample.sample", "expression.expression")),
    QueryLogEntry(("signaling", "pathway"), ("pathway.pathway", "gene2pathway.gene2pathway"), ("pathway_member.pathway_member", "gene.gene", "annotation.annotation")),
    QueryLogEntry(("variant", "gene"), ("gene.gene", "variant.variant"), ("phenotype.phenotype", "gene2phenotype.gene2phenotype")),
    QueryLogEntry(("Affymetrix", "probe"), ("probe.probe", "experiment.experiment"), ("expression.expression", "sample.sample", "gene.gene")),
    QueryLogEntry(("ortholog", "identity"), ("gene.gene", "ortholog.ortholog"), ("transcript.transcript", "protein.protein")),
    QueryLogEntry(("author", "publication"), ("publication.publication", "author.author"), ("experiment.experiment", "gene2phenotype.gene2phenotype", "phenotype.phenotype")),
    QueryLogEntry(("secretion", "annotation"), ("gene.gene", "annotation.annotation"), ("gene2pathway.gene2pathway", "pathway.pathway")),
    QueryLogEntry(("beta", "cell"), ("tissue.tissue", "sample.sample"), ("expression.expression", "probe.probe", "experiment.experiment")),
    QueryLogEntry(("phenotype", "severity"), ("phenotype.phenotype", "gene2phenotype.gene2phenotype"), ("publication.publication", "gene.gene")),
    QueryLogEntry(("adipose", "expression"), ("gene.gene", "expression.expression"), ("sample.sample", "tissue.tissue", "probe.probe")),
)

_GENE_SYMBOLS = [
    "INS", "GCG", "PDX1", "GCK", "KCNJ11", "ABCC8", "HNF1A", "HNF4A", "SLC2A2",
    "IAPP", "NEUROD1", "NKX6-1", "MAFA", "FOXO1", "IRS1", "IRS2", "AKT2", "PIK3CA",
    "INSR", "IGF1", "GLP1R", "DPP4", "PPARG", "TCF7L2", "WFS1", "SUR1", "PTPN1",
    "SOCS3", "LEP", "ADIPOQ",
]
_PATHWAY_NAMES = [
    "insulin signaling", "glucose metabolism", "beta cell development",
    "MAPK cascade", "apoptosis", "calcium signaling", "mTOR signaling",
    "glycolysis", "incretin signaling", "lipid metabolism",
]
_TISSUES = [
    ("T001", "pancreatic islet", "pancreas"),
    ("T002", "beta cell", "pancreas"),
    ("T003", "liver lobule", "liver"),
    ("T004", "skeletal muscle", "muscle"),
    ("T005", "adipose tissue", "adipose"),
    ("T006", "hypothalamus", "brain"),
]
_PHENOTYPES = [
    "type 2 diabetes", "impaired glucose tolerance", "insulin resistance",
    "obesity", "hyperinsulinemia", "beta cell apoptosis", "hyperglycemia",
    "maturity onset diabetes", "insulin secretion defect", "islet hypoplasia",
]


@dataclass
class GbcoDataset:
    """The generated catalog plus its query log."""

    catalog: Catalog
    query_log: List[QueryLogEntry] = field(default_factory=list)

    def sources_for(self, relations: Sequence[str]) -> List[DataSource]:
        """The data sources owning the given qualified relation names."""
        names = {relation.split(".")[0] for relation in relations}
        return [self.catalog.source(name) for name in names]

    @property
    def total_new_source_introductions(self) -> int:
        """Total number of new-source registrations across all trials (paper: 40)."""
        return sum(len(entry.new_relations) for entry in self.query_log)


def _identifier_pool(prefix: str, count: int) -> List[str]:
    return [f"{prefix}{i:05d}" for i in range(1, count + 1)]


def build_gbco(seed: int = 11, rows_per_relation: int = 60) -> GbcoDataset:
    """Generate the GBCO-like catalog: 18 single-relation sources, 187 attributes.

    Parameters
    ----------
    seed:
        Random seed; generation is deterministic.
    rows_per_relation:
        Approximate number of rows per relation.
    """
    rng = random.Random(seed)

    pools: Dict[str, List[str]] = {
        "gene_id": _identifier_pool("GENE", 80),
        "transcript_id": _identifier_pool("TX", 90),
        "protein_id": _identifier_pool("PROT", 90),
        "probe_id": _identifier_pool("PRB", 100),
        "experiment_id": _identifier_pool("EXP", 40),
        "sample_id": _identifier_pool("SAMP", 80),
        "tissue_id": [t[0] for t in _TISSUES],
        "pathway_id": _identifier_pool("PATH", 30),
        "pub_id": _identifier_pool("PMID", 70),
        "author_id": _identifier_pool("AUTH", 80),
        "expression_id": _identifier_pool("EXPR", 120),
        "annotation_id": _identifier_pool("ANN", 100),
        "ortholog_id": _identifier_pool("ORTH", 80),
        "variant_id": _identifier_pool("VAR", 90),
        "phenotype_id": _identifier_pool("PHEN", 40),
        "go_term": [f"GO:{i:07d}" for i in range(1, 60)],
        "species": ["human", "mouse", "rat"],
        "platform": ["Affymetrix U133", "Illumina HT-12", "RNA-seq"],
        "evidence_code": ["IDA", "IEA", "IMP", "TAS", "ISS"],
    }

    def value_for(relation: str, attribute: str, row_index: int) -> str:
        """Deterministic-ish value generation driven by the attribute name."""
        if attribute in pools:
            pool = pools[attribute]
            return pool[(row_index * 7 + len(relation)) % len(pool)]
        if attribute in ("symbol", "gene_symbol"):
            return _GENE_SYMBOLS[row_index % len(_GENE_SYMBOLS)]
        if attribute == "name":
            if relation == "gene":
                return f"{_GENE_SYMBOLS[row_index % len(_GENE_SYMBOLS)]} gene"
            if relation == "pathway":
                return _PATHWAY_NAMES[row_index % len(_PATHWAY_NAMES)]
            if relation == "tissue":
                return _TISSUES[row_index % len(_TISSUES)][1]
            if relation == "phenotype":
                return _PHENOTYPES[row_index % len(_PHENOTYPES)]
            return f"{relation} {row_index}"
        if attribute == "title":
            topic = _PATHWAY_NAMES[row_index % len(_PATHWAY_NAMES)]
            return f"A study of {topic} in pancreatic beta cells"
        if attribute in ("description", "notes", "abstract"):
            # Relation-specific free text: keeps keyword matches selective
            # (only name/title columns carry domain topic words).
            return f"{relation} record {row_index} details"
        if attribute in ("chromosome",):
            return f"chr{1 + row_index % 22}"
        if attribute in ("start_pos", "end_pos", "position", "tss_position", "length", "mass"):
            return str(10000 + row_index * 137)
        if attribute in ("year", "added_date", "assigned_date", "date", "collection_date", "last_updated", "method_date"):
            return str(1998 + row_index % 20)
        if attribute in ("strand",):
            return rng.choice(["+", "-"])
        if attribute in ("p_value", "score", "frequency", "identity", "coverage", "value", "log_ratio", "gc_content", "confidence"):
            return f"{rng.random():.4f}"
        if attribute in ("sex",):
            return rng.choice(["M", "F"])
        if attribute in ("journal",):
            return rng.choice(["Diabetes", "Cell Metabolism", "Diabetologia", "JBC"])
        if attribute in ("organ",):
            return _TISSUES[row_index % len(_TISSUES)][2]
        return f"{attribute}_{row_index % 17}"

    catalog = Catalog()
    for relation_name, attributes in GBCO_RELATIONS.items():
        schema = SourceSchema(relation_name, description=f"GBCO-like relation {relation_name}")
        schema.add_relation(RelationSchema(relation_name, list(attributes)))
        source = DataSource(schema)
        table = source.table(relation_name)
        for row_index in range(rows_per_relation):
            table.append(
                {attr: value_for(relation_name, attr, row_index) for attr in attributes}
            )
        catalog.add_source(source)

    return GbcoDataset(catalog=catalog, query_log=list(QUERY_LOG))


def total_attribute_count() -> int:
    """Total number of attributes in the GBCO-like schema (paper: 187)."""
    return sum(len(attrs) for attrs in GBCO_RELATIONS.values())
