"""Synthetic InterPro–GO dataset (paper Section 5.2, Figure 9).

The paper's second experimental dataset consists of 8 closely interlinked
tables with 28 attributes drawn from the InterPro and Gene Ontology
databases, with 8 semantically meaningful join/alignment edges forming the
gold standard.  Those databases are large public resources; here we generate
a synthetic dataset with the *same schema topology* (8 relations, 28
attributes), the same kinds of identifier overlaps (GO accessions shared
between ``go.term.acc`` and ``interpro.interpro2go.go_id``, InterPro entry
accessions shared along the entry→publication path, and so on), and the same
gold standard — which is what the Table 1 / Figures 10–12 experiments
actually measure.  See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.evaluation import GoldStandard
from ..datastore.database import Catalog, DataSource
from ..datastore.schema import ForeignKey, RelationSchema, SourceSchema

#: The 8 gold-standard alignment edges, as fully qualified attribute pairs.
GOLD_EDGES: Tuple[Tuple[str, str], ...] = (
    ("go.term.acc", "interpro.interpro2go.go_id"),
    ("interpro.interpro2go.entry_ac", "interpro.entry.entry_ac"),
    ("interpro.entry.entry_ac", "interpro.entry2pub.entry_ac"),
    ("interpro.entry2pub.pub_id", "interpro.pub.pub_id"),
    ("interpro.method.method_ac", "interpro.method2pub.method_ac"),
    ("interpro.method2pub.pub_id", "interpro.pub.pub_id"),
    ("interpro.pub.journal_id", "interpro.journal.journal_id"),
    ("interpro.entry2pub.pub_id", "interpro.method2pub.pub_id"),
)

#: Keyword queries modeled after the usage patterns in the GO / InterPro
#: documentation (two-keyword queries, as used for the Figure 10–12 feedback
#: experiments).
DEFAULT_KEYWORD_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("membrane", "title"),
    ("kinase", "journal"),
    ("binding", "pub"),
    ("transport", "method"),
    ("signal", "title"),
    ("receptor", "journal"),
    ("transferase", "pub"),
    ("nucleus", "method"),
    ("repair", "title"),
    ("growth", "journal"),
)

_GO_TERM_WORDS = [
    "plasma membrane",
    "protein kinase activity",
    "ATP binding",
    "ion transport",
    "signal transduction",
    "receptor activity",
    "transferase activity",
    "nucleus",
    "DNA repair",
    "cell growth",
    "apoptosis",
    "oxidoreductase activity",
    "ribosome biogenesis",
    "protein folding",
    "lipid metabolism",
    "RNA splicing",
    "chromatin remodeling",
    "immune response",
    "cell adhesion",
    "proteolysis",
]

_ENTRY_NAME_WORDS = [
    "Protein kinase domain",
    "Zinc finger",
    "Immunoglobulin domain",
    "EGF-like domain",
    "WD40 repeat",
    "Ankyrin repeat",
    "Helix-turn-helix",
    "Leucine-rich repeat",
    "SH3 domain",
    "PDZ domain",
    "Homeobox domain",
    "RING finger",
    "Histone fold",
    "Cytochrome P450",
    "ABC transporter",
    "G-protein coupled receptor",
    "Serine protease",
    "Ubiquitin domain",
    "Calcium-binding EF-hand",
    "Fibronectin type III",
]

_JOURNALS = [
    ("J001", "Journal of Molecular Biology", "0022-2836"),
    ("J002", "Nucleic Acids Research", "0305-1048"),
    ("J003", "Bioinformatics", "1367-4803"),
    ("J004", "Nature Genetics", "1061-4036"),
    ("J005", "Cell", "0092-8674"),
    ("J006", "Proteins", "0887-3585"),
    ("J007", "Genome Research", "1088-9051"),
    ("J008", "PLoS Computational Biology", "1553-734X"),
]


@dataclass
class InterproGoDataset:
    """The generated dataset plus its gold standard and keyword queries."""

    catalog: Catalog
    gold: GoldStandard
    keyword_queries: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def go(self) -> DataSource:
        """The GO source (one relation: ``term``)."""
        return self.catalog.source("go")

    @property
    def interpro(self) -> DataSource:
        """The InterPro source (seven relations)."""
        return self.catalog.source("interpro")


def build_interpro_go(
    seed: int = 7,
    num_terms: int = 120,
    num_entries: int = 150,
    num_methods: int = 100,
    num_pubs: int = 90,
    include_foreign_keys: bool = False,
) -> InterproGoDataset:
    """Generate the InterPro–GO-like dataset.

    Parameters
    ----------
    seed:
        Random seed; generation is fully deterministic for a given seed.
    num_terms, num_entries, num_methods, num_pubs:
        Row counts for the main entity tables (link tables are sized
        proportionally).
    include_foreign_keys:
        The Section 5.2 experiments *remove* the join metadata ("we remove
        this information from the metadata") so that the matchers have to
        rediscover it; set this to ``True`` to keep the foreign keys, e.g.
        for the examples.
    """
    rng = random.Random(seed)

    go_accessions = [f"GO:{i:07d}" for i in range(1, num_terms + 1)]
    entry_accessions = [f"IPR{i:06d}" for i in range(1, num_entries + 1)]
    method_accessions = [f"PF{i:05d}" for i in range(1, num_methods + 1)]
    pub_ids = [f"PUB{i:05d}" for i in range(1, num_pubs + 1)]

    # ------------------------------------------------------------------
    # GO source: term(acc, name, term_type, ontology_id)
    # ------------------------------------------------------------------
    go_schema = SourceSchema("go", description="Gene Ontology terms (synthetic)")
    go_schema.add_relation(
        RelationSchema(
            "term",
            ["acc", "name", "term_type", "ontology_id"],
            primary_key=["acc"],
            description="GO terms",
        )
    )
    go_source = DataSource(go_schema)
    term_types = ["biological_process", "molecular_function", "cellular_component"]
    for i, acc in enumerate(go_accessions):
        go_source.table("term").append(
            {
                "acc": acc,
                "name": _GO_TERM_WORDS[i % len(_GO_TERM_WORDS)]
                + ("" if i < len(_GO_TERM_WORDS) else f" variant {i}"),
                "term_type": rng.choice(term_types),
                "ontology_id": f"ONT{1 + i % 3}",
            }
        )

    # ------------------------------------------------------------------
    # InterPro source: 7 relations, 24 attributes
    # ------------------------------------------------------------------
    interpro_schema = SourceSchema("interpro", description="InterPro (synthetic)")
    interpro_schema.add_relation(
        RelationSchema("interpro2go", ["go_id", "entry_ac", "evidence"], description="GO cross-references")
    )
    interpro_schema.add_relation(
        RelationSchema(
            "entry",
            ["entry_ac", "name", "entry_type", "short_name"],
            primary_key=["entry_ac"],
        )
    )
    interpro_schema.add_relation(
        RelationSchema("entry2pub", ["entry_ac", "pub_id", "order_in"])
    )
    interpro_schema.add_relation(
        RelationSchema(
            "method",
            ["method_ac", "name", "method_date", "skip_flag"],
            primary_key=["method_ac"],
        )
    )
    interpro_schema.add_relation(RelationSchema("method2pub", ["method_ac", "pub_id"]))
    interpro_schema.add_relation(
        RelationSchema(
            "pub",
            ["pub_id", "title", "journal_id", "year", "volume"],
            primary_key=["pub_id"],
        )
    )
    interpro_schema.add_relation(
        RelationSchema("journal", ["journal_id", "title", "issn"], primary_key=["journal_id"])
    )
    if include_foreign_keys:
        interpro_schema.add_foreign_key(ForeignKey("interpro2go", "entry_ac", "entry", "entry_ac"))
        interpro_schema.add_foreign_key(ForeignKey("entry2pub", "entry_ac", "entry", "entry_ac"))
        interpro_schema.add_foreign_key(ForeignKey("entry2pub", "pub_id", "pub", "pub_id"))
        interpro_schema.add_foreign_key(ForeignKey("method2pub", "method_ac", "method", "method_ac"))
        interpro_schema.add_foreign_key(ForeignKey("method2pub", "pub_id", "pub", "pub_id"))
        interpro_schema.add_foreign_key(ForeignKey("pub", "journal_id", "journal", "journal_id"))
    interpro = DataSource(interpro_schema)

    entry_types = ["Domain", "Family", "Repeat", "Site"]
    for i, entry_ac in enumerate(entry_accessions):
        name = _ENTRY_NAME_WORDS[i % len(_ENTRY_NAME_WORDS)]
        if i >= len(_ENTRY_NAME_WORDS):
            name = f"{name} {i}"
        interpro.table("entry").append(
            {
                "entry_ac": entry_ac,
                "name": name,
                "entry_type": rng.choice(entry_types),
                "short_name": name.lower().replace(" ", "_")[:20],
            }
        )

    for i, method_ac in enumerate(method_accessions):
        base = _ENTRY_NAME_WORDS[i % len(_ENTRY_NAME_WORDS)]
        interpro.table("method").append(
            {
                "method_ac": method_ac,
                # Method names overlap partially with entry names — the
                # value overlap the paper calls out when discussing MAD's
                # "incorrect" but arguably useful alignments.
                "name": base if i % 3 == 0 else f"{base} model {i}",
                "method_date": f"200{rng.randint(0, 9)}-0{rng.randint(1, 9)}-1{rng.randint(0, 9)}",
                "skip_flag": rng.choice(["N", "N", "N", "Y"]),
            }
        )

    for i, (journal_id, title, issn) in enumerate(_JOURNALS):
        interpro.table("journal").append(
            {"journal_id": journal_id, "title": title, "issn": issn}
        )

    title_topics = [
        "structure of",
        "functional analysis of",
        "evolution of",
        "classification of",
        "prediction of",
        "annotation of",
    ]
    for i, pub_id in enumerate(pub_ids):
        topic = rng.choice(title_topics)
        subject = _ENTRY_NAME_WORDS[i % len(_ENTRY_NAME_WORDS)].lower()
        interpro.table("pub").append(
            {
                "pub_id": pub_id,
                "title": f"On the {topic} {subject}",
                "journal_id": _JOURNALS[i % len(_JOURNALS)][0],
                "year": str(1995 + (i % 15)),
                "volume": str(10 + (i % 40)),
            }
        )

    # Link tables: every entry references one or two GO terms and pubs.
    for i, entry_ac in enumerate(entry_accessions):
        for j in range(1 + (i % 2)):
            interpro.table("interpro2go").append(
                {
                    "go_id": go_accessions[(i * 2 + j) % len(go_accessions)],
                    "entry_ac": entry_ac,
                    "evidence": rng.choice(["IEA", "TAS", "IDA"]),
                }
            )
        interpro.table("entry2pub").append(
            {
                "entry_ac": entry_ac,
                "pub_id": pub_ids[i % len(pub_ids)],
                "order_in": str(1 + i % 3),
            }
        )
    for i, method_ac in enumerate(method_accessions):
        interpro.table("method2pub").append(
            {"method_ac": method_ac, "pub_id": pub_ids[(i * 3) % len(pub_ids)]}
        )

    catalog = Catalog([go_source, interpro])
    gold = GoldStandard.from_pairs(GOLD_EDGES)
    return InterproGoDataset(
        catalog=catalog,
        gold=gold,
        keyword_queries=list(DEFAULT_KEYWORD_QUERIES),
    )
