"""Exception hierarchy for the Q reproduction library.

Every error raised by the library derives from :class:`ReproError` (whose
historical name :data:`QError` remains an alias) so that callers can catch
library-specific failures without masking programming errors such as
:class:`TypeError` or :class:`KeyError` raised by misuse of Python itself.

Each class carries a ``retryable`` flag: ``True`` means the condition is
expected to clear on its own (a momentarily locked SQLite database, a full
write queue, a server in degraded mode awaiting :meth:`recover`), so an
identical retry of the failed operation is safe and reasonable.  The
serving layer's writer lane keys its backoff-and-retry policy off this flag
— see :mod:`repro.faults.retry` and the README error table.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""

    #: Whether an identical retry of the failed operation may succeed once
    #: the (transient) condition clears.  Errors describing caller mistakes
    #: or permanent state keep the ``False`` default.
    retryable: bool = False


#: Historical name of :class:`ReproError`; kept as a true alias so existing
#: ``except QError`` handlers and subclasses are unaffected.
QError = ReproError


class SchemaError(QError):
    """Raised when a schema definition is inconsistent.

    Examples include duplicate attribute names within a relation, foreign
    keys that reference attributes which do not exist, or registering two
    relations under the same qualified name.
    """


class UnknownRelationError(SchemaError):
    """Raised when a relation name cannot be resolved in a catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownAttributeError(SchemaError):
    """Raised when an attribute name cannot be resolved in a relation."""

    def __init__(self, relation: str, attribute: str) -> None:
        super().__init__(f"unknown attribute {attribute!r} in relation {relation!r}")
        self.relation = relation
        self.attribute = attribute


class DataError(QError):
    """Raised when tuple data does not conform to its relation schema."""


class StorageError(QError):
    """Raised by storage backends (:mod:`repro.storage`).

    Examples include registering two relations under the same key on one
    backend, scanning a relation that was never created, or handing a
    SQLite-backed relation a value type the backend cannot round-trip.
    """


class TransientStorageError(StorageError):
    """A storage failure expected to clear on retry (locked / busy / injected).

    The fault classifier (:func:`repro.faults.retry.classify_storage_error`)
    wraps recognizably transient backend failures — SQLite ``database is
    locked`` / ``database table is locked`` / ``busy``, and injected I/O
    faults from the test harness — in this type so the serving layer's
    writer lane knows an identical retry with backoff is warranted.  The
    original failure rides on ``__cause__``.
    """

    retryable = True


class GraphError(QError):
    """Raised for inconsistent search-graph or query-graph operations."""


class UnknownNodeError(GraphError):
    """Raised when a node id is not present in a graph."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"unknown graph node: {node_id!r}")
        self.node_id = node_id


class QueryError(QError):
    """Raised when a conjunctive query is malformed or cannot be executed."""


class SteinerError(QError):
    """Raised when a Steiner-tree computation cannot be carried out.

    The most common cause is a set of terminals that is not connected in the
    underlying graph, in which case no Steiner tree exists — see
    :class:`DisconnectedTerminalsError`.
    """


class DisconnectedTerminalsError(SteinerError):
    """Raised when no Steiner tree exists because terminals are disconnected.

    Both the exact and the approximate solver raise this (rather than a bare
    :class:`SteinerError`) so that callers like the top-k enumerator can
    distinguish "no tree exists" from solver-capability failures without
    inspecting the error message.
    """

    def __init__(self, message: str = "terminals are not connected in the graph") -> None:
        super().__init__(message)


class MatcherError(QError):
    """Raised when a schema matcher is misconfigured or fails."""


class InvalidRequestError(QError):
    """Raised when a ``repro.api`` request object is malformed.

    Examples include a :class:`~repro.api.types.QueryRequest` naming neither
    keywords nor an existing view, or a non-positive page size.
    """


class UnknownStrategyError(QError):
    """Raised on dispatch over an unknown alignment-strategy name.

    The message lists the valid options so callers of the typed API never
    have to guess at the registry contents.
    """

    def __init__(self, value: object, valid: "tuple[str, ...]") -> None:
        super().__init__(
            f"unknown alignment strategy {value!r}; valid strategies: {', '.join(valid)}"
        )
        self.value = value
        self.valid = tuple(valid)


class UnknownMatcherError(MatcherError):
    """Raised on dispatch over an unknown matcher name; lists valid options."""

    def __init__(self, value: object, valid: "tuple[str, ...]") -> None:
        super().__init__(
            f"unknown matcher {value!r}; registered matchers: {', '.join(valid)}"
        )
        self.value = value
        self.valid = tuple(valid)


class UnknownViewError(QError):
    """Raised when a view id / name cannot be resolved; lists known views."""

    def __init__(self, value: object, known: "tuple[str, ...]") -> None:
        known = tuple(known)
        listing = ", ".join(known) if known else "(none registered)"
        super().__init__(f"unknown view {value!r}; known views: {listing}")
        self.value = value
        self.known = known


class AlignmentError(QError):
    """Raised by aligner strategies (exhaustive / view-based / preferential)."""


class LearningError(QError):
    """Raised by the feedback / MIRA learning components."""


class FeedbackError(LearningError):
    """Raised when user feedback refers to unknown answers or queries."""


class RegistrationError(QError):
    """Raised when registration of a new data source fails."""


class ServiceOverloadedError(QError):
    """Raised when the serving layer's bounded writer queue is full.

    The concurrent server (:mod:`repro.service`) funnels every mutation —
    registrations, feedback, removals — through a single-writer queue so
    readers never observe a half-applied change.  The queue is bounded to
    provide backpressure: once ``write_queue_limit`` mutations are pending,
    further writes fail fast with this error instead of piling up behind a
    registration burst.  Reads are never rejected; they do not enter the
    queue at all.
    """

    retryable = True

    def __init__(self, pending: int, limit: int) -> None:
        super().__init__(
            f"write queue is full ({pending} pending, limit {limit}); retry later"
        )
        self.pending = pending
        self.limit = limit


class DeadlineExceededError(QError):
    """Raised when a read's deadline expired before any answer materialized.

    Deadlines are enforced *cooperatively*: the request's
    :class:`~repro.faults.budget.Budget` is polled at the Steiner solver's
    branch points (per Dijkstra pop batch, per DP subset, per expansion) and
    at the executor's per-query boundaries.  When the budget expires after
    at least one ranked answer exists, the read returns a partial
    :class:`~repro.service.server.ReadResult` flagged ``degraded=True``
    instead of raising; this error means the deadline was too tight to
    produce even that.
    """

    def __init__(self, deadline_ms: float, elapsed_ms: float, where: str = "") -> None:
        suffix = f" in {where}" if where else ""
        super().__init__(
            f"deadline of {deadline_ms:g} ms exceeded after "
            f"{elapsed_ms:.3f} ms{suffix}"
        )
        self.deadline_ms = deadline_ms
        self.elapsed_ms = elapsed_ms
        self.where = where


class ServiceUnavailableError(QError):
    """Raised for writes while a :class:`~repro.service.server.QServer` is degraded.

    A non-transient storage failure flips the server into read-only degraded
    mode: reads keep serving the last published snapshot, but pending and
    new writes fail fast with this error until :meth:`QServer.recover`
    revalidates the backend.  Retryable by definition — the caller may retry
    after recovery.
    """

    retryable = True

    def __init__(self, reason: str = "server is in degraded read-only mode") -> None:
        super().__init__(reason)
        self.reason = reason


class ServerClosedError(InvalidRequestError):
    """Raised for requests to a closed server, and used by the bounded drain.

    ``QServer.close(timeout=...)`` fails writes still queued behind a wedged
    writer with this error instead of blocking forever.  Subclasses
    :class:`InvalidRequestError` so pre-existing ``except`` handlers for
    requests against a closed server keep working.
    """

    def __init__(self, message: str = "QServer is closed") -> None:
        super().__init__(message)


class SnapshotError(QError):
    """Raised by the session persistence layer (:mod:`repro.persist`).

    Covers every way a durable session can fail to round-trip: a missing or
    truncated snapshot, a checksum mismatch (corruption), a snapshot written
    by an incompatible format version, a journal entry that cannot be
    replayed, or a save attempted without a resolvable storage location
    (e.g. a memory-backed session saved without a sidecar path).
    """
