"""Request/response dataclasses of the typed service API.

Every interaction with :class:`~repro.api.service.QService` goes through a
frozen request object and returns a frozen response object, so the public
surface is serialization-friendly and stable: a request captures *what* the
caller wants, the service decides *when* the work happens (mutations are
priced lazily at read time).

The one mutable dataclass here is :class:`ServiceConfig` — the session
knobs, shared with the deprecated ``QSystemConfig`` alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple, Union

from ..datastore.provenance import AnswerTuple
from ..graph.search_graph import GraphConfig
from ..learning.feedback import AnnotationKind, FeedbackEvent
from .strategies import AlignmentStrategy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..alignment.base import AlignmentResult
    from ..core.view import RankedView
    from ..datastore.database import DataSource
    from ..matching.base import BaseMatcher

#: A view reference accepted by the service: stable view id, view name, or
#: (for in-process callers such as the deprecated ``QSystem`` shim) the
#: live :class:`~repro.core.view.RankedView` object itself.
ViewRef = Union[str, "RankedView"]


@dataclass
class ServiceConfig:
    """Top-level knobs of a Q service session.

    The historical name ``QSystemConfig`` remains importable as an alias
    from :mod:`repro.core.qsystem` and :mod:`repro`.
    """

    top_k: int = 5
    top_y: int = 2
    feedback_window: int = 50
    graph: GraphConfig = field(default_factory=GraphConfig)
    answer_limit: Optional[int] = 200
    #: Answers per :class:`AnswerPage` when a request does not override it.
    default_page_size: int = 25
    #: Durable sessions: once the mutation journal holds this many entries,
    #: the next :meth:`~repro.api.service.QService.save` folds journal and
    #: snapshot into one fresh snapshot (compaction) instead of appending.
    journal_compact_after: int = 64
    #: Registration scaling knobs (see README "Scaling registration").
    #: Number of hash shards the profile index's posting lists are split
    #: across; 1 keeps the flat layout.  Results are identical for any N.
    profile_shards: int = 1
    #: MinHash signature length for the approximate blocking tier; 0 (the
    #: default) disables sketch maintenance entirely.
    sketch_num_perm: int = 0
    #: LSH bands the signature is cut into (must divide ``sketch_num_perm``);
    #: 0 defaults to ``sketch_num_perm // 2`` (2 rows per band).
    sketch_bands: int = 0
    #: Document-frequency ceiling for the exact rare-token tier that backs
    #: the sketch tier's losslessness at low Jaccard.
    sketch_rare_token_df: int = 16
    #: Matcher-scoring pool size for registration; 1 = serial, 0 = one
    #: worker per CPU.  Accepted correspondences are byte-identical to
    #: serial runs at any setting.
    registration_workers: int = 1
    #: Pool kind: ``"thread"`` or ``"process"`` (process falls back to
    #: threads when the matcher/tables do not pickle).
    registration_pool: str = "thread"
    #: LRU cap on the profile index's schema-fingerprint pair memo.
    pair_memo_limit: int = 4096
    #: Serving-layer knobs (see :mod:`repro.service`): size of the
    #: concurrent read pool of a :class:`~repro.service.server.QServer`;
    #: 0 = one reader per CPU.
    read_workers: int = 4
    #: Bound on the serving layer's single-writer mutation queue; writes
    #: beyond it fail fast with
    #: :class:`~repro.exceptions.ServiceOverloadedError`.
    write_queue_limit: int = 64
    #: Writer-lane retry policy for transient storage faults (SQLite
    #: locked/busy, injected I/O errors): total attempts including the
    #: first (1 = never retry), base backoff delay, and the backoff cap.
    #: See :mod:`repro.faults.retry` and the README "Failure model".
    write_retry_attempts: int = 3
    write_retry_base_delay_s: float = 0.005
    write_retry_max_delay_s: float = 0.1
    #: Observability (see :mod:`repro.obs` and the README "Observability"):
    #: ``False`` disables request tracing and the explain/slow-query logs —
    #: reads return ``trace=None`` and the hot path pays only plain counter
    #: increments.  The metrics registry itself always exists (scrapes just
    #: see static totals move).
    observability: bool = True
    #: Reads slower than this land in the bounded slow-query log with
    #: their full span tree and pushdown decision.
    slow_query_ms: float = 250.0
    #: Bound on the slow-query log (oldest entries fall off).
    slow_query_log_size: int = 64
    #: Bound on the per-read explain/decision log.
    decision_log_size: int = 256


@dataclass(frozen=True)
class QueryRequest:
    """Ask for the ranked answers of a keyword query.

    Either ``view`` names an existing view (by stable id or name), or
    ``keywords`` are given — in which case the service reuses the view
    registered under ``name`` (default: the joined keywords) or creates one.

    Attributes
    ----------
    keywords:
        The keyword query terms.
    view:
        Reference to an existing view; takes precedence over ``keywords``.
    k:
        Number of query trees retained (defaults to the session config).
    name:
        Explicit view name when creating a view from ``keywords``.
    page_size:
        Answers per page (defaults to the session config).
    limit:
        Cap on the total number of answers streamed.
    offset:
        Starting rank of a random-access page read
        (:meth:`~repro.api.service.QService.answers_page` only; the
        streaming reads always start at rank 0).
    tenant:
        Optional tenant name: answers are ranked under that tenant's
        weight overlay (shared base weights plus the tenant's learned
        deltas) instead of the shared base vector.
    deadline_ms:
        Optional cooperative deadline for the read, in milliseconds.  The
        solve/execute layers poll a :class:`~repro.faults.budget.Budget` at
        their branch points; expiry yields a typed
        :class:`~repro.exceptions.DeadlineExceededError` or — once partial
        answers exist — a truncated result the serving layer flags
        ``degraded=True``.
    """

    keywords: Tuple[str, ...] = ()
    view: Optional[ViewRef] = None
    k: Optional[int] = None
    name: Optional[str] = None
    page_size: Optional[int] = None
    limit: Optional[int] = None
    offset: int = 0
    tenant: Optional[str] = None
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "keywords", tuple(self.keywords))


@dataclass(frozen=True)
class ViewInfo:
    """Snapshot description of one registered view."""

    view_id: str
    name: str
    keywords: Tuple[str, ...]
    k: int
    created_index: int
    tree_count: int
    alpha: Optional[float]


@dataclass(frozen=True)
class AnswerPage:
    """One page of a streamed ranked-answer read."""

    view_id: str
    index: int
    answers: Tuple[AnswerTuple, ...]
    has_more: bool

    def __len__(self) -> int:
        return len(self.answers)


@dataclass(frozen=True)
class RegisterSourceRequest:
    """Register a new data source and align it against the existing graph.

    Attributes
    ----------
    source:
        The new data source.
    strategy:
        An :class:`AlignmentStrategy` member or its string value.
    view:
        For the view-based strategy, the view whose information need drives
        the alignment; defaults to the most recently created view.
    matcher:
        Base matcher — an instance, or a registered matcher name resolved
        through :func:`repro.matching.base.resolve_matcher`; defaults to the
        session's first configured matcher.
    value_filter:
        If ``True``, restrict comparisons to attribute pairs with value
        overlap (requires indexing all current tables plus the new one).
    max_relations:
        Budget for the preferential strategy.
    """

    source: "DataSource"
    strategy: Union[str, AlignmentStrategy] = AlignmentStrategy.VIEW_BASED
    view: Optional[ViewRef] = None
    matcher: Optional[Union[str, "BaseMatcher"]] = None
    value_filter: bool = False
    max_relations: Optional[int] = 5


@dataclass(frozen=True)
class RegistrationResponse:
    """Outcome of a :class:`RegisterSourceRequest`."""

    source: str
    strategy: AlignmentStrategy
    edges_added: int
    attribute_comparisons: int
    candidate_relations: Tuple[str, ...]
    elapsed_seconds: float
    #: The full alignment artifact (correspondences, installed edges, ...).
    alignment: "AlignmentResult"


@dataclass(frozen=True)
class FeedbackRequest:
    """Annotate one answer of a view (paper Section 4).

    Attributes
    ----------
    view:
        The view whose answer is annotated.
    answer:
        The annotated answer (must carry provenance).
    kind:
        VALID / INVALID / PREFERRED_OVER.
    other:
        For PREFERRED_OVER, the answer that should rank lower.
    replay:
        How many times the generalized event is applied in a row.
    tenant:
        Optional tenant name: the learned update lands in that tenant's
        weight overlay, personalizing their ranking without perturbing the
        shared base weights.
    """

    view: ViewRef
    answer: AnswerTuple
    kind: AnnotationKind = AnnotationKind.VALID
    other: Optional[AnswerTuple] = None
    replay: int = 1
    tenant: Optional[str] = None


@dataclass(frozen=True)
class FeedbackResponse:
    """Outcome of one feedback interaction.

    No view is refreshed by feedback: the weight vector's version moved, and
    each view re-solves lazily the next time it is read.
    """

    view_id: str
    events: Tuple[FeedbackEvent, ...]
    steps_processed: int
    weight_change: float
    weights_version: int


@dataclass(frozen=True)
class SystemStats:
    """Aggregate counters of one service session.

    ``view_refreshes`` / ``view_refreshes_skipped`` expose the payoff of the
    pull-based consistency model: a skipped refresh is a read that found its
    view's ``(weights.version, structure_version)`` snapshot still current.

    ``backend`` / ``storage_bytes`` describe the session's storage layer:
    the :class:`~repro.storage.base.StorageBackend` kind serving the
    catalog (``"memory"`` / ``"sqlite"``) and the approximate bytes of
    relation data it holds.

    ``snapshot_version`` counts the full session snapshots written so far
    (``0`` = the session has never been persisted); it advances on the
    first :meth:`~repro.api.service.QService.save` and on every journal
    compaction.  ``journal_entries`` is the number of incremental delta
    entries currently pending on top of that snapshot.

    The registration-scaling block describes the candidate tiers and the
    scoring pool: ``sketch_candidates`` counts attribute pairs proposed by
    the approximate MinHash/LSH + rare-token tier, ``exact_candidates``
    those surviving exact re-verification, ``pairs_scored`` the relation
    pairs the base matcher actually ran on, and ``pool_workers`` the
    largest scoring pool any registration used (1 = all serial).
    """

    sources: int
    relations: int
    attributes: int
    views: int
    feedback_events: int
    learner_steps: int
    registrations: int
    weights_version: int
    structure_version: int
    view_refreshes: int
    view_refreshes_skipped: int
    backend: str = "memory"
    storage_bytes: int = 0
    snapshot_version: int = 0
    journal_entries: int = 0
    profile_shards: int = 1
    sketch_candidates: int = 0
    exact_candidates: int = 0
    pairs_scored: int = 0
    pool_workers: int = 1
    pair_memo_entries: int = 0
    #: Tenants with a weight overlay in this session (0 = single-tenant).
    tenants: int = 0
    #: Storage-pushdown counters (0 on backends without the capability):
    #: per-relation filtered scans, whole-query SELECTs, and windowed
    #: ranked-union round trips (one per batch, however many view queries
    #: it carried) served inside the backend instead of the Python engine.
    pushdown_scans: int = 0
    pushdown_queries: int = 0
    pushdown_union_queries: int = 0
    #: Posting persistence: full in-memory posting rebuilds the profile
    #: index performed (0 across a warm open served by current posting
    #: tables) and posting-table rewrites pushed to the backend.
    posting_builds: int = 0
    posting_syncs: int = 0
    #: Steiner-network snapshot cache (shared across a session's reads):
    #: cache hits, from-scratch builds, and overlay rescores (a tenant
    #: network derived from its base twin instead of rebuilt).
    steiner_cache_hits: int = 0
    steiner_cache_builds: int = 0
    steiner_rescores: int = 0
