"""Typed error surface of the service API.

All errors derive from :class:`~repro.exceptions.QError` (the library-wide
base), so existing ``except QError`` handlers keep working; the classes
re-exported here are the ones the typed API raises on bad requests.  They
are *defined* in :mod:`repro.exceptions` to keep the hierarchy in one
module (lower layers such as :mod:`repro.matching` raise them too, without
importing ``repro.api``).
"""

from __future__ import annotations

from ..exceptions import (
    InvalidRequestError,
    QError,
    RegistrationError,
    UnknownMatcherError,
    UnknownStrategyError,
    UnknownViewError,
)

__all__ = [
    "InvalidRequestError",
    "QError",
    "RegistrationError",
    "UnknownMatcherError",
    "UnknownStrategyError",
    "UnknownViewError",
]
