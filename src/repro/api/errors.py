"""Typed error surface of the service API.

All errors derive from :class:`~repro.exceptions.ReproError` (the
library-wide base, historically named ``QError``), so existing ``except
QError`` handlers keep working; the classes re-exported here are the ones
the typed API and the serving layer raise.  They are *defined* in
:mod:`repro.exceptions` to keep the hierarchy in one module (lower layers
such as :mod:`repro.matching` raise them too, without importing
``repro.api``).
"""

from __future__ import annotations

from ..exceptions import (
    DeadlineExceededError,
    InvalidRequestError,
    QError,
    RegistrationError,
    ReproError,
    ServerClosedError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    TransientStorageError,
    UnknownMatcherError,
    UnknownStrategyError,
    UnknownViewError,
)

__all__ = [
    "DeadlineExceededError",
    "InvalidRequestError",
    "QError",
    "RegistrationError",
    "ReproError",
    "ServerClosedError",
    "ServiceOverloadedError",
    "ServiceUnavailableError",
    "TransientStorageError",
    "UnknownMatcherError",
    "UnknownStrategyError",
    "UnknownViewError",
]
