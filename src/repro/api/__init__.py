"""repro.api — the typed, supported public surface of the Q reproduction.

Entry point for query / feedback / registration traffic:

* :class:`QService` — the session object (sources, views, feedback,
  registration) with **lazy pull-based view consistency**: mutations bump
  version counters, reads refresh at most once when stale.
* Frozen request/response dataclasses — :class:`QueryRequest`,
  :class:`AnswerPage`, :class:`RegisterSourceRequest`,
  :class:`FeedbackRequest`, :class:`SystemStats` and friends.
* :class:`AlignmentStrategy` — typed strategy dispatch (plus the matcher
  registry in :mod:`repro.matching`).
* Typed errors in :mod:`repro.api.errors`, all deriving from
  :class:`~repro.exceptions.QError`.

Quickstart
----------
>>> from repro.api import QService, QueryRequest
>>> from repro.datasets import build_interpro_go
>>> service = QService(sources=build_interpro_go().catalog.sources())
>>> service.bootstrap_alignments(top_y=2)             # doctest: +SKIP
>>> for page in service.answers(QueryRequest(keywords=("membrane", "title"))):
...     print(page.index, len(page.answers))          # doctest: +SKIP

The legacy :class:`repro.QSystem` facade remains importable but delegates
here and emits a :class:`DeprecationWarning`.
"""

from ..persist import SaveReport, SnapshotError
from .errors import (
    InvalidRequestError,
    QError,
    RegistrationError,
    UnknownMatcherError,
    UnknownStrategyError,
    UnknownViewError,
)
from .service import QService
from .strategies import (
    AlignerSpec,
    AlignmentStrategy,
    available_strategies,
    build_aligner,
    register_aligner,
)
from .streaming import drain, paginate
from .types import (
    AnswerPage,
    FeedbackRequest,
    FeedbackResponse,
    QueryRequest,
    RegisterSourceRequest,
    RegistrationResponse,
    ServiceConfig,
    SystemStats,
    ViewInfo,
)
from .views import ViewRecord, ViewRegistry

__all__ = [
    "AlignerSpec",
    "AlignmentStrategy",
    "AnswerPage",
    "FeedbackRequest",
    "FeedbackResponse",
    "InvalidRequestError",
    "QError",
    "QService",
    "QueryRequest",
    "RegisterSourceRequest",
    "RegistrationError",
    "RegistrationResponse",
    "SaveReport",
    "ServiceConfig",
    "SnapshotError",
    "SystemStats",
    "UnknownMatcherError",
    "UnknownStrategyError",
    "UnknownViewError",
    "ViewInfo",
    "ViewRecord",
    "ViewRegistry",
    "available_strategies",
    "build_aligner",
    "drain",
    "paginate",
    "register_aligner",
]
