"""Typed alignment-strategy dispatch: enum + aligner factory registry.

The seed :class:`~repro.core.qsystem.QSystem` dispatched aligner strategies
on raw strings (``strategy="view_based"``), failing with an untyped message
on typos.  The service API replaces that with :class:`AlignmentStrategy`
— an enum whose values coincide with the historical strings, so persisted
configuration keeps working — and a registry mapping each strategy to a
factory that builds the concrete :class:`~repro.alignment.base.BaseAligner`
from an :class:`AlignerSpec`.  Unknown names raise
:class:`~repro.exceptions.UnknownStrategyError`, which lists the valid
options.

Third-party strategies can join the dispatch by calling
:func:`register_aligner` with their own factory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple, Union

from ..alignment.base import BaseAligner
from ..alignment.exhaustive import ExhaustiveAligner
from ..alignment.parallel import POOL_THREAD, resolve_workers
from ..alignment.preferential import PreferentialAligner
from ..alignment.profile_blocked import ProfileBlockedAligner
from ..alignment.view_based import ViewBasedAligner
from ..exceptions import RegistrationError, UnknownStrategyError
from ..matching.base import BaseMatcher
from ..matching.value_overlap import ValueOverlapFilter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.view import RankedView


class AlignmentStrategy(enum.Enum):
    """The aligner strategies of paper Section 3.3.

    Values equal the historical string names so that ``"view_based"`` (and
    friends) from the deprecated ``QSystem`` API coerce losslessly.
    """

    EXHAUSTIVE = "exhaustive"
    VIEW_BASED = "view_based"
    PREFERENTIAL = "preferential"
    PROFILE_BLOCKED = "profile_blocked"

    @classmethod
    def coerce(cls, value: Union[str, "AlignmentStrategy"]) -> "AlignmentStrategy":
        """Resolve a strategy reference; raise a typed error listing options.

        Accepts enum members (returned unchanged) and their string values
        (case-insensitive).

        Raises
        ------
        UnknownStrategyError
            If ``value`` names no registered strategy.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                pass
        raise UnknownStrategyError(value, available_strategies())


@dataclass
class AlignerSpec:
    """Everything an aligner factory may need to build its aligner.

    Attributes
    ----------
    matcher:
        The base matcher the aligner will call (``BASEMATCHER``).
    top_y:
        Candidate alignments kept per attribute.
    value_filter:
        Optional value-overlap comparison filter.
    max_relations:
        Budget for the preferential strategy.
    view:
        The driving view for the view-based strategy (must be fresh — the
        service pulls it before building the spec).
    profile_index:
        The service's shared
        :class:`~repro.profiling.index.CatalogProfileIndex`; injected into
        the aligner (and from there into the matcher) so candidate
        generation reads the incrementally maintained profiles.
    workers, pool:
        Matcher-scoring pool size and kind for the built aligner (see
        :func:`repro.alignment.parallel.score_pairs`); applied centrally by
        :func:`build_aligner`, so every strategy — including third-party
        ones — gets deterministic parallel scoring for free.
    min_shared_values:
        Exact-tier acceptance floor for the profile-blocked strategy.
    """

    matcher: BaseMatcher
    top_y: int = 2
    value_filter: Optional[ValueOverlapFilter] = None
    max_relations: Optional[int] = 5
    view: Optional["RankedView"] = None
    profile_index: Optional[object] = None
    workers: int = 1
    pool: str = POOL_THREAD
    min_shared_values: int = 1


AlignerFactory = Callable[[AlignerSpec], BaseAligner]

_STRATEGY_REGISTRY: Dict[AlignmentStrategy, AlignerFactory] = {}


def register_aligner(strategy: AlignmentStrategy, factory: AlignerFactory) -> None:
    """Register (or replace) the factory building ``strategy``'s aligner."""
    _STRATEGY_REGISTRY[strategy] = factory


def available_strategies() -> Tuple[str, ...]:
    """Values of every strategy the enum knows, sorted."""
    return tuple(sorted(member.value for member in AlignmentStrategy))


def build_aligner(
    strategy: Union[str, AlignmentStrategy], spec: AlignerSpec
) -> BaseAligner:
    """Build the aligner for ``strategy`` from ``spec`` via the registry.

    Raises
    ------
    UnknownStrategyError
        If the strategy is unknown or has no registered factory.
    RegistrationError
        From the view-based factory when the spec carries no usable view.
    """
    member = AlignmentStrategy.coerce(strategy)
    factory = _STRATEGY_REGISTRY.get(member)
    if factory is None:
        raise UnknownStrategyError(member.value, tuple(sorted(s.value for s in _STRATEGY_REGISTRY)))
    aligner = factory(spec)
    aligner.workers = resolve_workers(spec.workers)
    aligner.pool = spec.pool
    return aligner


def _build_exhaustive(spec: AlignerSpec) -> BaseAligner:
    return ExhaustiveAligner(
        spec.matcher,
        top_y=spec.top_y,
        value_filter=spec.value_filter,
        profile_index=spec.profile_index,
    )


def _build_preferential(spec: AlignerSpec) -> BaseAligner:
    return PreferentialAligner(
        spec.matcher,
        top_y=spec.top_y,
        value_filter=spec.value_filter,
        max_relations=spec.max_relations,
        profile_index=spec.profile_index,
    )


def _build_view_based(spec: AlignerSpec) -> BaseAligner:
    view = spec.view
    if view is None:
        raise RegistrationError(
            "view_based registration requires an existing view; create one first"
        )
    alpha = view.alpha
    if alpha is None:
        raise RegistrationError("the driving view has no answers; refresh it first")
    # The aligner operates on the persistent search graph, which has no
    # keyword nodes; the α-neighborhood is therefore computed in the view's
    # expanded query graph.
    return ViewBasedAligner(
        spec.matcher,
        keyword_nodes=view.terminals,
        alpha=alpha,
        top_y=spec.top_y,
        value_filter=spec.value_filter,
        neighborhood_graph=view.query_graph.graph,
        profile_index=spec.profile_index,
    )


def _build_profile_blocked(spec: AlignerSpec) -> BaseAligner:
    if spec.profile_index is None:
        raise RegistrationError(
            "profile_blocked registration requires the service's profile index"
        )
    return ProfileBlockedAligner(
        spec.matcher,
        top_y=spec.top_y,
        value_filter=spec.value_filter,
        profile_index=spec.profile_index,
        min_shared_values=spec.min_shared_values,
    )


register_aligner(AlignmentStrategy.EXHAUSTIVE, _build_exhaustive)
register_aligner(AlignmentStrategy.PREFERENTIAL, _build_preferential)
register_aligner(AlignmentStrategy.VIEW_BASED, _build_view_based)
register_aligner(AlignmentStrategy.PROFILE_BLOCKED, _build_profile_blocked)
