"""View registry: stable ids, explicit creation order, lazy-sync bookkeeping.

The seed ``QSystem`` kept views in a plain name-keyed dict and recovered the
"latest view" with ``next(reversed(dict.values()))`` — an insertion-order
hack that silently changed meaning when a view name was reused.  The
registry replaces that with:

* a **stable id** per view (``view-0001``, ``view-0002``, ...): ids are
  never reused and never change for as long as their view is registered —
  re-registering a *name* replaces the shadowed view (seed dict semantics)
  and retires its id, which then resolves to a typed
  :class:`~repro.exceptions.UnknownViewError`;
* an explicit **creation-order** list, making :meth:`ViewRegistry.latest` a
  documented accessor: the most recently *created* view, regardless of any
  name reuse;
* per-view **sync state** — the ``(weights.version, structure_version)``
  snapshot a view last refreshed against, which is what the pull-based
  service compares to decide whether a read must refresh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..core.view import RankedView
from ..exceptions import UnknownViewError


@dataclass
class ViewRecord:
    """One registered view plus its lazy-consistency bookkeeping.

    ``synced_weights_version`` / ``synced_structure_version`` are the search
    graph versions the view last synchronized with (``None`` before the
    first sync).  A mutation never touches them — only a read does, after
    refreshing — so staleness is always detectable by comparison.
    """

    view_id: str
    name: str
    view: RankedView
    created_index: int
    synced_weights_version: Optional[int] = None
    synced_structure_version: Optional[int] = None


class ViewRegistry:
    """Orders and resolves the views of one service session."""

    def __init__(self) -> None:
        self._records: List[ViewRecord] = []
        self._by_id: Dict[str, ViewRecord] = {}
        self._by_name: Dict[str, ViewRecord] = {}
        self._created = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add(self, view: RankedView, name: str) -> ViewRecord:
        """Register ``view`` under ``name``; returns its record.

        The stable id comes from a monotonically increasing creation
        counter and is never reused.  Re-registering a name *replaces* the
        shadowed view (the historical dict behavior): its record is evicted
        from the registry, so long-running sessions that recreate views
        under one name do not accrue unbounded records — and mutations do
        not keep paying for views nothing can reach anymore.
        """
        shadowed = self._by_name.get(name)
        if shadowed is not None:
            self._records.remove(shadowed)
            del self._by_id[shadowed.view_id]
        self._created += 1
        record = ViewRecord(
            view_id=f"view-{self._created:04d}",
            name=name,
            view=view,
            created_index=self._created - 1,
        )
        self._records.append(record)
        self._by_id[record.view_id] = record
        self._by_name[name] = record
        return record

    def restore(
        self,
        view: RankedView,
        name: str,
        view_id: str,
        created_index: int,
        synced_weights_version: Optional[int] = None,
        synced_structure_version: Optional[int] = None,
    ) -> ViewRecord:
        """Re-register a view restored from a session snapshot.

        Unlike :meth:`add`, the id, creation index and sync state are
        supplied by the caller (they come from the snapshot) and the
        creation counter is *not* advanced — :meth:`set_created` restores it
        separately so post-restore :meth:`add` calls continue the original
        id sequence.
        """
        record = ViewRecord(
            view_id=view_id,
            name=name,
            view=view,
            created_index=created_index,
            synced_weights_version=synced_weights_version,
            synced_structure_version=synced_structure_version,
        )
        self._records.append(record)
        self._by_id[record.view_id] = record
        self._by_name[name] = record
        return record

    @property
    def created_count(self) -> int:
        """How many views have ever been created (ids are never reused)."""
        return self._created

    def set_created(self, value: int) -> None:
        """Restore the creation counter (session restore only)."""
        self._created = value

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def get(self, ref: str) -> ViewRecord:
        """Resolve a view id or name.

        Raises
        ------
        UnknownViewError
            Listing the known ids and names.
        """
        record = self._by_id.get(ref) or self._by_name.get(ref)
        if record is None:
            raise UnknownViewError(ref, self.known_references())
        return record

    def find_by_name(self, name: str) -> Optional[ViewRecord]:
        """The record currently registered under ``name``, if any."""
        return self._by_name.get(name)

    def resolve(self, ref: Union[str, RankedView, ViewRecord]) -> ViewRecord:
        """Resolve any supported view reference to its record.

        Strings resolve as ids or names; any other object is matched by
        identity against the registered view instances.
        """
        if isinstance(ref, ViewRecord):
            return ref
        if isinstance(ref, str):
            return self.get(ref)
        for record in self._records:
            if record.view is ref:
                return record
        raise UnknownViewError(
            f"<unregistered view object {ref!r}>", self.known_references()
        )

    def known_references(self) -> Tuple[str, ...]:
        """All resolvable ids and names (for error messages)."""
        return tuple(self._by_id) + tuple(self._by_name)

    # ------------------------------------------------------------------
    # Order and iteration
    # ------------------------------------------------------------------
    def latest(self) -> Optional[ViewRecord]:
        """The most recently *created* view, or ``None`` when empty.

        This is the documented successor of the seed's
        ``next(reversed(views.values()))`` hack: creation order is explicit
        and survives name reuse (a re-registered name does not resurrect an
        older creation slot).
        """
        if not self._records:
            return None
        return self._records[-1]

    def records(self) -> Tuple[ViewRecord, ...]:
        """All records in creation order."""
        return tuple(self._records)

    def by_name(self) -> Dict[str, RankedView]:
        """Name → view mapping (the deprecated ``QSystem.views`` shape)."""
        return {name: record.view for name, record in self._by_name.items()}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ViewRecord]:
        return iter(self._records)

    def __contains__(self, ref: object) -> bool:
        return isinstance(ref, str) and (ref in self._by_id or ref in self._by_name)
