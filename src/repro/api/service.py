"""The Q service session: typed, pull-based facade over the whole pipeline.

:class:`QService` is the supported public surface of the reproduction (the
deprecated :class:`~repro.core.qsystem.QSystem` delegates here).  It differs
from the seed facade in three structural ways:

**Lazy pull-based view consistency.**  Mutations — feedback, source
registration, bootstrap alignment — no longer refresh any view.  They only
move version counters (the shared :class:`~repro.graph.features.WeightVector`
version, the search graph's ``structure_version``) and perform cheap
invalidations (answer-cache drops on registration).  A view is refreshed *at
most once, on read*, when its recorded ``(weights.version,
structure_version)`` snapshot is stale.  Replaying ``n`` feedback events
against ``v`` views therefore costs ``O(n + reads)`` refreshes instead of
the eager model's ``O(n · v)``.

**One persistent learner.**  The session owns a single
:class:`~repro.learning.mira.OnlineLearner`; each feedback call hands it the
originating view's query graph (where the keyword terminals live) while the
weight vector — shared across all graphs — accumulates every update.  The
seed rebuilt a learner per feedback call.

**Streaming reads.**  :meth:`QService.answers` returns an iterator of
:class:`~repro.api.types.AnswerPage`\\ s backed by
:meth:`~repro.core.view.RankedView.stream_answers`: the k-best Steiner solve
runs eagerly (it determines the ranking) but conjunctive-query execution is
deferred until the stream reaches each query's answers.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import fields as dataclass_fields
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..alignment.base import AlignmentResult, install_associations
from ..alignment.registration import SourceRegistrar
from ..core.view import RankedView
from ..datastore.database import Catalog, DataSource
from ..datastore.provenance import AnswerTuple
from ..engine.context import ExecutionContext
from ..exceptions import InvalidRequestError, RegistrationError
from ..graph.query_graph import QueryGraph, QueryGraphBuilder
from ..graph.search_graph import SearchGraph
from ..learning.feedback import (
    AnswerAnnotation,
    FeedbackEvent,
    FeedbackGeneralizer,
    FeedbackLog,
)
from ..learning.mira import OnlineLearner
from ..learning.overlays import TenantRegistry, graph_with_weights
from ..matching.base import BaseMatcher, Correspondence, resolve_matcher
from ..matching.ensemble import MatcherEnsemble
from ..matching.mad import MadMatcher
from ..matching.metadata_matcher import MetadataMatcher
from ..matching.value_overlap import ValueOverlapFilter
from ..obs import Observability
from ..obs.tracing import active_trace
from ..persist import (
    FileSessionStore,
    SessionPersistence,
    SessionStore,
    SnapshotError,
    SqliteSessionStore,
    restore_core,
    sniff_sqlite_file,
)
from ..persist.snapshot import (
    empty_query_graph,
    restore_event,
    restore_graph_config,
    restore_query_graph,
)
from ..profiling.index import CatalogProfileIndex
from .strategies import AlignerSpec, AlignmentStrategy, build_aligner
from .streaming import paginate
from .types import (
    AnswerPage,
    FeedbackRequest,
    FeedbackResponse,
    QueryRequest,
    RegisterSourceRequest,
    RegistrationResponse,
    ServiceConfig,
    SystemStats,
    ViewInfo,
    ViewRef,
)
from .views import ViewRecord, ViewRegistry


def _restore_config(payload) -> ServiceConfig:
    """Rebuild a :class:`ServiceConfig` from its persisted payload.

    Field names come from the dataclass itself — the same source
    :func:`repro.persist.session.service_config_payload` serializes from —
    so a future config knob round-trips without touching either side.
    """
    config = ServiceConfig()
    for field in dataclass_fields(ServiceConfig):
        if field.name != "graph" and field.name in payload:
            setattr(config, field.name, payload[field.name])
    if payload.get("graph"):
        config.graph = restore_graph_config(payload["graph"])
    return config


class QService:
    """A Q session: sources, views, feedback and registration behind typed requests.

    Parameters
    ----------
    sources:
        Initial (already interlinked) data sources.
    matchers:
        Matcher stack for bootstrap alignment and registration; defaults to
        the metadata matcher plus MAD.
    config:
        Session knobs; see :class:`~repro.api.types.ServiceConfig`.
    backend:
        Storage backend for the session's catalog — a
        :class:`~repro.storage.base.StorageBackend` instance or a name
        (``"memory"``, ``"sqlite"``, ``"sqlite:<path>"``).  Defaults to the
        ``REPRO_BACKEND`` environment variable, falling back to per-table
        memory storage.  A persistent SQLite backend that already holds a
        catalog is reopened: its sources load without re-ingest and every
        registration routes through the backend's bulk ingest.
    autosave:
        Durable sessions: ``True`` checkpoints the session after every
        mutating call (requires a SQLite-backed catalog, whose database
        hosts the snapshot), a path value does the same into that JSON
        sidecar file, ``False`` (the default) leaves persistence to
        explicit :meth:`save` calls.
    """

    def __init__(
        self,
        sources: Optional[Iterable[DataSource]] = None,
        matchers: Optional[Sequence[BaseMatcher]] = None,
        config: Optional[ServiceConfig] = None,
        backend=None,
        autosave=False,
    ) -> None:
        self.config = config or ServiceConfig()
        catalog = Catalog(sources, backend=backend)
        graph = SearchGraph(config=self.config.graph)
        graph.add_catalog(catalog)
        profile_index = CatalogProfileIndex.from_catalog(
            catalog, **self._profile_index_kwargs()
        )
        self._assemble(catalog, graph, profile_index, matchers)
        self._init_persistence(autosave)

    def _profile_index_kwargs(self) -> dict:
        """Constructor knobs of the session's profile index, from the config.

        On warm restore the *persisted* structural configuration wins
        instead (:meth:`CatalogProfileIndex.from_state` applies the saved
        shard count and sketch shape), so a reopened index routes exactly
        like the one that saved.
        """
        config = self.config
        sketch = None
        if config.sketch_num_perm > 0:
            from ..profiling.sketches import SketchConfig

            bands = config.sketch_bands or max(config.sketch_num_perm // 2, 1)
            sketch = SketchConfig(num_perm=config.sketch_num_perm, bands=bands)
        return {
            "shard_count": max(int(config.profile_shards), 1),
            "sketch": sketch,
            "pair_memo_limit": config.pair_memo_limit,
            "rare_token_df": config.sketch_rare_token_df,
        }

    def _assemble(
        self,
        catalog: Catalog,
        graph: SearchGraph,
        profile_index: CatalogProfileIndex,
        matchers: Optional[Sequence[BaseMatcher]],
    ) -> None:
        """Wire the session around its three core structures.

        Shared between cold construction (``__init__`` builds graph and
        profile index from the catalog) and warm restore (:meth:`open`
        rebuilds them from a snapshot + journal without recomputation).
        """
        self.catalog = catalog
        self.graph = graph
        #: The session's observability spine (see :mod:`repro.obs`): one
        #: metrics registry + tracer + explain/slow-query logs, shared with
        #: any :class:`~repro.service.server.QServer` wrapped around this
        #: session.  Built before everything else so the wiring below can
        #: register gauges over the live structures.
        self.obs = Observability.from_config(self.config)
        #: Shared per-attribute profiles + posting lists over the catalog,
        #: profiled once per source and updated incrementally by the
        #: registrar (see :mod:`repro.profiling`).  Every matcher and value
        #: filter of this session reads it instead of re-deriving state.
        self.profile_index = profile_index
        self.matchers: List[BaseMatcher] = (
            list(matchers) if matchers else [MetadataMatcher(), MadMatcher()]
        )
        #: Backend-persisted posting tables (``_repro_postings_*``): on a
        #: posting-capable backend the profile index's value/token posting
        #: lists and tf-idf vectors live inside the catalog database, so a
        #: warm open serves candidate generation by indexed SQL instead of
        #: rebuilding postings in memory.  ``sync`` here is a no-op when
        #: the saved tables already describe the current index epoch — the
        #: warm-open fast path.
        self._posting_store = None
        backend = catalog.backend
        if backend is not None and getattr(backend, "supports_posting_tables", False):
            from ..storage.postings import PostingStore

            self._posting_store = PostingStore(backend)
            self.profile_index.attach_posting_store(self._posting_store)
            self._posting_store.sync(self.profile_index)
        self.ensemble = MatcherEnsemble(
            self.matchers, top_y=self.config.top_y, profile_index=self.profile_index
        )
        self.registrar = SourceRegistrar(
            self.catalog, self.graph, indexes=(self.profile_index,)
        )
        self.views = ViewRegistry()
        self.feedback_log = FeedbackLog(window_size=self.config.feedback_window)
        self._builder: Optional[QueryGraphBuilder] = None
        # One execution context for the whole session: all views share its
        # scan and join-index caches; registration events invalidate it.
        self.engine_context = ExecutionContext(self.catalog)
        self.registrar.add_listener(self._on_registration)
        #: The session's single persistent learner.  Feedback calls pass the
        #: originating view's query graph per event; the shared weight
        #: vector makes every update visible to all views.
        self.learner = OnlineLearner(self.graph, k=self.config.top_k)
        #: Per-tenant weight overlays over the shared base vector (created
        #: on first use by a tenant-scoped query or feedback request).
        self.tenants = TenantRegistry(self.graph.weights)
        # (view_id, tenant) -> (base query-graph identity, tenant view).
        # A tenant view shares the base view's expansion (same nodes, edge
        # ids, signatures) but prices it under the tenant's overlay; it is
        # rebuilt whenever the base view re-expands (object identity moves).
        self._tenant_views: Dict[Tuple[str, str], Tuple[QueryGraph, RankedView]] = {}
        self._refreshes = 0
        self._refreshes_skipped = 0
        #: Registration-scaling counters (surfaced through :meth:`stats`).
        self._pairs_scored = 0
        self._pool_workers = 1
        #: At-most-once bookkeeping for the serving layer's retrying writer
        #: lane: idempotency keys of applied mutations (insertion-ordered,
        #: bounded) plus the key of the mutation currently being applied.
        #: A key lands in :attr:`_applied_ops` the moment its mutation is
        #: complete in memory — *before* the autosave — so a retry after a
        #: failed persistence attempt never re-applies.  Keys (not results)
        #: are persisted in the session overlay.
        self._applied_ops: "OrderedDict[str, object]" = OrderedDict()
        self._applied_ops_limit = 1024
        self._pending_op_key: Optional[str] = None
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Bind the session's live counters onto the metrics registry.

        Everything here is a callback gauge: the hot paths keep mutating
        their plain attributes (no lock, no indirection), and the registry
        reads the live objects only when scraped.  :meth:`stats` reads the
        re-homed counters back *through* the registry, making
        :class:`~repro.api.types.SystemStats` a view over it.
        """
        reg = self.obs.registry
        gauge = reg.gauge
        gauge("q_sources", "Registered data sources", fn=lambda: self.catalog.source_count)
        gauge("q_relations", "Relations in the catalog", fn=lambda: self.catalog.relation_count)
        gauge("q_attributes", "Attributes in the catalog", fn=lambda: self.catalog.attribute_count)
        gauge("q_views", "Registered ranked views", fn=lambda: len(self.views))
        gauge("q_tenants", "Tenants holding a weight overlay", fn=lambda: len(self.tenants))
        gauge(
            "q_feedback_events_total",
            "Feedback events in the session log",
            fn=lambda: len(self.feedback_log),
        )
        gauge(
            "q_learner_steps_total",
            "MIRA learner steps processed",
            fn=lambda: self.learner.steps_processed,
        )
        gauge(
            "q_registrations_total",
            "Source registrations performed",
            fn=lambda: self.registrar.epoch,
        )
        gauge(
            "q_weights_version", "Shared weight-vector version", fn=lambda: self.graph.weights.version
        )
        gauge(
            "q_structure_version",
            "Search-graph structure version",
            fn=lambda: self.graph.structure_version,
        )
        gauge(
            "q_view_refreshes_total",
            "Materializing view refreshes/solves",
            fn=lambda: self._refreshes,
        )
        gauge(
            "q_view_refreshes_skipped_total",
            "Reads whose view snapshot was already current",
            fn=lambda: self._refreshes_skipped,
        )
        stats = self.engine_context.statistics
        gauge(
            "q_pushdown_scans_total",
            "Per-relation filtered scans served inside the backend",
            fn=lambda: stats.pushdown_scans,
        )
        gauge(
            "q_pushdown_queries_total",
            "Whole conjunctive queries served inside the backend",
            fn=lambda: stats.pushdown_queries,
        )
        gauge(
            "q_pushdown_union_queries_total",
            "Windowed ranked-union round trips served inside the backend",
            fn=lambda: stats.pushdown_union_queries,
        )
        steiner = self.engine_context.steiner_cache
        gauge(
            "q_steiner_cache_hits_total",
            "Steiner-network snapshot cache hits",
            fn=lambda: steiner.hits,
        )
        gauge(
            "q_steiner_cache_builds_total",
            "Steiner networks built from scratch",
            fn=lambda: steiner.builds,
        )
        gauge(
            "q_steiner_rescores_total",
            "Tenant networks derived from a cached base twin",
            fn=lambda: steiner.rescores,
        )
        gauge(
            "q_posting_builds_total",
            "Full in-memory posting rebuilds of the profile index",
            fn=lambda: self.profile_index.posting_builds,
        )
        gauge(
            "q_posting_syncs_total",
            "Posting-table rewrites pushed to the backend",
            fn=lambda: self._posting_store.syncs if self._posting_store is not None else 0,
        )
        gauge(
            "q_sketch_candidates_total",
            "Attribute pairs proposed by the MinHash/rare-token tier",
            fn=lambda: self.profile_index.sketch_candidates_generated,
        )
        gauge(
            "q_exact_candidates_total",
            "Candidate pairs surviving exact re-verification",
            fn=lambda: self.profile_index.exact_candidates_kept,
        )
        gauge(
            "q_pairs_scored_total",
            "Relation pairs the base matcher scored",
            fn=lambda: self._pairs_scored,
        )
        gauge(
            "q_pool_workers",
            "Largest registration scoring pool used",
            fn=lambda: self._pool_workers,
        )
        gauge(
            "q_profile_shards",
            "Hash shards of the profile index",
            fn=lambda: self.profile_index.shard_count,
        )
        gauge(
            "q_pair_memo_entries",
            "Entries in the schema-fingerprint pair memo",
            fn=lambda: self.profile_index.pair_memo_size,
        )

    def _init_persistence(self, autosave) -> None:
        self._persistence: Optional[SessionPersistence] = None
        self._autosave = bool(autosave)
        #: Sidecar path remembered from ``autosave=<path>`` or the first
        #: explicit ``save(path)``; ``None`` for in-database sessions.
        self._save_path = None
        if autosave and not isinstance(autosave, bool):
            self._save_path = autosave
        if self._autosave and self._save_path is None:
            # Fail at construction, not on the first (already applied)
            # mutation: autosave=True needs somewhere to write.
            backend = self.catalog.backend
            if backend is None or not backend.supports_session_store:
                raise SnapshotError(
                    "autosave=True needs a session-capable (SQLite) catalog "
                    "backend; pass autosave=<path> to checkpoint a "
                    "memory-backed session into a sidecar file"
                )

    # ------------------------------------------------------------------
    # Sources and alignments
    # ------------------------------------------------------------------
    def add_source(self, source: DataSource) -> None:
        """Add a source to the catalog and graph *without* running alignment.

        Used when setting up the initial, already-interlinked databases
        (their joins come from foreign keys and hand-coded associations).
        """
        self.catalog.add_source(source)
        self.graph.add_source(source)
        self.profile_index.index_source(source)
        self._sync_builder(source)
        self._after_mutation()

    def bootstrap_alignments(self, top_y: Optional[int] = None) -> List[Correspondence]:
        """Run the matcher ensemble over all current tables and install edges.

        Reproduces the Section 5.2 setup.  Lazy semantics: installing the
        association edges bumps the graph's ``structure_version``; no view
        is refreshed here — each one rebuilds on its next read.
        """
        y = top_y if top_y is not None else self.config.top_y
        ensemble = MatcherEnsemble(self.matchers, top_y=y)
        alignments = ensemble.match_tables(self.catalog.all_tables())
        correspondences: List[Correspondence] = []
        for alignment in alignments:
            for matcher_name, confidence in alignment.confidences.items():
                correspondences.append(
                    Correspondence(
                        source=alignment.source,
                        target=alignment.target,
                        confidence=confidence,
                        matcher=matcher_name,
                    )
                )
        install_associations(self.graph, correspondences)
        self._after_mutation()
        return correspondences

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def create_view(
        self, request: Union[QueryRequest, Sequence[str]], materialize: bool = True
    ) -> ViewInfo:
        """Create a ranked view for a keyword query; returns its description.

        Creation performs the view's first solve (trees, queries, α) and
        records the version snapshot it ran against.  With ``materialize``
        (the default) the answers are executed and cached immediately — the
        seed semantics; pass ``materialize=False`` to defer all query
        execution to the first streamed read (pure pay-per-page).
        """
        if not isinstance(request, QueryRequest):
            request = QueryRequest(keywords=tuple(request))
        if not request.keywords:
            raise InvalidRequestError("create_view requires at least one keyword")
        k = request.k if request.k is not None else self.config.top_k
        if k < 1:
            raise InvalidRequestError(f"k must be >= 1, got {k}")
        view = RankedView(
            list(request.keywords),
            self.catalog,
            self.graph,
            k=k,
            builder=self._query_builder(),
            answer_limit=self.config.answer_limit,
            engine_context=self.engine_context,
        )
        if materialize:
            view.refresh()
        else:
            view.prepare()
        record = self.views.add(view, request.name or " ".join(request.keywords))
        self._mark_synced(record)
        self._refreshes += 1
        self._after_mutation()
        return self._info(record)

    def view(self, ref: Union[ViewRef, ViewRecord]) -> RankedView:
        """The live :class:`RankedView` behind a view reference."""
        return self.views.resolve(ref).view

    def view_info(self, ref: Union[ViewRef, ViewRecord]) -> ViewInfo:
        """Fresh description of a view (pulls it up to date first)."""
        record = self.views.resolve(ref)
        self._sync_view(record)
        return self._info(record)

    def latest_view(self) -> Optional[ViewInfo]:
        """The most recently created view, by explicit creation order."""
        record = self.views.latest()
        return self._info(record) if record is not None else None

    def _info(self, record: ViewRecord) -> ViewInfo:
        view = record.view
        return ViewInfo(
            view_id=record.view_id,
            name=record.name,
            keywords=tuple(view.keywords),
            k=view.k,
            created_index=record.created_index,
            tree_count=len(view.state.trees),
            alpha=view.alpha,
        )

    def _query_builder(self) -> QueryGraphBuilder:
        if self._builder is None:
            self._builder = QueryGraphBuilder(self.catalog)
        return self._builder

    def _sync_builder(self, source: DataSource) -> None:
        """Fold a newly admitted source into the shared query-graph builder.

        Incremental replacement for the seed's builder invalidation: the
        builder's value index and tf-idf corpus gain exactly the new
        source's entries (ending in the same state a from-scratch rebuild
        over the grown catalog would produce), and every existing view —
        which holds this builder — sees the new source's values on its next
        rebuild instead of expanding against a stale index.
        """
        if self._builder is not None:
            self._builder.add_source(source)

    # ------------------------------------------------------------------
    # Lazy consistency
    # ------------------------------------------------------------------
    def _versions(self) -> Tuple[int, int]:
        return self.graph.weights.version, self.graph.structure_version

    def _mark_synced(self, record: ViewRecord) -> None:
        weights_version, structure_version = self._versions()
        record.synced_weights_version = weights_version
        record.synced_structure_version = structure_version

    def _is_stale(self, record: ViewRecord) -> bool:
        weights_version, structure_version = self._versions()
        return (
            record.synced_weights_version != weights_version
            or record.synced_structure_version != structure_version
        )

    def _needs_rebuild(self, record: ViewRecord) -> bool:
        return record.synced_structure_version != self.graph.structure_version

    def _sync_view(self, record: ViewRecord, force: bool = False) -> bool:
        """Refresh ``record``'s view iff its version snapshot is stale.

        This is the *only* place a materializing refresh happens; mutations
        never call it.  Returns whether a refresh ran.  ``force`` refreshes
        even on a current snapshot (the eager-compat path used by the
        deprecated ``QSystem`` shim — still cheap, since the view's own
        incremental machinery skips the solver when nothing moved).
        """
        stale = self._is_stale(record)
        if not stale and not force:
            self._refreshes_skipped += 1
            return False
        record.view.refresh(rebuild_graph=self._needs_rebuild(record))
        self._mark_synced(record)
        self._refreshes += 1
        return True

    def prepare_view(self, ref: Union[ViewRef, ViewRecord]) -> ViewInfo:
        """Bring one view's *ranking* up to date without executing queries.

        The solve-only analogue of a read's lazy sync: stale views re-solve
        (re-expanding if the graph structure moved), current views are left
        alone.  The serving layer calls this in its writer lane before
        applying feedback, so annotation generalization always runs against
        the current retained trees.
        """
        record = self.views.resolve(ref)
        if self._is_stale(record):
            record.view.prepare(rebuild_graph=self._needs_rebuild(record))
            self._mark_synced(record)
            self._refreshes += 1
        else:
            self._refreshes_skipped += 1
        return self._info(record)

    def prepare_views(self, structural_only: bool = True) -> int:
        """Re-expand every view whose staleness demands it; returns the count.

        With ``structural_only`` (the default) only views whose query-graph
        *structure* is stale re-expand — the serving layer runs this in its
        single writer lane after each mutation so that all query-graph
        expansion (which consumes process-global edge ids) happens there,
        never on a concurrent read.  Weight-only staleness needs no eager
        work: rankings re-solve lazily under whatever weight vector prices
        the next read.  ``structural_only=False`` also re-solves
        weight-stale views (administrative warm-up).
        """
        prepared = 0
        for record in self.views.records():
            stale = self._needs_rebuild(record) if structural_only else self._is_stale(record)
            if stale:
                record.view.prepare(rebuild_graph=self._needs_rebuild(record))
                self._mark_synced(record)
                self._refreshes += 1
                prepared += 1
        return prepared

    def refresh_all_views(self, force: bool = False) -> int:
        """Pull every view up to date; returns how many actually refreshed.

        Exists for the eager-compat shim and for administrative warm-up;
        ordinary clients never need it — reads pull on demand.
        """
        refreshed = 0
        for record in self.views.records():
            if self._sync_view(record, force=force):
                refreshed += 1
        return refreshed

    # ------------------------------------------------------------------
    # Answers (streaming reads)
    # ------------------------------------------------------------------
    def answers(self, request: QueryRequest) -> Iterator[AnswerPage]:
        """Ranked answers of a view as a lazy stream of pages.

        The read pulls the view's consistency (refreshing at most once if
        stale), then streams: query execution happens page by page.  A
        ``tenant`` on the request ranks under that tenant's weight overlay.
        """
        record = self._record_for_query(request)
        stream = self._request_stream(record, request)
        page_size = (
            request.page_size
            if request.page_size is not None
            else self.config.default_page_size
        )
        return paginate(stream, record.view_id, page_size, limit=request.limit)

    def stream_answers(self, request: QueryRequest) -> Iterator[AnswerTuple]:
        """Like :meth:`answers` but yielding raw answers without paging."""
        record = self._record_for_query(request)
        stream = self._request_stream(record, request)
        if request.limit is not None:
            return itertools.islice(stream, request.limit)
        return stream

    def answers_page(self, request: QueryRequest) -> Tuple[AnswerTuple, ...]:
        """One random-access k-best page of a view's ranked answers.

        The ``LIMIT``/``OFFSET`` read: ``request.offset`` positions the
        window, ``request.page_size`` (default: the session's page size)
        bounds it.  On a window-capable backend the page is computed by a
        single windowed SELECT — ranking, tie-breaking and pagination run
        inside the database; elsewhere the Python ranked union slices.
        Either way the page equals the corresponding slice of a full
        :meth:`stream_answers` read.  A ``tenant`` prices the page under
        that tenant's overlay (always on the Python path).
        """
        record = self._record_for_query(request)
        page_size = (
            request.page_size
            if request.page_size is not None
            else self.config.default_page_size
        )
        trace = self.obs.tracer.trace("read")
        with trace:
            stale = self._is_stale(record)
            if stale:
                record.view.prepare(rebuild_graph=self._needs_rebuild(record))
                self._refreshes += 1
            else:
                self._refreshes_skipped += 1
            self._mark_synced(record)
            view = (
                record.view
                if request.tenant is None
                else self._tenant_view(record, request.tenant)
            )
            with trace.span("paginate"):
                page = tuple(view.answers_page(limit=page_size, offset=request.offset))
        self.obs.finish_read(
            trace,
            view_id=record.view_id,
            view_name=record.name,
            tenant=request.tenant,
        )
        return page

    def _request_stream(self, record: ViewRecord, request: QueryRequest) -> Iterator[AnswerTuple]:
        if request.tenant is None:
            return self._synced_stream(record)
        return self._tenant_stream(record, request.tenant)

    def _record_for_query(self, request: QueryRequest) -> ViewRecord:
        if request.view is not None:
            record = self.views.resolve(request.view)
            self._check_k(record, request)
            return record
        if not request.keywords:
            raise InvalidRequestError("QueryRequest needs keywords or a view reference")
        name = request.name or " ".join(request.keywords)
        record = self.views.find_by_name(name)
        if record is not None:
            self._check_k(record, request)
            return record
        # Auto-created views defer all query execution to the stream: the
        # first read is genuinely pay-per-page.
        info = self.create_view(request, materialize=False)
        return self.views.resolve(info.view_id)

    @staticmethod
    def _check_k(record: ViewRecord, request: QueryRequest) -> None:
        """A request must not silently get a ranking of a different width."""
        if request.k is not None and record.view.k != request.k:
            raise InvalidRequestError(
                f"view {record.name!r} ({record.view_id}) has k={record.view.k}; "
                f"the request asked for k={request.k} — omit k to read the "
                "existing ranking, or create a view under another name"
            )

    def _synced_stream(self, record: ViewRecord) -> Iterator[AnswerTuple]:
        """A ranked answer stream whose solve honors the lazy-sync contract."""
        stale = self._is_stale(record)
        stream = record.view.stream_answers(
            rebuild_graph=stale and self._needs_rebuild(record)
        )
        if stale:
            self._refreshes += 1
        else:
            self._refreshes_skipped += 1
        self._mark_synced(record)
        return stream

    # ------------------------------------------------------------------
    # Tenant overlays
    # ------------------------------------------------------------------
    def _tenant_stream(self, record: ViewRecord, tenant: str) -> Iterator[AnswerTuple]:
        """A ranked stream priced under ``tenant``'s weight overlay.

        The base view is first brought structurally up to date (its query
        graph is the shared expansion the tenant view re-prices), then the
        tenant view solves under the overlay.  The tenant view's own solve
        state is keyed on the overlay's effective version — base-weight
        movement and overlay movement both invalidate it.
        """
        stale = self._is_stale(record)
        if stale:
            record.view.prepare(rebuild_graph=self._needs_rebuild(record))
            self._refreshes += 1
        else:
            self._refreshes_skipped += 1
        self._mark_synced(record)
        return self._tenant_view(record, tenant).stream_answers()

    def _tenant_view(self, record: ViewRecord, tenant: str) -> RankedView:
        """The cached tenant-priced twin of ``record``'s view.

        Shares the base view's query-graph *topology* (same nodes, edge ids
        and therefore tree signatures) through a structural graph clone
        whose weight vector is the tenant's overlay.  Rebuilt whenever the
        base view re-expands (the query-graph object identity moves).
        """
        base_view = record.view
        key = (record.view_id, tenant)
        cached = self._tenant_views.get(key)
        if cached is not None and cached[0] is base_view.query_graph:
            return cached[1]
        overlay = self.tenants.overlay(tenant)
        base_qg = base_view.query_graph
        tenant_qg = QueryGraph(
            graph=graph_with_weights(base_qg.graph, overlay),
            keyword_nodes=dict(base_qg.keyword_nodes),
            matches=list(base_qg.matches),
        )
        view = RankedView(
            list(base_view.keywords),
            self.catalog,
            self.graph,
            k=base_view.k,
            builder=self._query_builder(),
            answer_limit=self.config.answer_limit,
            engine_context=self.engine_context,
            query_graph=tenant_qg,
            # Tenant overlays re-price the shared expansion per read; keep
            # their reads on the per-query Python path (fallback by
            # construction) instead of batching overlay-priced costs into
            # the shared windowed round trip.
            allow_window_pushdown=False,
        )
        self._tenant_views[key] = (base_qg, view)
        return view

    # ------------------------------------------------------------------
    # Registration of new sources
    # ------------------------------------------------------------------
    def _aligner_for(self, request: RegisterSourceRequest):
        """Build the aligner for one registration request.

        The value filter wraps the session's shared profile index (the
        registrar indexes the new source before aligning, so the filter sees
        it) — no per-registration index rebuild.
        """
        strategy = AlignmentStrategy.coerce(request.strategy)
        matcher = (
            resolve_matcher(request.matcher)
            if request.matcher is not None
            else self.matchers[0]
        )
        value_filter = None
        if request.value_filter:
            value_filter = ValueOverlapFilter.from_index(self.profile_index)

        driving_view: Optional[RankedView] = None
        if strategy is AlignmentStrategy.VIEW_BASED:
            record = (
                self.views.resolve(request.view)
                if request.view is not None
                else self.views.latest()
            )
            if record is None:
                raise RegistrationError(
                    "view_based registration requires an existing view; create one first"
                )
            # The driving view's α must reflect the current weights: pull it.
            self._sync_view(record)
            driving_view = record.view

        aligner = build_aligner(
            strategy,
            AlignerSpec(
                matcher=matcher,
                top_y=self.config.top_y,
                value_filter=value_filter,
                max_relations=request.max_relations,
                view=driving_view,
                profile_index=self.profile_index,
                workers=self.config.registration_workers,
                pool=self.config.registration_pool,
            ),
        )
        return strategy, aligner

    def _registration_response(
        self, request: RegisterSourceRequest, strategy: AlignmentStrategy, result: AlignmentResult
    ) -> RegistrationResponse:
        return RegistrationResponse(
            source=request.source.name,
            strategy=strategy,
            edges_added=len(result.edges_added),
            attribute_comparisons=result.attribute_comparisons,
            candidate_relations=tuple(result.candidate_relations),
            elapsed_seconds=result.elapsed_seconds,
            alignment=result,
        )

    def register_source(self, request: RegisterSourceRequest) -> RegistrationResponse:
        """Register a new source and align it against the existing graph.

        Lazy semantics: the registration invalidates the shared execution
        context and every view's answer cache exactly once (they may hold
        rows of mutated relations), and the graph's ``structure_version``
        moves — but no view is refreshed; each rebuilds on its next read.
        """
        strategy, aligner = self._aligner_for(request)
        result = self.registrar.register(request.source, aligner)
        self._sync_builder(request.source)
        self._after_mutation()
        return self._registration_response(request, strategy, result)

    def register_sources(
        self, requests: Sequence[RegisterSourceRequest]
    ) -> Tuple[RegistrationResponse, ...]:
        """Batch ingest: profile every new source in one pass, then align each.

        All sources are admitted to the catalog, graph and shared profile
        index **before** any alignment runs, so (a) profiling happens once
        per source rather than once per alignment, and (b) each source's
        alignment can also propose correspondences against the other batch
        members — registering interlinked sources in one batch wires them to
        each other as well as to the existing catalog.  Aligner construction
        is deferred into the batch (factories resolved after admission), so
        even the view-based strategy — which snapshots its driving view's
        query graph and α at build time — sees the whole batch: the view
        pull inside the factory rebuilds against the grown graph.  The
        batch is atomic: any failure rolls every batch source back.
        """
        requests = list(requests)
        if not requests:
            return ()
        strategies: List[AlignmentStrategy] = [
            AlignmentStrategy.coerce(request.strategy) for request in requests
        ]

        def factory(request: RegisterSourceRequest):
            return lambda: self._aligner_for(request)[1]

        results = self.registrar.register_batch(
            [request.source for request in requests],
            [factory(request) for request in requests],
        )
        for request in requests:
            self._sync_builder(request.source)
        self._after_mutation()
        return tuple(
            self._registration_response(request, strategy, result)
            for request, strategy, result in zip(requests, strategies, results)
        )

    def remove_source(self, name: str) -> DataSource:
        """Remove a source from the session: catalog, graph, indexes, builder.

        The inverse of :meth:`add_source` / :meth:`register_source` at the
        session level (association edges incident to the source's nodes are
        dropped with them).  Like registration, the removal invalidates the
        shared execution context and every view's answer cache once; views
        rebuild on their next read.  Removals are journaled, so a persisted
        session reopens without the source.
        """
        source = self.catalog.remove_source(name)
        self.graph.remove_source(name)
        self.profile_index.remove_source(name)
        if self._builder is not None:
            self._builder.remove_source(source)
        self.engine_context.invalidate()
        for record in self.views.records():
            record.view.invalidate_cache()
        self._after_mutation()
        return source

    def _on_registration(self, source: DataSource, result: AlignmentResult) -> None:
        # A new source changes both the data and the graph structure: drop
        # the engine's shared scan/join-index caches and every view's
        # per-signature answer cache — once, at mutation time.  The refresh
        # itself is deferred to each view's next read.
        del source
        self._pairs_scored += result.pairs_scored
        self._pool_workers = max(self._pool_workers, result.pool_workers)
        self.engine_context.invalidate()
        for record in self.views.records():
            record.view.invalidate_cache()

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def feedback(self, request: FeedbackRequest) -> FeedbackResponse:
        """Apply user feedback on one answer of a view.

        The annotation is generalized to the producing query tree, logged,
        and fed to the session's persistent MIRA learner on the view's query
        graph (whose weight vector is shared with the search graph, so all
        views see the adjusted costs on their next read — no view is
        refreshed here).

        With a ``tenant`` on the request the learned update lands in that
        tenant's weight overlay instead: the tenant's own ranking moves,
        the shared base vector (and thus every other tenant) does not.
        """
        record = self.views.resolve(request.view)
        if request.tenant is not None:
            return self._tenant_feedback(record, request)
        event = record.view.annotate(request.answer, request.kind, other=request.other)
        self.feedback_log.add(event)
        results = self.learner.replay(
            [event], request.replay, graph=record.view.query_graph.graph
        )
        self._after_mutation()
        return FeedbackResponse(
            view_id=record.view_id,
            events=(event,),
            steps_processed=len(results),
            weight_change=sum(step.weight_change for step in results),
            weights_version=self.graph.weights.version,
        )

    def _tenant_feedback(self, record: ViewRecord, request: FeedbackRequest) -> FeedbackResponse:
        """Apply feedback into one tenant's overlay.

        The annotation is generalized against the union of the base view's
        and the tenant view's retained trees (the answer may have been read
        under either ranking — signatures agree because both price the same
        expansion), then replayed through the shared learner with the
        overlay as the ``weights=`` override.  The event still lands in the
        session-wide feedback log for introspection and persistence.
        """
        profile = self.tenants.profile(request.tenant)
        tenant_view = self._tenant_view(record, request.tenant)
        tenant_view.prepare()
        trees = record.view.trees_by_signature()
        trees.update(tenant_view.trees_by_signature())
        generalizer = FeedbackGeneralizer(tenant_view.terminals, trees)
        event = generalizer.generalize(
            AnswerAnnotation(answer=request.answer, kind=request.kind, other=request.other)
        )
        self.feedback_log.add(event)
        results = self.learner.replay(
            [event],
            request.replay,
            graph=record.view.query_graph.graph,
            weights=profile.overlay,
        )
        profile.events_applied += len(results)
        self._after_mutation()
        return FeedbackResponse(
            view_id=record.view_id,
            events=(event,),
            steps_processed=len(results),
            weight_change=sum(step.weight_change for step in results),
            weights_version=profile.overlay.version,
        )

    def apply_feedback_events(
        self,
        view: Union[ViewRef, ViewRecord],
        events: Sequence[FeedbackEvent],
        repetitions: int = 1,
    ) -> FeedbackResponse:
        """Apply pre-built feedback events (used by the experiment harnesses)."""
        record = self.views.resolve(view)
        for event in events:
            self.feedback_log.add(event)
        results = self.learner.replay(
            list(events), repetitions, graph=record.view.query_graph.graph
        )
        self._after_mutation()
        return FeedbackResponse(
            view_id=record.view_id,
            events=tuple(events),
            steps_processed=len(results),
            weight_change=sum(step.weight_change for step in results),
            weights_version=self.graph.weights.version,
        )

    # ------------------------------------------------------------------
    # Durability (see :mod:`repro.persist`)
    # ------------------------------------------------------------------
    def save(self, path=None, compact: bool = False):
        """Checkpoint the whole session so :meth:`open` can restore it.

        The first call writes a full snapshot — search graph (nodes and
        alignment edges with features and original edge ids), weight
        vector, learner state, profile index, view registry with each
        synced view's query-graph expansion, feedback log, and the
        process-global edge-id counter.  Later calls are *incremental*:
        one journal delta entry capturing the mutations since the previous
        save.  Once the journal reaches
        ``config.journal_compact_after`` entries (or ``compact=True``, or a
        change a delta cannot express), journal and snapshot fold into a
        fresh snapshot.

        Where the bytes go: on a SQLite-backed catalog, into
        ``_repro_session_*`` tables inside the catalog database itself
        (one file holds the whole session) — unless ``path`` is given,
        which always selects a JSON sidecar (snapshot at ``path``, journal
        at ``path + ".journal"``).  A memory-backed catalog requires a
        ``path`` on the first save; the sidecar then also carries the
        catalog's rows, giving the memory backend durability it never had.

        Returns a :class:`~repro.persist.SaveReport`.
        """
        if self._persistence is None:
            self._persistence = SessionPersistence(
                self._resolve_store(path),
                compact_after=self.config.journal_compact_after,
            )
        elif path is not None:
            store = self._persistence.store
            if not isinstance(store, FileSessionStore) or str(store.path) != str(path):
                raise SnapshotError(
                    f"this session already persists to {store.description}; "
                    "save() cannot be re-targeted to a different location"
                )
        return self._persistence.save(self, compact=compact)

    def _resolve_store(self, path) -> SessionStore:
        if path is None:
            path = self._save_path
        if path is not None:
            self._save_path = path
            return FileSessionStore(path)
        backend = self.catalog.backend
        if backend is not None and backend.supports_session_store:
            return SqliteSessionStore(backend)
        raise SnapshotError(
            "a memory-backed session has no durable home for its snapshot; "
            "pass save(path=...) (or autosave=<path>) to choose a sidecar file"
        )

    @classmethod
    def open(
        cls,
        path=None,
        backend=None,
        config: Optional[ServiceConfig] = None,
        matchers: Optional[Sequence[BaseMatcher]] = None,
        autosave=False,
    ) -> "QService":
        """Warm-start a session from a previously saved snapshot + journal.

        ``open(path)`` sniffs the file: a SQLite database restores the
        whole session from its ``_repro_session_*`` tables (rows included);
        a JSON sidecar restores a memory-style session, re-ingesting the
        rows serialized in the snapshot.  ``backend=`` overrides the sniff
        — pass ``"sqlite:<path>"`` (or a live
        :class:`~repro.storage.base.StorageBackend`) to name the catalog
        database explicitly.

        No profiling, matching or alignment runs: graph, weights, profiles
        and views come straight from the snapshot, the journal replays any
        post-snapshot mutations, and the edge-id counter is restored so the
        reopened session allocates the same ids a continuing live session
        would.  Restored sessions answer queries byte-identically to the
        session that saved them.

        ``config`` / ``matchers`` override the persisted session knobs and
        the (non-serializable) matcher stack; by default the saved config
        is restored and the default matchers are installed.
        """
        from ..storage import SqliteBackend, resolve_backend
        from ..storage.base import StorageBackend

        # A backend we construct here is ours to close if the restore
        # fails; one handed in live belongs to the caller.
        owns_backend = not isinstance(backend, StorageBackend)
        resolved = resolve_backend(backend) if backend is not None else None
        if resolved is None and path is not None and sniff_sqlite_file(path):
            resolved = SqliteBackend(path)
        if resolved is not None and resolved.supports_session_store:
            store: SessionStore = SqliteSessionStore(resolved)
        elif path is not None:
            store = FileSessionStore(path)
        else:
            raise SnapshotError(
                "QService.open needs a session location: a path (sqlite "
                "database or JSON sidecar) and/or a session-capable backend"
            )
        try:
            loaded = store.load()
            if loaded is None:
                raise SnapshotError(f"no session stored in {store.description}")
            body, entries = loaded

            service = cls.__new__(cls)
            service.config = config if config is not None else _restore_config(
                body.get("config") or {}
            )
            if store.holds_rows:
                catalog = Catalog(backend=resolved)
            else:
                from ..datastore.csvio import source_from_dict

                catalog = Catalog(
                    [
                        source_from_dict(payload)
                        for payload in (body.get("catalog") or {}).get("sources", ())
                    ],
                    backend=resolved,
                )
            graph, profile_index, overlay = restore_core(
                body, entries, catalog, service.config.graph, store.holds_rows
            )
            service._assemble(catalog, graph, profile_index, matchers)
            service._restore_overlay(overlay)
            profile_index.rebind_tables(catalog)
            if autosave is True and isinstance(store, FileSessionStore):
                autosave = store.path
            service._init_persistence(autosave)
            if isinstance(store, FileSessionStore):
                service._save_path = store.path
            service._persistence = SessionPersistence(
                store, compact_after=service.config.journal_compact_after
            )
            service._persistence.attach_restored(
                service, body.get("snapshot_version", 1), overlay
            )
            return service
        except BaseException:
            if owns_backend and resolved is not None:
                resolved.close()
            raise

    def _restore_overlay(self, overlay) -> None:
        """Install the snapshot's tail state: views, log, counters, ids."""
        from ..alignment.registration import RegistrationRecord
        from ..graph.edges import set_edge_id_counter

        views_spec = overlay.get("views") or {}
        records = views_spec.get("records", ())
        builder = self._query_builder() if records else None
        for spec in records:
            qg_payload = spec.get("query_graph")
            query_graph = (
                restore_query_graph(qg_payload, self.graph)
                if qg_payload is not None
                else empty_query_graph(self.graph)
            )
            view = RankedView(
                list(spec["keywords"]),
                self.catalog,
                self.graph,
                k=spec["k"],
                builder=builder,
                answer_limit=self.config.answer_limit,
                engine_context=self.engine_context,
                query_graph=query_graph,
            )
            self.views.restore(
                view,
                spec["name"],
                spec["view_id"],
                spec["created_index"],
                synced_weights_version=spec.get("synced_weights_version"),
                synced_structure_version=spec.get("synced_structure_version"),
            )
        self.views.set_created(views_spec.get("created", len(self.views)))
        self.learner.steps_processed = overlay.get("learner_steps", 0)
        for event_spec in overlay.get("feedback_events", ()):
            self.feedback_log.add(restore_event(event_spec))
        for name, strategy in overlay.get("registrations", ()):
            self.registrar.history.append(
                RegistrationRecord(source_name=name, strategy=strategy, alignment=None)
            )
        self._refreshes = overlay.get("refreshes", 0)
        self._refreshes_skipped = overlay.get("refreshes_skipped", 0)
        # Tenant overlays: sparse per-tenant weight deltas over the shared
        # base vector, restored wholesale (no replay needed — the learned
        # shadows are the durable artifact).
        self.tenants.restore(overlay.get("tenants") or {})
        # Applied idempotency keys: results are not durable, the keys are —
        # a writer-lane retry resubmitted after a reopen still no-ops.
        for key in overlay.get("applied_ops", ()):
            self._record_applied_op(key, None)
        # Authoritative counters last: the replay above moved versions as a
        # side effect; the saved values make staleness checks and future
        # edge-id allocation agree exactly with the session that saved.
        self.graph.weights.version = overlay["weights_version"]
        self.graph.structure_version = overlay["structure_version"]
        set_edge_id_counter(overlay["edge_id_counter"])

    def _after_mutation(self) -> None:
        """Autosave hook, called at the end of every mutating service call.

        When the serving layer armed an idempotency key for this mutation
        (:meth:`begin_op`), the key is recorded as applied *before* the
        autosave: if persistence fails past this point, the mutation itself
        landed, and the writer lane's retry must not re-apply it.
        """
        key = self._pending_op_key
        if key is not None:
            self._pending_op_key = None
            self._record_applied_op(key, None)
        if self._posting_store is not None:
            # Keep the backend posting tables in lockstep with the index
            # (no-op while the saved epoch is current), and do it before
            # the autosave so a checkpointed database is always internally
            # consistent: snapshot epoch == posting-table epoch.
            with active_trace().span("posting_sync"):
                self._posting_store.sync(self.profile_index)
        if self._autosave and not getattr(self, "_in_autosave", False):
            self._in_autosave = True
            try:
                with active_trace().span("autosave"):
                    self.save()
            finally:
                self._in_autosave = False

    # ------------------------------------------------------------------
    # Idempotency keys (serving-layer writer lane)
    # ------------------------------------------------------------------
    def begin_op(self, key: Optional[str]) -> None:
        """Arm ``key`` as the idempotency key of the next mutation."""
        self._pending_op_key = key

    def end_op(self) -> None:
        """Disarm any pending idempotency key (attempt finished)."""
        self._pending_op_key = None

    def op_applied(self, key: Optional[str]) -> bool:
        """Whether a mutation under ``key`` already landed in this session."""
        return key is not None and key in self._applied_ops

    def op_result(self, key: str):
        """The recorded result of an applied op (``None`` if unknown).

        Results live only in memory; after a restore the key itself is the
        durable fact and the result degrades to ``None``.
        """
        return self._applied_ops.get(key)

    def record_op_result(self, key: Optional[str], result) -> None:
        """Attach ``result`` to an applied op for idempotent returns."""
        if key is not None:
            self._record_applied_op(key, result)

    def _record_applied_op(self, key: str, result) -> None:
        self._applied_ops[key] = result
        self._applied_ops.move_to_end(key)
        while len(self._applied_ops) > self._applied_ops_limit:
            self._applied_ops.popitem(last=False)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> SystemStats:
        """Aggregate session counters.

        Mostly a cheap read that refreshes nothing; ``storage_bytes`` may
        be O(rows) on the memory backend (page-count arithmetic on SQLite).
        The counter fields are read back through the session's metrics
        registry (the gauges registered by :meth:`_register_metrics`), so
        this dataclass is a typed view over the same numbers a
        :meth:`metrics` scrape reports.
        """
        value = self.obs.registry.value
        return SystemStats(
            sources=int(value("q_sources")),
            relations=int(value("q_relations")),
            attributes=int(value("q_attributes")),
            views=int(value("q_views")),
            feedback_events=int(value("q_feedback_events_total")),
            learner_steps=int(value("q_learner_steps_total")),
            registrations=int(value("q_registrations_total")),
            weights_version=int(value("q_weights_version")),
            structure_version=int(value("q_structure_version")),
            view_refreshes=int(value("q_view_refreshes_total")),
            view_refreshes_skipped=int(value("q_view_refreshes_skipped_total")),
            backend=self.catalog.backend_kind,
            storage_bytes=self.catalog.storage_size_bytes(),
            snapshot_version=(
                self._persistence.snapshot_version if self._persistence else 0
            ),
            journal_entries=(
                self._persistence.store.entry_count() if self._persistence else 0
            ),
            profile_shards=int(value("q_profile_shards")),
            sketch_candidates=int(value("q_sketch_candidates_total")),
            exact_candidates=int(value("q_exact_candidates_total")),
            pairs_scored=int(value("q_pairs_scored_total")),
            pool_workers=int(value("q_pool_workers")),
            pair_memo_entries=int(value("q_pair_memo_entries")),
            tenants=int(value("q_tenants")),
            pushdown_scans=int(value("q_pushdown_scans_total")),
            pushdown_queries=int(value("q_pushdown_queries_total")),
            pushdown_union_queries=int(value("q_pushdown_union_queries_total")),
            posting_builds=int(value("q_posting_builds_total")),
            posting_syncs=int(value("q_posting_syncs_total")),
            steiner_cache_hits=int(value("q_steiner_cache_hits_total")),
            steiner_cache_builds=int(value("q_steiner_cache_builds_total")),
            steiner_rescores=int(value("q_steiner_rescores_total")),
        )

    def metrics(self, fmt: str = "prometheus"):
        """The session's metrics registry in exposition form.

        ``fmt="prometheus"`` (or ``"text"``) returns the Prometheus text
        format — point a scraper at whatever endpoint serves this string;
        ``fmt="json"`` returns the same samples as a plain dict.  Gauges are
        evaluated at call time against the live session structures.
        """
        if fmt in ("prometheus", "text"):
            return self.obs.registry.prometheus_text()
        if fmt == "json":
            return self.obs.registry.as_dict()
        raise InvalidRequestError(f"unknown metrics format {fmt!r}; use 'prometheus' or 'json'")

    def close(self) -> None:
        """Release the catalog's storage resources.

        If the session persists (a :meth:`save` happened, or ``autosave``
        is on), any unsaved mutations are checkpointed first, so
        close/reopen never loses state.  Row ingests were always committed
        eagerly; sessions that never called :meth:`save` still lose their
        graph/weights/views on close — exactly the pre-persistence
        behavior.  Safe to call repeatedly; required before another session
        reopens the same SQLite file.
        """
        backend_closed = bool(getattr(self.catalog.backend, "closed", False))
        if (
            self._persistence is not None
            and self._persistence.snapshot_version > 0
            and not backend_closed
        ):
            self.save()
        self.catalog.close()

    def __enter__(self) -> "QService":
        """Context-manager entry: the session itself."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Context-manager exit: delegate to :meth:`close` (idempotent)."""
        self.close()
