"""The Q service session: typed, pull-based facade over the whole pipeline.

:class:`QService` is the supported public surface of the reproduction (the
deprecated :class:`~repro.core.qsystem.QSystem` delegates here).  It differs
from the seed facade in three structural ways:

**Lazy pull-based view consistency.**  Mutations — feedback, source
registration, bootstrap alignment — no longer refresh any view.  They only
move version counters (the shared :class:`~repro.graph.features.WeightVector`
version, the search graph's ``structure_version``) and perform cheap
invalidations (answer-cache drops on registration).  A view is refreshed *at
most once, on read*, when its recorded ``(weights.version,
structure_version)`` snapshot is stale.  Replaying ``n`` feedback events
against ``v`` views therefore costs ``O(n + reads)`` refreshes instead of
the eager model's ``O(n · v)``.

**One persistent learner.**  The session owns a single
:class:`~repro.learning.mira.OnlineLearner`; each feedback call hands it the
originating view's query graph (where the keyword terminals live) while the
weight vector — shared across all graphs — accumulates every update.  The
seed rebuilt a learner per feedback call.

**Streaming reads.**  :meth:`QService.answers` returns an iterator of
:class:`~repro.api.types.AnswerPage`\\ s backed by
:meth:`~repro.core.view.RankedView.stream_answers`: the k-best Steiner solve
runs eagerly (it determines the ranking) but conjunctive-query execution is
deferred until the stream reaches each query's answers.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..alignment.base import AlignmentResult, install_associations
from ..alignment.registration import SourceRegistrar
from ..core.view import RankedView
from ..datastore.database import Catalog, DataSource
from ..datastore.provenance import AnswerTuple
from ..engine.context import ExecutionContext
from ..exceptions import InvalidRequestError, RegistrationError
from ..graph.query_graph import QueryGraphBuilder
from ..graph.search_graph import SearchGraph
from ..learning.feedback import FeedbackEvent, FeedbackLog
from ..learning.mira import OnlineLearner
from ..matching.base import BaseMatcher, Correspondence, resolve_matcher
from ..matching.ensemble import MatcherEnsemble
from ..matching.mad import MadMatcher
from ..matching.metadata_matcher import MetadataMatcher
from ..matching.value_overlap import ValueOverlapFilter
from ..profiling.index import CatalogProfileIndex
from .strategies import AlignerSpec, AlignmentStrategy, build_aligner
from .streaming import paginate
from .types import (
    AnswerPage,
    FeedbackRequest,
    FeedbackResponse,
    QueryRequest,
    RegisterSourceRequest,
    RegistrationResponse,
    ServiceConfig,
    SystemStats,
    ViewInfo,
    ViewRef,
)
from .views import ViewRecord, ViewRegistry


class QService:
    """A Q session: sources, views, feedback and registration behind typed requests.

    Parameters
    ----------
    sources:
        Initial (already interlinked) data sources.
    matchers:
        Matcher stack for bootstrap alignment and registration; defaults to
        the metadata matcher plus MAD.
    config:
        Session knobs; see :class:`~repro.api.types.ServiceConfig`.
    backend:
        Storage backend for the session's catalog — a
        :class:`~repro.storage.base.StorageBackend` instance or a name
        (``"memory"``, ``"sqlite"``, ``"sqlite:<path>"``).  Defaults to the
        ``REPRO_BACKEND`` environment variable, falling back to per-table
        memory storage.  A persistent SQLite backend that already holds a
        catalog is reopened: its sources load without re-ingest and every
        registration routes through the backend's bulk ingest.
    """

    def __init__(
        self,
        sources: Optional[Iterable[DataSource]] = None,
        matchers: Optional[Sequence[BaseMatcher]] = None,
        config: Optional[ServiceConfig] = None,
        backend=None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.catalog = Catalog(sources, backend=backend)
        self.graph = SearchGraph(config=self.config.graph)
        self.graph.add_catalog(self.catalog)
        #: Shared per-attribute profiles + posting lists over the catalog,
        #: profiled once per source and updated incrementally by the
        #: registrar (see :mod:`repro.profiling`).  Every matcher and value
        #: filter of this session reads it instead of re-deriving state.
        self.profile_index = CatalogProfileIndex.from_catalog(self.catalog)
        self.matchers: List[BaseMatcher] = (
            list(matchers) if matchers else [MetadataMatcher(), MadMatcher()]
        )
        self.ensemble = MatcherEnsemble(
            self.matchers, top_y=self.config.top_y, profile_index=self.profile_index
        )
        self.registrar = SourceRegistrar(
            self.catalog, self.graph, indexes=(self.profile_index,)
        )
        self.views = ViewRegistry()
        self.feedback_log = FeedbackLog(window_size=self.config.feedback_window)
        self._builder: Optional[QueryGraphBuilder] = None
        # One execution context for the whole session: all views share its
        # scan and join-index caches; registration events invalidate it.
        self.engine_context = ExecutionContext(self.catalog)
        self.registrar.add_listener(self._on_registration)
        #: The session's single persistent learner.  Feedback calls pass the
        #: originating view's query graph per event; the shared weight
        #: vector makes every update visible to all views.
        self.learner = OnlineLearner(self.graph, k=self.config.top_k)
        self._refreshes = 0
        self._refreshes_skipped = 0

    # ------------------------------------------------------------------
    # Sources and alignments
    # ------------------------------------------------------------------
    def add_source(self, source: DataSource) -> None:
        """Add a source to the catalog and graph *without* running alignment.

        Used when setting up the initial, already-interlinked databases
        (their joins come from foreign keys and hand-coded associations).
        """
        self.catalog.add_source(source)
        self.graph.add_source(source)
        self.profile_index.index_source(source)
        self._sync_builder(source)

    def bootstrap_alignments(self, top_y: Optional[int] = None) -> List[Correspondence]:
        """Run the matcher ensemble over all current tables and install edges.

        Reproduces the Section 5.2 setup.  Lazy semantics: installing the
        association edges bumps the graph's ``structure_version``; no view
        is refreshed here — each one rebuilds on its next read.
        """
        y = top_y if top_y is not None else self.config.top_y
        ensemble = MatcherEnsemble(self.matchers, top_y=y)
        alignments = ensemble.match_tables(self.catalog.all_tables())
        correspondences: List[Correspondence] = []
        for alignment in alignments:
            for matcher_name, confidence in alignment.confidences.items():
                correspondences.append(
                    Correspondence(
                        source=alignment.source,
                        target=alignment.target,
                        confidence=confidence,
                        matcher=matcher_name,
                    )
                )
        install_associations(self.graph, correspondences)
        return correspondences

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def create_view(
        self, request: Union[QueryRequest, Sequence[str]], materialize: bool = True
    ) -> ViewInfo:
        """Create a ranked view for a keyword query; returns its description.

        Creation performs the view's first solve (trees, queries, α) and
        records the version snapshot it ran against.  With ``materialize``
        (the default) the answers are executed and cached immediately — the
        seed semantics; pass ``materialize=False`` to defer all query
        execution to the first streamed read (pure pay-per-page).
        """
        if not isinstance(request, QueryRequest):
            request = QueryRequest(keywords=tuple(request))
        if not request.keywords:
            raise InvalidRequestError("create_view requires at least one keyword")
        k = request.k if request.k is not None else self.config.top_k
        if k < 1:
            raise InvalidRequestError(f"k must be >= 1, got {k}")
        view = RankedView(
            list(request.keywords),
            self.catalog,
            self.graph,
            k=k,
            builder=self._query_builder(),
            answer_limit=self.config.answer_limit,
            engine_context=self.engine_context,
        )
        if materialize:
            view.refresh()
        else:
            view.prepare()
        record = self.views.add(view, request.name or " ".join(request.keywords))
        self._mark_synced(record)
        self._refreshes += 1
        return self._info(record)

    def view(self, ref: Union[ViewRef, ViewRecord]) -> RankedView:
        """The live :class:`RankedView` behind a view reference."""
        return self.views.resolve(ref).view

    def view_info(self, ref: Union[ViewRef, ViewRecord]) -> ViewInfo:
        """Fresh description of a view (pulls it up to date first)."""
        record = self.views.resolve(ref)
        self._sync_view(record)
        return self._info(record)

    def latest_view(self) -> Optional[ViewInfo]:
        """The most recently created view, by explicit creation order."""
        record = self.views.latest()
        return self._info(record) if record is not None else None

    def _info(self, record: ViewRecord) -> ViewInfo:
        view = record.view
        return ViewInfo(
            view_id=record.view_id,
            name=record.name,
            keywords=tuple(view.keywords),
            k=view.k,
            created_index=record.created_index,
            tree_count=len(view.state.trees),
            alpha=view.alpha,
        )

    def _query_builder(self) -> QueryGraphBuilder:
        if self._builder is None:
            self._builder = QueryGraphBuilder(self.catalog)
        return self._builder

    def _sync_builder(self, source: DataSource) -> None:
        """Fold a newly admitted source into the shared query-graph builder.

        Incremental replacement for the seed's builder invalidation: the
        builder's value index and tf-idf corpus gain exactly the new
        source's entries (ending in the same state a from-scratch rebuild
        over the grown catalog would produce), and every existing view —
        which holds this builder — sees the new source's values on its next
        rebuild instead of expanding against a stale index.
        """
        if self._builder is not None:
            self._builder.add_source(source)

    # ------------------------------------------------------------------
    # Lazy consistency
    # ------------------------------------------------------------------
    def _versions(self) -> Tuple[int, int]:
        return self.graph.weights.version, self.graph.structure_version

    def _mark_synced(self, record: ViewRecord) -> None:
        weights_version, structure_version = self._versions()
        record.synced_weights_version = weights_version
        record.synced_structure_version = structure_version

    def _is_stale(self, record: ViewRecord) -> bool:
        weights_version, structure_version = self._versions()
        return (
            record.synced_weights_version != weights_version
            or record.synced_structure_version != structure_version
        )

    def _needs_rebuild(self, record: ViewRecord) -> bool:
        return record.synced_structure_version != self.graph.structure_version

    def _sync_view(self, record: ViewRecord, force: bool = False) -> bool:
        """Refresh ``record``'s view iff its version snapshot is stale.

        This is the *only* place a materializing refresh happens; mutations
        never call it.  Returns whether a refresh ran.  ``force`` refreshes
        even on a current snapshot (the eager-compat path used by the
        deprecated ``QSystem`` shim — still cheap, since the view's own
        incremental machinery skips the solver when nothing moved).
        """
        stale = self._is_stale(record)
        if not stale and not force:
            self._refreshes_skipped += 1
            return False
        record.view.refresh(rebuild_graph=self._needs_rebuild(record))
        self._mark_synced(record)
        self._refreshes += 1
        return True

    def refresh_all_views(self, force: bool = False) -> int:
        """Pull every view up to date; returns how many actually refreshed.

        Exists for the eager-compat shim and for administrative warm-up;
        ordinary clients never need it — reads pull on demand.
        """
        refreshed = 0
        for record in self.views.records():
            if self._sync_view(record, force=force):
                refreshed += 1
        return refreshed

    # ------------------------------------------------------------------
    # Answers (streaming reads)
    # ------------------------------------------------------------------
    def answers(self, request: QueryRequest) -> Iterator[AnswerPage]:
        """Ranked answers of a view as a lazy stream of pages.

        The read pulls the view's consistency (refreshing at most once if
        stale), then streams: query execution happens page by page.
        """
        record = self._record_for_query(request)
        stream = self._synced_stream(record)
        page_size = (
            request.page_size
            if request.page_size is not None
            else self.config.default_page_size
        )
        return paginate(stream, record.view_id, page_size, limit=request.limit)

    def stream_answers(self, request: QueryRequest) -> Iterator[AnswerTuple]:
        """Like :meth:`answers` but yielding raw answers without paging."""
        record = self._record_for_query(request)
        stream = self._synced_stream(record)
        if request.limit is not None:
            return itertools.islice(stream, request.limit)
        return stream

    def _record_for_query(self, request: QueryRequest) -> ViewRecord:
        if request.view is not None:
            record = self.views.resolve(request.view)
            self._check_k(record, request)
            return record
        if not request.keywords:
            raise InvalidRequestError("QueryRequest needs keywords or a view reference")
        name = request.name or " ".join(request.keywords)
        record = self.views.find_by_name(name)
        if record is not None:
            self._check_k(record, request)
            return record
        # Auto-created views defer all query execution to the stream: the
        # first read is genuinely pay-per-page.
        info = self.create_view(request, materialize=False)
        return self.views.resolve(info.view_id)

    @staticmethod
    def _check_k(record: ViewRecord, request: QueryRequest) -> None:
        """A request must not silently get a ranking of a different width."""
        if request.k is not None and record.view.k != request.k:
            raise InvalidRequestError(
                f"view {record.name!r} ({record.view_id}) has k={record.view.k}; "
                f"the request asked for k={request.k} — omit k to read the "
                "existing ranking, or create a view under another name"
            )

    def _synced_stream(self, record: ViewRecord) -> Iterator[AnswerTuple]:
        """A ranked answer stream whose solve honors the lazy-sync contract."""
        stale = self._is_stale(record)
        stream = record.view.stream_answers(
            rebuild_graph=stale and self._needs_rebuild(record)
        )
        if stale:
            self._refreshes += 1
        else:
            self._refreshes_skipped += 1
        self._mark_synced(record)
        return stream

    # ------------------------------------------------------------------
    # Registration of new sources
    # ------------------------------------------------------------------
    def _aligner_for(self, request: RegisterSourceRequest):
        """Build the aligner for one registration request.

        The value filter wraps the session's shared profile index (the
        registrar indexes the new source before aligning, so the filter sees
        it) — no per-registration index rebuild.
        """
        strategy = AlignmentStrategy.coerce(request.strategy)
        matcher = (
            resolve_matcher(request.matcher)
            if request.matcher is not None
            else self.matchers[0]
        )
        value_filter = None
        if request.value_filter:
            value_filter = ValueOverlapFilter.from_index(self.profile_index)

        driving_view: Optional[RankedView] = None
        if strategy is AlignmentStrategy.VIEW_BASED:
            record = (
                self.views.resolve(request.view)
                if request.view is not None
                else self.views.latest()
            )
            if record is None:
                raise RegistrationError(
                    "view_based registration requires an existing view; create one first"
                )
            # The driving view's α must reflect the current weights: pull it.
            self._sync_view(record)
            driving_view = record.view

        aligner = build_aligner(
            strategy,
            AlignerSpec(
                matcher=matcher,
                top_y=self.config.top_y,
                value_filter=value_filter,
                max_relations=request.max_relations,
                view=driving_view,
                profile_index=self.profile_index,
            ),
        )
        return strategy, aligner

    def _registration_response(
        self, request: RegisterSourceRequest, strategy: AlignmentStrategy, result: AlignmentResult
    ) -> RegistrationResponse:
        return RegistrationResponse(
            source=request.source.name,
            strategy=strategy,
            edges_added=len(result.edges_added),
            attribute_comparisons=result.attribute_comparisons,
            candidate_relations=tuple(result.candidate_relations),
            elapsed_seconds=result.elapsed_seconds,
            alignment=result,
        )

    def register_source(self, request: RegisterSourceRequest) -> RegistrationResponse:
        """Register a new source and align it against the existing graph.

        Lazy semantics: the registration invalidates the shared execution
        context and every view's answer cache exactly once (they may hold
        rows of mutated relations), and the graph's ``structure_version``
        moves — but no view is refreshed; each rebuilds on its next read.
        """
        strategy, aligner = self._aligner_for(request)
        result = self.registrar.register(request.source, aligner)
        self._sync_builder(request.source)
        return self._registration_response(request, strategy, result)

    def register_sources(
        self, requests: Sequence[RegisterSourceRequest]
    ) -> Tuple[RegistrationResponse, ...]:
        """Batch ingest: profile every new source in one pass, then align each.

        All sources are admitted to the catalog, graph and shared profile
        index **before** any alignment runs, so (a) profiling happens once
        per source rather than once per alignment, and (b) each source's
        alignment can also propose correspondences against the other batch
        members — registering interlinked sources in one batch wires them to
        each other as well as to the existing catalog.  Aligner construction
        is deferred into the batch (factories resolved after admission), so
        even the view-based strategy — which snapshots its driving view's
        query graph and α at build time — sees the whole batch: the view
        pull inside the factory rebuilds against the grown graph.  The
        batch is atomic: any failure rolls every batch source back.
        """
        requests = list(requests)
        if not requests:
            return ()
        strategies: List[AlignmentStrategy] = [
            AlignmentStrategy.coerce(request.strategy) for request in requests
        ]

        def factory(request: RegisterSourceRequest):
            return lambda: self._aligner_for(request)[1]

        results = self.registrar.register_batch(
            [request.source for request in requests],
            [factory(request) for request in requests],
        )
        for request in requests:
            self._sync_builder(request.source)
        return tuple(
            self._registration_response(request, strategy, result)
            for request, strategy, result in zip(requests, strategies, results)
        )

    def _on_registration(self, source: DataSource, result: AlignmentResult) -> None:
        # A new source changes both the data and the graph structure: drop
        # the engine's shared scan/join-index caches and every view's
        # per-signature answer cache — once, at mutation time.  The refresh
        # itself is deferred to each view's next read.
        del source, result
        self.engine_context.invalidate()
        for record in self.views.records():
            record.view.invalidate_cache()

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def feedback(self, request: FeedbackRequest) -> FeedbackResponse:
        """Apply user feedback on one answer of a view.

        The annotation is generalized to the producing query tree, logged,
        and fed to the session's persistent MIRA learner on the view's query
        graph (whose weight vector is shared with the search graph, so all
        views see the adjusted costs on their next read — no view is
        refreshed here).
        """
        record = self.views.resolve(request.view)
        event = record.view.annotate(request.answer, request.kind, other=request.other)
        self.feedback_log.add(event)
        results = self.learner.replay(
            [event], request.replay, graph=record.view.query_graph.graph
        )
        return FeedbackResponse(
            view_id=record.view_id,
            events=(event,),
            steps_processed=len(results),
            weight_change=sum(step.weight_change for step in results),
            weights_version=self.graph.weights.version,
        )

    def apply_feedback_events(
        self,
        view: Union[ViewRef, ViewRecord],
        events: Sequence[FeedbackEvent],
        repetitions: int = 1,
    ) -> FeedbackResponse:
        """Apply pre-built feedback events (used by the experiment harnesses)."""
        record = self.views.resolve(view)
        for event in events:
            self.feedback_log.add(event)
        results = self.learner.replay(
            list(events), repetitions, graph=record.view.query_graph.graph
        )
        return FeedbackResponse(
            view_id=record.view_id,
            events=tuple(events),
            steps_processed=len(results),
            weight_change=sum(step.weight_change for step in results),
            weights_version=self.graph.weights.version,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> SystemStats:
        """Aggregate session counters.

        Mostly a cheap read that refreshes nothing; ``storage_bytes`` may
        be O(rows) on the memory backend (page-count arithmetic on SQLite).
        """
        weights_version, structure_version = self._versions()
        return SystemStats(
            sources=self.catalog.source_count,
            relations=self.catalog.relation_count,
            attributes=self.catalog.attribute_count,
            views=len(self.views),
            feedback_events=len(self.feedback_log),
            learner_steps=self.learner.steps_processed,
            registrations=self.registrar.epoch,
            weights_version=weights_version,
            structure_version=structure_version,
            view_refreshes=self._refreshes,
            view_refreshes_skipped=self._refreshes_skipped,
            backend=self.catalog.backend_kind,
            storage_bytes=self.catalog.storage_size_bytes(),
        )

    def close(self) -> None:
        """Release the catalog's storage resources (flushes nothing: every
        successful ingest is already committed).  Safe to call repeatedly;
        required before another session reopens the same SQLite file."""
        self.catalog.close()
