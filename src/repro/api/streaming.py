"""Pagination over lazily streamed ranked answers.

:func:`paginate` wraps the answer iterator produced by
:meth:`~repro.core.view.RankedView.stream_answers` into
:class:`~repro.api.types.AnswerPage` objects.  It is itself a generator:
pulling page ``n`` executes only the conjunctive queries needed to fill
pages ``0..n`` (plus one answer of lookahead for ``has_more``), so a client
that stops after the first page never pays for the rest of the k-best
union.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional

from ..datastore.provenance import AnswerTuple
from ..exceptions import InvalidRequestError
from .types import AnswerPage


def paginate(
    answers: Iterable[AnswerTuple],
    view_id: str,
    page_size: int,
    limit: Optional[int] = None,
) -> Iterator[AnswerPage]:
    """Chunk an answer stream into :class:`AnswerPage`\\ s of ``page_size``.

    ``has_more`` is exact: it is decided by one answer of lookahead, not by
    page fullness (a final, exactly-full page reports ``has_more=False``).
    An empty stream yields no pages.

    Raises
    ------
    InvalidRequestError
        If ``page_size`` is not positive or ``limit`` is negative — raised
        eagerly at call time, not at the first ``next()``.
    """
    if page_size < 1:
        raise InvalidRequestError(f"page_size must be >= 1, got {page_size}")
    if limit is not None and limit < 0:
        raise InvalidRequestError(f"limit must be >= 0, got {limit}")
    return _pages(answers, view_id, page_size, limit)


def _pages(
    answers: Iterable[AnswerTuple],
    view_id: str,
    page_size: int,
    limit: Optional[int],
) -> Iterator[AnswerPage]:
    iterator: Iterator[AnswerTuple] = iter(answers)
    if limit is not None:
        iterator = itertools.islice(iterator, limit)

    index = 0
    batch = list(itertools.islice(iterator, page_size))
    while batch:
        lookahead = list(itertools.islice(iterator, 1))
        yield AnswerPage(
            view_id=view_id,
            index=index,
            answers=tuple(batch),
            has_more=bool(lookahead),
        )
        index += 1
        batch = lookahead + list(itertools.islice(iterator, page_size - 1))


def drain(pages: Iterable[AnswerPage]) -> list:
    """Materialize every answer of a paged stream (testing/compat helper)."""
    collected: list = []
    for page in pages:
        collected.extend(page.answers)
    return collected
