"""Scriptable fault injection for storage backends and session stores.

The chaos harness (``benchmarks/faults_bench.py``) and the deterministic
fault tests drive the *real* serving stack — catalog, engine, writer lane,
persistence — while this module makes its storage layer misbehave on cue:

* :class:`FaultyBackend` wraps any
  :class:`~repro.storage.base.StorageBackend` and applies a
  :class:`FaultPlan` to every protocol call: raise a transient or fatal
  error on the Nth ``scan`` / ``insert_rows`` / ``execute_write`` / ...,
  add latency, or simulate a crash point.  Because
  :func:`~repro.storage.resolve_backend` passes live backend instances
  through unchanged, a wrapped backend plugs into
  ``QService(backend=FaultyBackend(...))`` with zero special-casing.
* :class:`FaultySessionStore` wraps a
  :class:`~repro.persist.store.SessionStore` the same way, covering the
  save/compaction path (``write_snapshot`` / ``append_entry``) — including
  the crash window between a sidecar snapshot replace and its journal
  truncation.

Faults are *typed*: transient rules raise
:class:`~repro.exceptions.TransientStorageError` (the writer lane retries
them), fatal rules raise :class:`InjectedFaultError` (a plain
``StorageError`` — the server degrades), and crash rules raise
:class:`InjectedCrashError` (callers treat it as a process death and
re-open from disk).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import StorageError, TransientStorageError
from ..persist.store import SessionStore
from ..storage.base import PredicateSpec, StorageBackend


class InjectedFaultError(StorageError):
    """A scripted *non-transient* storage failure (degrades the server)."""


class InjectedCrashError(StorageError):
    """A scripted crash point: the process 'dies' mid-operation.

    Tests catch this, abandon the live objects, and re-open the session
    from disk — the durability invariants must hold across it.
    """


@dataclass
class FaultRule:
    """One scripted fault: *which* operation misfires, *when*, and *how*.

    Parameters
    ----------
    op:
        Operation name the rule arms on — the wrapped method's name
        (``"scan"``, ``"insert_rows"``, ``"append_row"``, ``"execute_write"``,
        ``"write_snapshot"``, ...).
    error:
        ``"transient"`` → :class:`TransientStorageError`, ``"fatal"`` →
        :class:`InjectedFaultError`, ``"crash"`` → :class:`InjectedCrashError`,
        ``None`` → no error (latency-only rule).
    after:
        Fire starting with the Nth call of ``op`` (1-based) counted from
        plan arming; earlier calls pass through.
    every:
        With ``every=k``, fire on every kth eligible call instead of every
        one.
    times:
        Total number of firings before the rule disarms; ``None`` = forever.
    latency_s:
        Seconds to sleep before the call proceeds (or before raising).
    """

    op: str
    error: Optional[str] = "transient"
    after: int = 1
    every: int = 1
    times: Optional[int] = 1
    latency_s: float = 0.0
    fired: int = 0

    def should_fire(self, call_number: int) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if call_number < self.after:
            return False
        return (call_number - self.after) % max(self.every, 1) == 0

    def raise_error(self, op: str, call_number: int) -> None:
        if self.error is None:
            return
        message = f"injected {self.error} fault on {op} (call #{call_number})"
        if self.error == "transient":
            raise TransientStorageError(message)
        if self.error == "fatal":
            raise InjectedFaultError(message)
        if self.error == "crash":
            raise InjectedCrashError(message)
        raise ValueError(f"unknown fault kind {self.error!r}")


@dataclass
class FaultPlan:
    """A set of :class:`FaultRule`\\ s plus per-operation call counters.

    One plan may be shared between a :class:`FaultyBackend` and a
    :class:`FaultySessionStore`; counters are per operation name and
    thread-safe (the writer lane and the read pool may hit the same backend
    concurrently).  ``active=False`` (or :meth:`disable`) lets a harness
    build its session fault-free and arm the plan only for the chaos phase;
    counters start at the moment of arming.
    """

    rules: List[FaultRule] = field(default_factory=list)
    active: bool = True
    _counts: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def enable(self) -> None:
        with self._lock:
            self.active = True
            self._counts.clear()
            for rule in self.rules:
                rule.fired = 0

    def disable(self) -> None:
        with self._lock:
            self.active = False

    def faults_fired(self) -> int:
        with self._lock:
            return sum(rule.fired for rule in self.rules)

    def on_call(self, op: str) -> None:
        """Count one call of ``op``; sleep/raise according to the rules."""
        if not self.active:
            return
        with self._lock:
            count = self._counts.get(op, 0) + 1
            self._counts[op] = count
            firing = [rule for rule in self.rules if rule.op == op and rule.should_fire(count)]
            for rule in firing:
                rule.fired += 1
        for rule in firing:
            if rule.latency_s > 0:
                time.sleep(rule.latency_s)
            rule.raise_error(op, count)


class FaultyBackend(StorageBackend):
    """A :class:`StorageBackend` decorator that applies a :class:`FaultPlan`.

    Every protocol method consults the plan *before* delegating, so an
    injected error leaves the underlying backend untouched — exactly the
    semantics of an I/O error surfacing before the backend's own work.
    Capability flags and SQLite extras (``execute_sql`` / ``execute_write``
    / ``execute_write_batch`` / ``path``) proxy through, so a wrapped
    backend is a drop-in for ``QService(backend=...)`` and the in-database
    session store alike.
    """

    def __init__(self, delegate: StorageBackend, plan: FaultPlan) -> None:
        self.delegate = delegate
        self.plan = plan
        self.kind = delegate.kind
        self.supports_sql_pushdown = delegate.supports_sql_pushdown
        self.supports_session_store = delegate.supports_session_store

    # -- relation lifecycle -------------------------------------------
    def create_relation(self, key, schema, initial_version: int = 0) -> None:
        self.plan.on_call("create_relation")
        self.delegate.create_relation(key, schema, initial_version)

    def bind_schema(self, key, schema) -> None:
        self.plan.on_call("bind_schema")
        self.delegate.bind_schema(key, schema)

    def has_relation(self, key: str) -> bool:
        return self.delegate.has_relation(key)

    def drop_relation(self, key: str) -> None:
        self.plan.on_call("drop_relation")
        self.delegate.drop_relation(key)

    def relation_keys(self) -> Tuple[str, ...]:
        # Gated so fault plans can fail the server's recovery probe too.
        self.plan.on_call("relation_keys")
        return self.delegate.relation_keys()

    # -- ingest --------------------------------------------------------
    def append_row(self, key, values):
        self.plan.on_call("append_row")
        return self.delegate.append_row(key, values)

    def insert_rows(self, key, rows: Iterable[Tuple[object, ...]]) -> int:
        self.plan.on_call("insert_rows")
        return self.delegate.insert_rows(key, rows)

    # -- reads ---------------------------------------------------------
    def scan(self, key: str):
        self.plan.on_call("scan")
        return self.delegate.scan(key)

    def scan_where(self, key: str, predicates: Sequence[PredicateSpec]):
        self.plan.on_call("scan")
        return self.delegate.scan_where(key, predicates)

    def row_count(self, key: str) -> int:
        return self.delegate.row_count(key)

    def version(self, key: str) -> int:
        return self.delegate.version(key)

    def distinct_values(self, key: str, attribute: str) -> frozenset:
        self.plan.on_call("distinct_values")
        return self.delegate.distinct_values(key, attribute)

    # -- catalog metadata ---------------------------------------------
    def save_source_schema(self, name: str, payload: dict) -> None:
        self.plan.on_call("save_source_schema")
        self.delegate.save_source_schema(name, payload)

    def delete_source_schema(self, name: str) -> None:
        self.plan.on_call("delete_source_schema")
        self.delegate.delete_source_schema(name)

    def persisted_source_schemas(self) -> List[dict]:
        return self.delegate.persisted_source_schemas()

    # -- introspection / lifecycle ------------------------------------
    def storage_size_bytes(self) -> int:
        return self.delegate.storage_size_bytes()

    def close(self) -> None:
        self.delegate.close()

    # -- SQLite extras (session store / pushdown), proxied when present
    @property
    def path(self):
        return self.delegate.path  # type: ignore[attr-defined]

    def execute_sql(self, sql: str, parameters: Sequence[object] = ()):
        self.plan.on_call("execute_sql")
        return self.delegate.execute_sql(sql, parameters)  # type: ignore[attr-defined]

    def execute_write(self, sql: str, parameters: Sequence[object] = ()):
        self.plan.on_call("execute_write")
        return self.delegate.execute_write(sql, parameters)  # type: ignore[attr-defined]

    def execute_write_batch(self, statements) -> None:
        self.plan.on_call("execute_write")
        return self.delegate.execute_write_batch(statements)  # type: ignore[attr-defined]

    def ensure_canon_index(self, key: str, attribute: str) -> None:
        self.delegate.ensure_canon_index(key, attribute)  # type: ignore[attr-defined]

    def table_sql_name(self, key: str) -> str:
        return self.delegate.table_sql_name(key)  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyBackend({self.delegate!r}, fired={self.plan.faults_fired()})"


class FaultySessionStore(SessionStore):
    """A :class:`SessionStore` decorator applying a :class:`FaultPlan`.

    Arms the persistence path: rules on ``"write_snapshot"``,
    ``"append_entry"`` and ``"load"`` cover autosave failures mid-mutation
    (the idempotency-key scenario), failed compactions, and crash-point
    simulation inside save.
    """

    def __init__(self, delegate: SessionStore, plan: FaultPlan) -> None:
        self.delegate = delegate
        self.plan = plan
        self.holds_rows = delegate.holds_rows
        self.description = f"faulty({delegate.description})"

    def load(self):
        self.plan.on_call("load")
        return self.delegate.load()

    def write_snapshot(self, body) -> None:
        self.plan.on_call("write_snapshot")
        self.delegate.write_snapshot(body)

    def append_entry(self, body) -> None:
        self.plan.on_call("append_entry")
        self.delegate.append_entry(body)

    def entry_count(self) -> int:
        return self.delegate.entry_count()


def wrap_session_store(service, plan: FaultPlan) -> FaultySessionStore:
    """Swap a service's live session store for a fault-injecting wrapper.

    The service must have saved at least once (so its persistence layer
    exists).  Returns the wrapper; the original store stays reachable as
    ``wrapper.delegate``.
    """
    persistence = getattr(service, "_persistence", None)
    if persistence is None:
        raise ValueError("service has no persistence layer yet; call save() first")
    wrapper = FaultySessionStore(persistence.store, plan)
    persistence.store = wrapper
    return wrapper
