"""Transient-fault classification and exponential-backoff retry.

The writer lane of :class:`~repro.service.server.QServer` wraps every
mutation in a :class:`RetryPolicy`: failures classified as *transient* —
SQLite ``locked`` / ``busy`` contention, or a
:class:`~repro.exceptions.TransientStorageError` injected by the fault
harness — are retried with exponential backoff plus jitter; everything else
propagates on the first attempt.  Both the sleep function and the RNG are
injectable so tests and the chaos bench run deterministically without real
delays.
"""

from __future__ import annotations

import random
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, TypeVar

from ..exceptions import ReproError, TransientStorageError

T = TypeVar("T")

#: ``sqlite3.OperationalError`` message fragments that signal lock
#: contention rather than a real storage fault.  SQLite's own retry advice
#: applies: back off and reissue.
_SQLITE_TRANSIENT_MARKERS = ("database is locked", "database table is locked", "busy")


def classify_storage_error(exc: BaseException) -> BaseException:
    """Wrap recognizably transient failures in :class:`TransientStorageError`.

    Returns the exception to raise/propagate: a ``TransientStorageError``
    (with the original on ``__cause__``) when the failure is transient, the
    original exception object otherwise.  The check walks the cause chain so
    backend wrappers that re-raise ``StorageError from sqlite_error`` are
    still recognized.
    """
    if isinstance(exc, TransientStorageError):
        return exc
    seen = set()
    cause: Optional[BaseException] = exc
    while cause is not None and id(cause) not in seen:
        seen.add(id(cause))
        if isinstance(cause, sqlite3.OperationalError):
            message = str(cause).lower()
            if any(marker in message for marker in _SQLITE_TRANSIENT_MARKERS):
                wrapped = TransientStorageError(str(exc))
                wrapped.__cause__ = exc
                return wrapped
        cause = cause.__cause__ if cause.__cause__ is not None else cause.__context__
    return exc


def is_transient(exc: BaseException) -> bool:
    """Whether the (classified) failure warrants an identical retry."""
    classified = classify_storage_error(exc)
    if isinstance(classified, TransientStorageError):
        return True
    return isinstance(classified, ReproError) and classified.retryable


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter over a bounded attempt count.

    ``max_attempts`` counts every try including the first, so ``1`` means
    "no retries".  Delay before retry *n* (1-based) is
    ``min(max_delay_s, base_delay_s * multiplier**(n-1))`` scaled by a
    jitter factor drawn uniformly from ``[1 - jitter, 1]``.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.005
    max_delay_s: float = 0.1
    multiplier: float = 2.0
    jitter: float = 0.5
    sleep: Callable[[float], None] = time.sleep
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays_s(self) -> Iterator[float]:
        """The jittered sleep before each retry (``max_attempts - 1`` values)."""
        for attempt in range(self.max_attempts - 1):
            raw = min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)
            yield raw * (1.0 - self.jitter * self.rng.random())

    def run(
        self,
        fn: Callable[[], T],
        on_retry: Optional[Callable[[BaseException, int], None]] = None,
    ) -> T:
        """Call ``fn`` until it succeeds, a non-transient error escapes, or
        attempts are exhausted (the last transient error then propagates,
        classified)."""
        delays = self.delays_s()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except Exception as exc:
                classified = classify_storage_error(exc)
                if not is_transient(classified):
                    raise
                try:
                    delay = next(delays)
                except StopIteration:
                    # NB: re-raise the *failure*, never the StopIteration.
                    if classified is exc:
                        raise exc
                    raise classified from exc
                if on_retry is not None:
                    on_retry(classified, attempt)
                self.sleep(delay)
