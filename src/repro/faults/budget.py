"""Cooperative deadline budgets for the read path.

A :class:`Budget` is the single object a deadline-bearing request threads
through the layers that do real work — the k-best Steiner enumerator, the
Dreyfus–Wagner DP / Dijkstra inner loops, and the executor's per-query
loop.  Those layers *poll* the budget at their natural branch points; there
is no preemption and no extra thread.  Two outcomes are possible:

* the budget expires before any ranked answer exists →
  :class:`~repro.exceptions.DeadlineExceededError` (typed, carries elapsed
  time);
* the budget expires after partial work produced usable results → the layer
  stops early and calls :meth:`Budget.mark_truncated`; the serving layer
  surfaces the partial result flagged ``degraded=True``.

The clock is injectable so deterministic tests can drive expiry without
real sleeps: pass any zero-argument callable returning seconds.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..exceptions import DeadlineExceededError

#: How many :meth:`Budget.tick` calls go by between clock reads.  Inner
#: loops (Dijkstra pops, DP merges) tick per iteration; reading a monotonic
#: clock every 64th call keeps the overhead unmeasurable while bounding the
#: detection latency to a few microseconds of loop work.
TICK_STRIDE = 64


class Budget:
    """A cooperative deadline, polled at branch points of the read path."""

    __slots__ = ("deadline_s", "clock", "_start", "_ticks", "truncated", "where")

    def __init__(
        self,
        deadline_s: float,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if deadline_s < 0:
            raise ValueError(f"deadline must be >= 0, got {deadline_s}")
        self.deadline_s = deadline_s
        self.clock = clock if clock is not None else time.monotonic
        self._start = self.clock()
        self._ticks = 0
        #: Set once any layer stopped early with partial results; the
        #: serving layer maps this onto ``ReadResult.degraded``.
        self.truncated = False
        #: Last layer that observed expiry (diagnostic, rides into the
        #: typed error's message).
        self.where = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_deadline_ms(
        cls, deadline_ms: float, clock: Optional[Callable[[], float]] = None
    ) -> "Budget":
        return cls(deadline_ms / 1000.0, clock=clock)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def deadline_ms(self) -> float:
        return self.deadline_s * 1000.0

    def elapsed_ms(self) -> float:
        return (self.clock() - self._start) * 1000.0

    def remaining_s(self) -> float:
        """Seconds left before expiry (never negative)."""
        return max(0.0, self.deadline_s - (self.clock() - self._start))

    def expired(self) -> bool:
        """Read the clock now; ``True`` once the deadline has passed."""
        return (self.clock() - self._start) >= self.deadline_s

    # ------------------------------------------------------------------
    # Enforcement
    # ------------------------------------------------------------------
    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the deadline has passed.

        Used at coarse branch points (per Steiner expansion, per DP subset,
        per executed query) where a clock read per call is negligible.
        """
        if self.expired():
            self.where = where or self.where
            raise DeadlineExceededError(self.deadline_ms, self.elapsed_ms(), where)

    def tick(self, where: str = "") -> None:
        """Cheap per-iteration poll: reads the clock every ``TICK_STRIDE`` calls.

        For tight inner loops (Dijkstra pops) where even a monotonic clock
        read per iteration would be measurable.
        """
        self._ticks += 1
        if self._ticks % TICK_STRIDE == 0:
            self.check(where)

    def mark_truncated(self, where: str = "") -> None:
        """Record that a layer stopped early, keeping partial results."""
        self.truncated = True
        if where:
            self.where = where

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Budget(deadline_ms={self.deadline_ms:g}, "
            f"elapsed_ms={self.elapsed_ms():.3f}, truncated={self.truncated})"
        )
