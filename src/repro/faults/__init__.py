"""Fault tolerance primitives: deadlines, retry, and fault injection.

Three small, dependency-light modules the hardened serving lane
(:mod:`repro.service`) builds on — see the README "Failure model" section:

* :mod:`~repro.faults.budget` — cooperative deadline :class:`Budget`
  polled inside the Steiner solver and executor loops;
* :mod:`~repro.faults.retry` — transient-fault classification
  (:func:`classify_storage_error`) and the writer lane's
  :class:`RetryPolicy` (exponential backoff + jitter);
* :mod:`~repro.faults.injector` — scriptable :class:`FaultPlan` applied by
  :class:`FaultyBackend` / :class:`FaultySessionStore` wrappers, driving
  the chaos suite (``benchmarks/faults_bench.py``) and the deterministic
  ``fault_injection``-marked tests.
"""

from .budget import Budget
from .injector import (
    FaultPlan,
    FaultRule,
    FaultyBackend,
    FaultySessionStore,
    InjectedCrashError,
    InjectedFaultError,
    wrap_session_store,
)
from .retry import RetryPolicy, classify_storage_error, is_transient

__all__ = [
    "Budget",
    "FaultPlan",
    "FaultRule",
    "FaultyBackend",
    "FaultySessionStore",
    "InjectedCrashError",
    "InjectedFaultError",
    "RetryPolicy",
    "classify_storage_error",
    "is_transient",
    "wrap_session_store",
]
